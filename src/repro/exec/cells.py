"""Matrix cells: the unit of work of the parallel experiment executor.

A *cell* is one (tool, model, repetition) triple of the paper's evaluation
matrix.  Cells carry everything a worker process needs to run them — the
benchmark entry (whose builder is a picklable module-level function), the
budget and a derived seed — so they can be shipped to a
:class:`~concurrent.futures.ProcessPoolExecutor` unchanged.

Seed derivation is collision-free and process-stable: the legacy scheme
(``seed * 1000 + repetition * 7 + tool_salt % 97``) collides across
(tool, repetition) pairs, and Python's builtin ``hash`` is randomized per
process, so both are replaced by a SHA-256 digest over the identifying
tuple.  ``workers=1`` and ``workers=N`` therefore run every cell with the
same seed and aggregate to bit-identical coverage numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.models.registry import BenchmarkModel

#: Seeds are truncated to 63 bits: plenty of entropy, still a fast C int.
_SEED_BITS = 63


def derive_seed(master: int, model: str, tool: str, repetition: int) -> int:
    """A per-cell seed that cannot collide across (model, tool, repetition).

    Stable across processes and Python versions (unlike ``hash``), and
    injective for all practical matrices (SHA-256 truncated to 63 bits).
    """
    key = f"{master}|{model}|{tool}|{repetition}".encode()
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << _SEED_BITS) - 1)


@dataclass(frozen=True)
class CellSpec:
    """One (tool, model, repetition) cell, ready to ship to a worker."""

    index: int
    tool: str
    model: BenchmarkModel
    repetition: int
    repetitions: int
    seed: int
    budget_s: float
    sldv_max_depth: int = 6
    #: Deep tracing (``repro.trace/1``) for this cell's generator.
    trace: bool = False
    #: Objective-level coverage provenance (``repro.provenance/1``) for
    #: this cell's generator.  Observation only.
    provenance: bool = True
    #: Extra ``StcgConfig`` fields for this cell's generator, as a sorted
    #: (name, value) tuple so the spec stays hashable and picklable (e.g.
    #: ``(("caches", CacheConfig(encoding_size=0)),)`` for a
    #: cache-ablation run).  Ignored by non-STCG tools.
    stcg_overrides: tuple = ()
    #: Warm-start store directory (:mod:`repro.store`), or "" for no
    #: store.  Store keys are scoped per cell (tool + derived seed), so
    #: every worker reads and writes its own document — concurrent
    #: matrix workers never contend on one file.
    store_dir: str = ""

    @property
    def label(self) -> str:
        return (
            f"{self.model.name}/{self.tool} "
            f"rep {self.repetition + 1}/{self.repetitions}"
        )

    def identity(self) -> Dict[str, object]:
        """The fields that identify this cell in telemetry events."""
        return {
            "cell": self.index,
            "model": self.model.name,
            "tool": self.tool,
            "repetition": self.repetition,
            "seed": self.seed,
        }


@dataclass
class CellFailure:
    """A cell that timed out or crashed instead of producing a result.

    The executor records these and keeps going — one hung or crashing cell
    must not abort the rest of the matrix.
    """

    tool: str
    model: str
    repetition: int
    seed: int
    kind: str  # "timeout" | "crash"
    message: str
    traceback: str = ""
    duration_s: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.model}/{self.tool} rep {self.repetition + 1}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "tool": self.tool,
            "model": self.model,
            "repetition": self.repetition,
            "seed": self.seed,
            "kind": self.kind,
            "message": self.message,
            "duration_s": round(self.duration_s, 6),
        }


def plan_matrix(
    models: Sequence[BenchmarkModel],
    tools: Sequence[str],
    *,
    budget_s: float,
    repetitions: int,
    sldv_repetitions: int,
    seed: int,
    sldv_max_depth: int = 6,
    trace: bool = False,
    provenance: bool = True,
    stcg_overrides: Dict[str, object] = None,
    store_dir: str = "",
) -> List[CellSpec]:
    """Expand a matrix into its cell list, in deterministic order.

    The order (model-major, then tool, then repetition) matches the legacy
    serial runner, so progress output and aggregation are stable no matter
    how many workers later execute the plan.
    """
    overrides = tuple(sorted((stcg_overrides or {}).items()))
    cells: List[CellSpec] = []
    for model in models:
        for tool in tools:
            reps = sldv_repetitions if tool == "SLDV" else repetitions
            for repetition in range(reps):
                cells.append(
                    CellSpec(
                        index=len(cells),
                        tool=tool,
                        model=model,
                        repetition=repetition,
                        repetitions=reps,
                        seed=derive_seed(seed, model.name, tool, repetition),
                        budget_s=budget_s,
                        sldv_max_depth=sldv_max_depth,
                        trace=trace,
                        provenance=provenance,
                        stcg_overrides=overrides,
                        store_dir=store_dir,
                    )
                )
    return cells
