"""Process-pool matrix executor with crash isolation and cell timeouts.

The paper's evaluation is a (tool × model × repetition) matrix; this module
fans the cells out across worker processes.  Three properties the legacy
serial runner lacked:

* **parallelism** — cells run on a ``ProcessPoolExecutor``; wall-clock
  scales with cores instead of with the number of cells;
* **crash isolation** — a cell that raises, or a worker that dies outright,
  degrades to a recorded :class:`~repro.exec.cells.CellFailure` instead of
  aborting the matrix (a broken pool re-runs the unfinished cells
  in-process);
* **determinism** — seeds are derived per cell by a process-stable hash and
  results are aggregated in plan order, so ``workers=1`` and ``workers=N``
  produce bit-identical coverage aggregates.

Per-cell wall-clock timeouts are enforced *inside* the running process via
``SIGALRM`` (POSIX): the cell raises :class:`~repro.errors.CellTimeout`,
which the guard converts into a recorded failure while the worker survives
to take the next cell.  On platforms without ``SIGALRM`` (or off the main
thread) the timeout degrades to unenforced, which only ever errs toward
completing the cell.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.simcotest import SimCoTestConfig, SimCoTestGenerator
from repro.baselines.sldv import SldvConfig, SldvGenerator
from repro.core.config import StcgConfig
from repro.core.result import GenerationResult
from repro.core.stcg import StcgGenerator
from repro.errors import CellTimeout, HarnessError
from repro.exec.cells import CellFailure, CellSpec, plan_matrix
from repro.exec.heartbeat import (
    HeartbeatConfig,
    StallWatchdog,
    ensure_heartbeat,
    heartbeat_dir_for,
)
from repro.fuzz.engine import FuzzGenerator, HybridGenerator
from repro.models.registry import BenchmarkModel
from repro.obs.probe import PROBE
from repro.provenance import PROVENANCE_SCHEMA
from repro.telemetry.events import (
    EventLog,
    emit_trace_events,
    fuzz_stats_payload,
    store_stats_payload,
)

#: The paper's three tools, in rendering order.
TOOLS = ("SLDV", "SimCoTest", "STCG")

#: Every dispatchable tool: the paper's three plus the fuzzing engines
#: (``Fuzz`` is the pure mutational baseline, ``Hybrid`` the
#: STCG → targeted-fuzz → STCG pipeline of :mod:`repro.fuzz`).  The
#: default matrix stays the paper's ``TOOLS``; the extra columns are
#: opt-in (``tools=`` / ``repro table3 --tools``).
ALL_TOOLS = TOOLS + ("Fuzz", "Hybrid")


def run_single(
    tool: str,
    model: BenchmarkModel,
    budget_s: float,
    seed: int,
    sldv_max_depth: int = 6,
    trace: bool = False,
    stcg_overrides: Dict[str, object] = None,
    provenance: bool = True,
    store_dir: str = "",
) -> GenerationResult:
    """One generation run of one tool on a fresh build of the model.

    ``stcg_overrides`` carries extra ``StcgConfig`` fields (kernel/cache
    sub-configs, ablation flags) applied only when ``tool == "STCG"``; an
    explicit ``provenance`` override there wins over the ``provenance``
    parameter.  ``store_dir`` attaches the warm-start store to the
    STCG-family tools (an explicit ``store`` override wins); the other
    tools have no solve caches to persist and ignore it.
    """
    compiled = model.build()
    if tool in ("STCG", "Fuzz", "Hybrid"):
        overrides = dict(stcg_overrides or {})
        overrides.setdefault("provenance", provenance)
        if store_dir:
            from repro.core.config import StoreConfig

            overrides.setdefault("store", StoreConfig(path=store_dir))
        config = StcgConfig(
            budget_s=budget_s, seed=seed, trace=trace, **overrides
        )
        if tool == "Fuzz":
            return FuzzGenerator(compiled, config).run()
        if tool == "Hybrid":
            return HybridGenerator(compiled, config).run()
        return StcgGenerator(compiled, config).run()
    if tool == "SimCoTest":
        return SimCoTestGenerator(
            compiled,
            SimCoTestConfig(budget_s=budget_s, seed=seed, trace=trace,
                            provenance=provenance),
        ).run()
    if tool == "SLDV":
        return SldvGenerator(
            compiled,
            SldvConfig(budget_s=budget_s, seed=seed,
                       max_depth=sldv_max_depth, trace=trace,
                       provenance=provenance),
        ).run()
    raise HarnessError(f"unknown tool {tool!r}")


def run_cell(spec: CellSpec) -> GenerationResult:
    """Execute one matrix cell (in whatever process this is called from)."""
    return run_single(
        spec.tool, spec.model, spec.budget_s, spec.seed, spec.sldv_max_depth,
        spec.trace, dict(spec.stcg_overrides), provenance=spec.provenance,
        store_dir=spec.store_dir,
    )


# ----------------------------------------------------------------------
# timeout guard
# ----------------------------------------------------------------------


class _CellAlarm:
    """Context manager raising :class:`CellTimeout` after ``seconds``.

    Uses ``SIGALRM``/``setitimer``, so it interrupts even a cell stuck in a
    tight loop.  A no-op when ``seconds`` is falsy, off the main thread, or
    on platforms without ``SIGALRM``.
    """

    def __init__(self, seconds: Optional[float]):
        self.seconds = seconds
        self._armed = False
        self._previous = None

    def _supported(self) -> bool:
        return (
            hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )

    def __enter__(self):
        if self.seconds and self._supported():
            def _on_alarm(signum, frame):
                raise CellTimeout(
                    f"cell exceeded its {self.seconds:g}s wall-clock timeout"
                )

            self._previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
            self._armed = True
        return self

    def __exit__(self, *exc_info):
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
        return False


# ----------------------------------------------------------------------
# worker payloads
# ----------------------------------------------------------------------


@dataclass
class _CellOutcome:
    """What comes back from a worker: a result or a recorded failure."""

    kind: str  # "ok" | "timeout" | "crash"
    index: int
    duration_s: float
    result: Optional[GenerationResult] = None
    message: str = ""
    traceback: str = ""


def _run_cell_guarded(
    spec: CellSpec,
    cell_timeout: Optional[float],
    heartbeat: Optional[HeartbeatConfig] = None,
) -> _CellOutcome:
    """Run one cell, converting timeouts and crashes into data.

    This is the function shipped to worker processes; it must never raise
    for a cell-level problem, or the failure would take the future (and,
    for hard deaths, the whole pool) down with it.

    When ``heartbeat`` is set, the cell activates this process's
    :data:`~repro.obs.probe.PROBE` and heartbeat writer around the run:
    an immediate beat on entry (so even instant cells leave a record),
    periodic beats from the writer thread while the cell runs, and a
    final ``done`` beat on the way out.
    """
    started = time.monotonic()
    writer = None
    if heartbeat is not None:
        writer = ensure_heartbeat(heartbeat)
        PROBE.enabled = True
        PROBE.activate(
            cell=spec.index,
            model=spec.model.name,
            tool=spec.tool,
            repetition=spec.repetition,
        )
        writer.beat_now()
    try:
        with _CellAlarm(cell_timeout):
            result = run_cell(spec)
        return _CellOutcome(
            "ok", spec.index, time.monotonic() - started, result=result
        )
    except CellTimeout as err:
        return _CellOutcome(
            "timeout", spec.index, time.monotonic() - started,
            message=str(err),
        )
    except Exception as err:
        return _CellOutcome(
            "crash", spec.index, time.monotonic() - started,
            message=f"{type(err).__name__}: {err}",
            traceback=traceback.format_exc(),
        )
    finally:
        if writer is not None:
            PROBE.note(phase="done")
            writer.beat_now()
            PROBE.deactivate()


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------


@dataclass
class ToolOutcome:
    """Aggregated coverage of one tool on one model.

    Cells that failed are excluded from ``runs``; the aggregate properties
    fall back to 0.0 when *every* repetition failed so a partial matrix
    still renders.
    """

    tool: str
    model: str
    runs: List[GenerationResult] = field(default_factory=list)

    def _mean(self, metric: str) -> float:
        if not self.runs:
            return 0.0
        return sum(getattr(r, metric) for r in self.runs) / len(self.runs)

    @property
    def decision(self) -> float:
        return self._mean("decision")

    @property
    def condition(self) -> float:
        return self._mean("condition")

    @property
    def mcdc(self) -> float:
        return self._mean("mcdc")

    @property
    def ok(self) -> bool:
        return bool(self.runs)

    @property
    def representative(self) -> GenerationResult:
        """The run whose decision coverage is the median (for Figure 4)."""
        if not self.runs:
            raise HarnessError(
                f"no successful runs of {self.tool} on {self.model}"
            )
        ordered = sorted(self.runs, key=lambda r: r.decision)
        return ordered[len(ordered) // 2]


@dataclass
class ExperimentResult:
    """Everything a matrix execution produced.

    ``outcomes`` has the legacy ``{model: {tool: ToolOutcome}}`` shape the
    table/figure renderers consume; ``failures`` records every cell that
    timed out or crashed; ``manifest`` is the structured run summary the
    telemetry layer renders.
    """

    outcomes: Dict[str, Dict[str, ToolOutcome]]
    failures: List[CellFailure]
    cells_total: int
    wall_s: float
    manifest: Dict[str, object] = field(default_factory=dict)

    @property
    def cells_ok(self) -> int:
        return self.cells_total - len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures


def execute_matrix(
    models: Sequence[BenchmarkModel],
    tools: Sequence[str] = TOOLS,
    *,
    budget_s: float = 30.0,
    repetitions: int = 3,
    sldv_repetitions: int = 1,
    seed: int = 0,
    sldv_max_depth: int = 6,
    workers: int = 1,
    cell_timeout: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    events: Optional[EventLog] = None,
    trace: bool = False,
    provenance: bool = True,
    stcg_overrides: Optional[Dict[str, object]] = None,
    heartbeat_s: Optional[float] = None,
    stall_fraction: float = 0.5,
    heartbeat_dir: Optional[str] = None,
    store_dir: str = "",
) -> ExperimentResult:
    """Run every tool on every model, fanned out over ``workers`` processes.

    ``workers=1`` runs the plan in-process (still with timeout and crash
    guards); ``workers>1`` ships cells to a process pool.  Both paths use
    the same per-cell seeds and aggregate in plan order, so the coverage
    numbers are identical.

    ``heartbeat_s`` turns on live observability: every worker streams a
    beat each ``heartbeat_s`` seconds to a per-worker JSONL sidecar in
    ``heartbeat_dir`` (default: ``<events path>.hb``), and the parent
    runs a :class:`~repro.exec.heartbeat.StallWatchdog` that emits a
    ``cell_stalled`` event when a running cell goes quiet for
    ``stall_fraction`` of its timeout (of ``budget_s`` when no cell
    timeout is set).  Heartbeats only observe — fixed-seed results are
    bit-identical with them on or off.
    """
    if workers < 1:
        raise HarnessError(f"workers must be >= 1, got {workers}")
    if cell_timeout is not None and cell_timeout <= 0:
        raise HarnessError(f"cell_timeout must be positive, got {cell_timeout}")
    if heartbeat_s is not None and heartbeat_s <= 0:
        raise HarnessError(f"heartbeat_s must be positive, got {heartbeat_s}")
    if not 0.0 < stall_fraction:
        raise HarnessError(
            f"stall_fraction must be positive, got {stall_fraction}"
        )
    heartbeat: Optional[HeartbeatConfig] = None
    if heartbeat_s is not None:
        directory = heartbeat_dir
        if directory is None and events is not None and events.path:
            directory = heartbeat_dir_for(events.path)
        if directory is None:
            import tempfile

            directory = tempfile.mkdtemp(prefix="repro-hb-")
        heartbeat = HeartbeatConfig(directory=directory, interval_s=heartbeat_s)
    cells = plan_matrix(
        models,
        tools,
        budget_s=budget_s,
        repetitions=repetitions,
        sldv_repetitions=sldv_repetitions,
        seed=seed,
        sldv_max_depth=sldv_max_depth,
        trace=trace,
        provenance=provenance,
        stcg_overrides=stcg_overrides,
        store_dir=store_dir,
    )
    started = time.monotonic()
    if events is not None:
        events.emit(
            "matrix_started",
            models=[m.name for m in models],
            tools=list(tools),
            budget_s=budget_s,
            repetitions=repetitions,
            sldv_repetitions=sldv_repetitions,
            seed=seed,
            workers=workers,
            cell_timeout=cell_timeout,
            trace=trace,
            heartbeat_s=heartbeat_s,
            store_dir=store_dir,
            cells=len(cells),
        )

    payloads: List[Optional[_CellOutcome]] = [None] * len(cells)
    watchdog: Optional[StallWatchdog] = None
    if heartbeat is not None and events is not None:
        reference = cell_timeout if cell_timeout is not None else budget_s
        watchdog = StallWatchdog(
            heartbeat.directory,
            quiet_s=max(stall_fraction * reference, 2.0 * heartbeat_s),
            emit=events.emit,
            poll_s=heartbeat_s / 2.0,
        ).start()

    def _record(spec: CellSpec, payload: _CellOutcome) -> None:
        payloads[spec.index] = payload
        if watchdog is not None:
            watchdog.note_done(spec.index)
        _notify(spec, payload, progress, events)

    try:
        if workers == 1 or len(cells) <= 1:
            for spec in cells:
                if events is not None:
                    events.emit("cell_started", **spec.identity())
                _record(spec, _run_cell_guarded(spec, cell_timeout, heartbeat))
        else:
            _run_pooled(cells, workers, cell_timeout, events, _record, heartbeat)
    finally:
        if watchdog is not None:
            watchdog.stop()

    failures: List[CellFailure] = []
    outcomes: Dict[str, Dict[str, ToolOutcome]] = {}
    for spec in cells:
        payload = payloads[spec.index]
        per_tool = outcomes.setdefault(spec.model.name, {})
        outcome = per_tool.setdefault(
            spec.tool, ToolOutcome(spec.tool, spec.model.name)
        )
        if payload.kind == "ok":
            outcome.runs.append(payload.result)
        else:
            failures.append(
                CellFailure(
                    tool=spec.tool,
                    model=spec.model.name,
                    repetition=spec.repetition,
                    seed=spec.seed,
                    kind=payload.kind,
                    message=payload.message,
                    traceback=payload.traceback,
                    duration_s=payload.duration_s,
                )
            )

    wall_s = time.monotonic() - started
    if events is not None:
        events.emit(
            "matrix_finished",
            cells=len(cells),
            ok=len(cells) - len(failures),
            failed=len(failures),
            wall_s=round(wall_s, 6),
        )
    result = ExperimentResult(
        outcomes=outcomes,
        failures=failures,
        cells_total=len(cells),
        wall_s=wall_s,
    )
    result.manifest = (
        events.manifest() if events is not None
        else _bare_manifest(result)
    )
    return result


def _run_pooled(
    cells: Sequence[CellSpec],
    workers: int,
    cell_timeout: Optional[float],
    events: Optional[EventLog],
    record: Callable[[CellSpec, _CellOutcome], None],
    heartbeat: Optional[HeartbeatConfig] = None,
) -> None:
    """Fan cells out over a process pool; survive a broken pool.

    If a worker dies so hard the pool breaks (segfault, OOM kill), every
    unfinished cell is re-run in-process under the same guard — slower, but
    the matrix still completes with every cell accounted for.
    """
    done: Dict[int, bool] = {}
    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
            future_map = {}
            for spec in cells:
                if events is not None:
                    events.emit("cell_started", **spec.identity())
                future_map[
                    pool.submit(_run_cell_guarded, spec, cell_timeout, heartbeat)
                ] = spec
            for future in as_completed(future_map):
                spec = future_map[future]
                try:
                    payload = future.result()
                except Exception:  # BrokenProcessPool and friends
                    continue  # re-run in-process below
                done[spec.index] = True
                record(spec, payload)
    except BrokenProcessPool:
        pass
    # Re-run everything that never produced a payload (broken-pool path).
    for spec in cells:
        if spec.index not in done:
            record(spec, _run_cell_guarded(spec, cell_timeout, heartbeat))


def _notify(
    spec: CellSpec,
    payload: _CellOutcome,
    progress: Optional[Callable[[str], None]],
    events: Optional[EventLog],
) -> None:
    """Per-completed-cell progress + telemetry, from the parent process."""
    if payload.kind == "ok":
        result = payload.result
        if progress is not None:
            progress(
                f"{spec.label}: D={result.decision:.0%} "
                f"C={result.condition:.0%} M={result.mcdc:.0%}"
            )
        if events is not None:
            events.emit(
                "cell_finished",
                **spec.identity(),
                duration_s=round(payload.duration_s, 6),
                decision=result.decision,
                condition=result.condition,
                mcdc=result.mcdc,
                cases=len(result.suite),
                stats=dict(result.stats),
            )
            for point in result.timeline:
                events.emit(
                    "timeline_point",
                    cell=spec.index,
                    t=round(point.t, 6),
                    decision=point.decision_coverage,
                    origin=point.origin,
                    new_branches=point.new_branches,
                )
            emit_trace_events(events, spec.identity(), result.trace_data)
            if "fuzz_executions" in result.stats:
                events.emit(
                    "fuzz_stats", **spec.identity(), **fuzz_stats_payload(result.stats)
                )
            if "store_reads" in result.stats:
                events.emit(
                    "store_stats",
                    **spec.identity(),
                    **store_stats_payload(result.stats),
                )
            if result.provenance:
                events.emit(
                    "provenance",
                    **spec.identity(),
                    schema=PROVENANCE_SCHEMA,
                    provenance=result.provenance,
                )
    else:
        if progress is not None:
            progress(f"{spec.label}: FAILED ({payload.kind}: {payload.message})")
        if events is not None:
            events.emit(
                "cell_failed",
                **spec.identity(),
                kind=payload.kind,
                message=payload.message,
                duration_s=round(payload.duration_s, 6),
            )


def _bare_manifest(result: ExperimentResult) -> Dict[str, object]:
    """A minimal manifest when no telemetry sink was attached."""
    return {
        "schema": "repro.run-manifest/1",
        "cells": result.cells_total,
        "ok": result.cells_ok,
        "failed": len(result.failures),
        "wall_s": round(result.wall_s, 6),
        "failures": [f.to_dict() for f in result.failures],
        "coverage": {
            model: {
                tool: {
                    "decision": outcome.decision,
                    "condition": outcome.condition,
                    "mcdc": outcome.mcdc,
                    "runs": len(outcome.runs),
                }
                for tool, outcome in per_tool.items()
            }
            for model, per_tool in result.outcomes.items()
        },
    }
