"""Worker heartbeats and the parent-side stall watchdog.

Live observability for pooled matrix runs.  Each worker process streams
periodic *beats* — cell identity, phase, state-tree size,
coverage-so-far, solver calls, peak RSS — to its own JSONL sidecar file
(``hb-<pid>.jsonl``), so the files need no cross-process locking and a
killed worker leaves its last beat behind.  The parent tails the sidecar
directory with a :class:`StallWatchdog` and emits a ``cell_stalled``
event into the run's :class:`~repro.telemetry.events.EventLog` when a
running cell goes quiet for a configurable fraction of its timeout.

Beat schema (``repro.heartbeat/1``) — every line is an object with:

* ``schema``/``pid``/``n`` — version tag, writer process, 0-based beat
  counter within this file,
* ``cell``/``model``/``tool``/``repetition`` — which cell is running,
* ``phase``/``cell_elapsed_s``/``tree_nodes``/``solver_calls``/
  ``coverage`` — the :class:`~repro.obs.probe.ProgressProbe` sample,
* ``rss_kb`` — peak resident set size via ``resource.getrusage``
  (``None`` where the platform lacks ``resource``).

Observation must not perturb: the beat thread only *reads* the probe and
the probe never feeds back into the generator, so fixed-seed suites are
bit-identical with heartbeats on or off (pinned by the equivalence
suite).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

from repro.errors import ReproError
from repro.obs.probe import PROBE

__all__ = [
    "HEARTBEAT_SCHEMA",
    "HeartbeatConfig",
    "HeartbeatWriter",
    "StallWatchdog",
    "ensure_heartbeat",
    "heartbeat_dir_for",
    "read_heartbeats",
]

#: Version tag embedded in every beat line.
HEARTBEAT_SCHEMA = "repro.heartbeat/1"


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unknown)."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if os.uname().sysname == "Darwin":  # pragma: no cover
        peak //= 1024
    return int(peak)


def heartbeat_dir_for(events_path: str) -> str:
    """The sidecar directory derived from an event-log path."""
    return events_path + ".hb"


def heartbeat_path(directory: str, pid: Optional[int] = None) -> str:
    """The per-process sidecar file inside ``directory``."""
    return os.path.join(directory, f"hb-{pid if pid is not None else os.getpid()}.jsonl")


@dataclass(frozen=True)
class HeartbeatConfig:
    """What a worker needs to start beating (picklable, ships to the pool)."""

    #: Directory the per-worker ``hb-<pid>.jsonl`` sidecars live in.
    directory: str
    #: Seconds between beats.
    interval_s: float = 1.0


class HeartbeatWriter:
    """One per worker process: a daemon thread sampling the probe.

    The thread wakes every ``interval_s``, samples :data:`PROBE`, and —
    when a cell is active — appends one JSON line to this process's
    sidecar.  :meth:`beat_now` forces an immediate beat (cell start and
    finish), so even cells shorter than the interval leave a record.
    """

    def __init__(self, config: HeartbeatConfig):
        self.config = config
        os.makedirs(config.directory, exist_ok=True)
        self.path = heartbeat_path(config.directory)
        # Append: one worker process runs many cells through one file.
        self._handle = open(self.path, "a")
        self._n = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            self.beat_now()

    def beat_now(self) -> Optional[Dict[str, object]]:
        """Write one beat immediately (no-op between cells)."""
        sample = PROBE.sample()
        if sample is None:
            return None
        with self._lock:
            beat: Dict[str, object] = {
                "schema": HEARTBEAT_SCHEMA,
                "pid": os.getpid(),
                "n": self._n,
                "rss_kb": peak_rss_kb(),
            }
            beat.update(sample)
            self._n += 1
            self._handle.write(json.dumps(beat) + "\n")
            self._handle.flush()
            return beat

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        with self._lock:
            self._handle.close()


#: The per-process writer singleton (workers beat through one file).
_WRITER: Optional[HeartbeatWriter] = None


def ensure_heartbeat(config: HeartbeatConfig) -> HeartbeatWriter:
    """Get or start this process's heartbeat writer."""
    global _WRITER
    if _WRITER is None or _WRITER.config.directory != config.directory:
        _WRITER = HeartbeatWriter(config)
    return _WRITER


def read_heartbeats(directory: str) -> List[Dict[str, object]]:
    """Parse every sidecar in ``directory`` into one list of beats."""
    beats: List[Dict[str, object]] = []
    if not os.path.isdir(directory):
        return beats
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("hb-") and name.endswith(".jsonl")):
            continue
        path = os.path.join(directory, name)
        with open(path) as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    beats.append(json.loads(line))
                except json.JSONDecodeError as err:
                    raise ReproError(
                        f"{path}:{line_no}: malformed heartbeat line: {err}"
                    ) from err
    return beats


class StallWatchdog:
    """Parent-side liveness monitor over the heartbeat sidecar directory.

    Tails every ``hb-*.jsonl`` file incrementally (byte offsets per file,
    tolerant of torn final lines) and tracks, per cell, the parent-clock
    time its *progress signature* — phase, tree size, solver calls,
    coverage — last changed; comparing observation times on one clock
    sidesteps worker/parent clock skew entirely.  Quietness means frozen
    progress, not missing beats: a worker whose main thread is wedged
    keeps beating (the writer is a daemon thread) with an unchanged
    signature, and a worker that died stops beating with its signature
    frozen at the last line — both go quiet; a healthy slow cell keeps
    changing its counters and never does.  A cell that has beaten at
    least once, has not finished, and has been quiet for ``quiet_s``
    seconds gets one ``cell_stalled`` event carrying its identity and
    last known progress.  Cells that never beat are merely *queued* —
    ``cell_started`` is emitted at submit time for every cell, so silence
    before the first beat is not evidence of a stall.

    ``check(now)`` is separated from the polling thread so tests can
    drive the clock explicitly.
    """

    def __init__(
        self,
        directory: str,
        quiet_s: float,
        emit: Callable[..., object],
        poll_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ):
        if quiet_s <= 0:
            raise ReproError(f"quiet_s must be positive, got {quiet_s!r}")
        self.directory = directory
        self.quiet_s = quiet_s
        self.poll_s = poll_s
        self._emit = emit
        self._clock = clock
        self._offsets: Dict[str, int] = {}
        self._partial: Dict[str, str] = {}
        #: cell index -> [time the progress signature last changed,
        #:                latest beat payload, progress signature]
        self._last_seen: Dict[int, list] = {}
        self._done: set = set()
        self._flagged: set = set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "StallWatchdog":
        self._thread = threading.Thread(
            target=self._run, name="repro-stall-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.poll_s):
            self.scan()
            self.check(self._clock())

    # -- bookkeeping ---------------------------------------------------

    def note_done(self, cell: int) -> None:
        """The parent recorded this cell's outcome; it can no longer stall."""
        self._done.add(cell)

    @property
    def stalled_cells(self) -> List[int]:
        return sorted(self._flagged)

    # -- the scan/check cycle ------------------------------------------

    def scan(self) -> int:
        """Ingest new beats from every sidecar; returns how many."""
        if not os.path.isdir(self.directory):
            return 0
        now = self._clock()
        ingested = 0
        for name in sorted(os.listdir(self.directory)):
            if not (name.startswith("hb-") and name.endswith(".jsonl")):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path) as handle:
                    handle.seek(self._offsets.get(path, 0))
                    chunk = handle.read()
                    self._offsets[path] = handle.tell()
            except OSError:
                continue
            chunk = self._partial.pop(path, "") + chunk
            lines = chunk.split("\n")
            # A torn final line (no trailing newline yet) waits for the
            # next scan.
            if lines and lines[-1]:
                self._partial[path] = lines[-1]
            for line in lines[:-1]:
                line = line.strip()
                if not line:
                    continue
                try:
                    beat = json.loads(line)
                except json.JSONDecodeError:
                    continue
                cell = beat.get("cell")
                if cell is None:
                    continue
                # Progress, not liveness: only a *changed* signature
                # resets the quiet clock (n / elapsed tick regardless).
                signature = (
                    beat.get("phase"),
                    beat.get("tree_nodes"),
                    beat.get("solver_calls"),
                    beat.get("coverage"),
                )
                tracked = self._last_seen.get(int(cell))
                if tracked is None or tracked[2] != signature:
                    self._last_seen[int(cell)] = [now, beat, signature]
                else:
                    tracked[1] = beat  # freshest payload, frozen clock
                ingested += 1
        return ingested

    def check(self, now: float) -> List[int]:
        """Flag newly stalled cells as of parent time ``now``."""
        newly: List[int] = []
        for cell, (seen_at, beat, _sig) in sorted(self._last_seen.items()):
            if cell in self._done or cell in self._flagged:
                continue
            quiet = now - seen_at
            if quiet < self.quiet_s:
                continue
            self._flagged.add(cell)
            newly.append(cell)
            self._emit(
                "cell_stalled",
                cell=cell,
                model=beat.get("model"),
                tool=beat.get("tool"),
                repetition=beat.get("repetition"),
                phase=beat.get("phase"),
                quiet_s=round(quiet, 3),
                threshold_s=round(self.quiet_s, 3),
                last_tree_nodes=beat.get("tree_nodes"),
                last_solver_calls=beat.get("solver_calls"),
                last_coverage=beat.get("coverage"),
            )
        return newly
