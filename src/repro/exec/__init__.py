"""Parallel experiment executor: matrix cells, process pool, failures."""

from repro.exec.cells import CellFailure, CellSpec, derive_seed, plan_matrix
from repro.exec.executor import (
    ExperimentResult,
    TOOLS,
    ToolOutcome,
    execute_matrix,
    run_cell,
    run_single,
)

__all__ = [
    "CellFailure",
    "CellSpec",
    "ExperimentResult",
    "TOOLS",
    "ToolOutcome",
    "derive_seed",
    "execute_matrix",
    "plan_matrix",
    "run_cell",
    "run_single",
]
