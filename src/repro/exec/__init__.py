"""Parallel experiment executor: matrix cells, process pool, failures."""

from repro.exec.cells import CellFailure, CellSpec, derive_seed, plan_matrix
from repro.exec.executor import (
    ALL_TOOLS,
    ExperimentResult,
    TOOLS,
    ToolOutcome,
    execute_matrix,
    run_cell,
    run_single,
)
from repro.exec.heartbeat import (
    HEARTBEAT_SCHEMA,
    HeartbeatConfig,
    StallWatchdog,
    heartbeat_dir_for,
    read_heartbeats,
)

__all__ = [
    "ALL_TOOLS",
    "CellFailure",
    "CellSpec",
    "ExperimentResult",
    "HEARTBEAT_SCHEMA",
    "HeartbeatConfig",
    "StallWatchdog",
    "TOOLS",
    "ToolOutcome",
    "derive_seed",
    "execute_matrix",
    "heartbeat_dir_for",
    "plan_matrix",
    "read_heartbeats",
    "run_cell",
    "run_single",
]
