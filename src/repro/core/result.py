"""Common result types for all three test-case generators.

STCG and both baselines return a :class:`GenerationResult`, so the harness
compares them uniformly (Table III) and plots their timelines (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.coverage.collector import CoverageSummary
from repro.core.testcase import TestSuite

#: Timeline event origins (the paper's Figure 4 markers).
ORIGIN_SOLVER = "solver"  # "△" — state-aware constraint solving
ORIGIN_RANDOM = "random"  # "◇" — random input-sequence execution
ORIGIN_TOOL = "tool"  # baseline tools (unmarked lines)
ORIGIN_FUZZ = "fuzz"  # coverage-guided mutational fuzzing (repro.fuzz)


@dataclass
class TimelineEvent:
    """One emitted test case: when, what coverage it reached, and how."""

    t: float
    decision_coverage: float
    origin: str
    new_branches: int = 0


@dataclass
class GenerationResult:
    """Everything one generation run produced."""

    tool: str
    model_name: str
    summary: CoverageSummary
    suite: TestSuite
    timeline: List[TimelineEvent] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    #: Deep-tracing aggregates (``repro.trace/1``): phase totals, solver
    #: stage metrics, tree growth, slowest solver targets.  Empty unless
    #: the run was traced; kept separate from ``stats`` so tracing cannot
    #: perturb the comparison numbers.
    trace_data: Dict[str, object] = field(default_factory=dict)
    #: Objective-level coverage provenance (``repro.provenance/1``):
    #: which (case, step, origin) first covered each objective, and the
    #: solver-attempt audit chain for each uncovered one.  Empty when the
    #: generator's ``provenance`` knob is off; observation only, like
    #: ``trace_data``.
    provenance: Dict[str, object] = field(default_factory=dict)

    @property
    def decision(self) -> float:
        return self.summary.decision

    @property
    def condition(self) -> float:
        return self.summary.condition

    @property
    def mcdc(self) -> float:
        return self.summary.mcdc

    def coverage_at(self, t: float) -> float:
        """Decision coverage reached by time ``t`` (step function)."""
        best = 0.0
        for event in self.timeline:
            if event.t <= t:
                best = max(best, event.decision_coverage)
        return best

    def __repr__(self) -> str:
        return (
            f"GenerationResult({self.tool} on {self.model_name}: "
            f"D={self.decision:.0%} C={self.condition:.0%} M={self.mcdc:.0%}, "
            f"{len(self.suite)} cases)"
        )
