"""Test-suite minimization: greedy set cover over coverage goals.

STCG emits one test case per coverage event, so suites contain redundancy
(later cases subsume earlier short ones that share a prefix).  Minimization
replays each case in isolation to determine its goal set — covered branches
plus satisfied condition obligations — then keeps a greedy minimum subset
that preserves the full suite's coverage.  Classic Harrold-Gupta-Soffa
style reduction, adapted to the three coverage criteria at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from repro.coverage.collector import CoverageCollector
from repro.core.testcase import TestCase, TestSuite
from repro.model.graph import CompiledModel
from repro.model.simulator import Simulator

Goal = Tuple  # ("branch", id) or ("value"/"mcdc", point, atom, polarity)


@dataclass
class MinimizationResult:
    """The reduced suite plus before/after bookkeeping."""

    suite: TestSuite
    original_cases: int
    kept_cases: int
    goals_total: int

    @property
    def reduction(self) -> float:
        if self.original_cases == 0:
            return 0.0
        return 1.0 - self.kept_cases / self.original_cases


def goals_of_case(compiled: CompiledModel, case: TestCase) -> FrozenSet[Goal]:
    """Replay one case from the initial state; return the goals it covers."""
    collector = CoverageCollector(compiled.registry)
    simulator = Simulator(compiled, collector)
    goals: Set[Goal] = set()

    def on_obligations(index, new_obligations):
        for obligation in new_obligations:
            goals.add(
                (
                    "mcdc" if obligation.determining else "value",
                    obligation.point_id,
                    obligation.atom,
                    obligation.polarity,
                )
            )

    outcome = simulator.run_sequence(
        case.inputs, on_obligations=on_obligations
    )
    for branch_id in outcome.new_branch_ids:
        goals.add(("branch", branch_id))
    return frozenset(goals)


def minimize_suite(
    compiled: CompiledModel, suite: TestSuite
) -> MinimizationResult:
    """Greedy set-cover reduction preserving all covered goals.

    Ties are broken toward shorter cases, so the reduced suite is also
    cheaper to execute, not just smaller.
    """
    case_goals: List[Tuple[TestCase, FrozenSet[Goal]]] = [
        (case, goals_of_case(compiled, case)) for case in suite
    ]
    universe: Set[Goal] = set()
    for _, goals in case_goals:
        universe |= goals

    remaining = set(universe)
    kept: List[TestCase] = []
    candidates = list(case_goals)
    while remaining and candidates:
        candidates.sort(
            key=lambda cg: (len(cg[1] & remaining), -cg[0].length),
            reverse=True,
        )
        best_case, best_goals = candidates.pop(0)
        gain = best_goals & remaining
        if not gain:
            break
        kept.append(best_case)
        remaining -= gain

    reduced = TestSuite(suite.model_name, list(suite.input_names))
    for case in kept:
        reduced.add(case)
    return MinimizationResult(
        suite=reduced,
        original_cases=len(suite),
        kept_cases=len(kept),
        goals_total=len(universe),
    )
