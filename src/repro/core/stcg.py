"""The STCG generator: Algorithms 1 and 2 plus the outer iteration loop.

The structure follows the paper's Figure 2 exactly:

* **state-aware solving** (:meth:`StcgGenerator._state_aware_solve`,
  Algorithm 1) walks branches sorted by depth and the state tree, solves
  one model iteration with the node's state substituted as constants, and
  returns the first (state, branch, input) it can satisfy;
* **dynamic execution** (:meth:`StcgGenerator._dynamic_execute`,
  Algorithm 2) replays the solved input from the target state — or, when
  nothing was solvable, a random sequence of previously solved inputs from
  a random node — growing the state tree and synthesizing a test case
  whenever new coverage appears.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.solve import CACHEABLE_UNSAT_STAGES, SolveCache
from repro.coverage.collector import CoverageCollector
from repro.coverage.registry import Branch
from repro.core.config import StcgConfig
from repro.core.input_library import InputLibrary
from repro.core.result import (
    GenerationResult,
    ORIGIN_RANDOM,
    ORIGIN_SOLVER,
    TimelineEvent,
)
from repro.core.state_tree import StateTree, StateTreeNode
from repro.core.testcase import TestCase, TestSuite
from repro.expr.ast import Const
from repro.metrics import (
    CASE_LENGTH_BOUNDS,
    MetricsRegistry,
    cache_view,
    declare_instruments,
    kernel_view,
    populate_registry,
    solver_stages_view,
    solverc_view,
)
from repro.model.graph import CompiledModel
from repro.model.inputs import random_input
from repro.model.simulator import Simulator
from repro.obs.probe import PROBE
from repro.obs.stages import merge_stage_dicts
from repro.obs.tracer import NULL_TRACER, PhaseProfiler, Tracer
from repro.provenance import NULL_LEDGER, ProvenanceLedger
from repro.solver.encoder import OneStepEncoding
from repro.solver.engine import SolverConfig, SolverEngine, Status
from repro.solverc.compiler import ConstraintCompiler, SolvercStats

#: Schema tag of the deep-tracing aggregates in ``GenerationResult``.
TRACE_SCHEMA = "repro.trace/1"


@dataclass
class TraceEntry:
    """One recorded event of the generation process (Table I rows)."""

    kind: str  # solve_ok | solve_fail | random | exec
    branch_label: Optional[str] = None
    node_id: Optional[int] = None
    new_node_ids: Tuple[int, ...] = ()
    achieved_branches: Tuple[int, ...] = ()


@dataclass
class SolveTarget:
    """Algorithm 1's output triple.

    ``branch`` is ``None`` when the target is a condition/MCDC obligation
    rather than a model branch.
    """

    node: StateTreeNode
    branch: Optional[Branch]
    input_data: Dict[str, object]


class StcgGenerator:
    """State-aware test case generation for one compiled model."""

    def __init__(
        self,
        compiled: CompiledModel,
        config: Optional[StcgConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
        cache: Optional[SolveCache] = None,
    ):
        self.compiled = compiled
        self.config = config or StcgConfig()
        self._clock = clock
        #: Fingerprint-keyed encoding/verdict caches.  Private per
        #: generator by default; pass a shared instance to reuse learned
        #: encodings and dead verdicts across runs of the same model.
        if cache is not None:
            self.cache = cache
        else:
            self.cache = SolveCache(
                compiled.name,
                encoding_capacity=self.config.caches.encoding_size,
                compiled_capacity=self.config.caches.compiled_size,
                verdicts=self.config.caches.verdicts,
            )
        #: Observability hook.  An explicit ``tracer`` wins; otherwise
        #: ``config.trace`` turns on an aggregating profiler; the default
        #: no-op tracer keeps every hook below the noise floor.
        if tracer is not None:
            self.tracer = tracer
        elif self.config.trace:
            self.tracer = PhaseProfiler(clock=time.monotonic)
        else:
            self.tracer = NULL_TRACER
        self._rng = random.Random(self.config.seed)
        self._engine = SolverEngine(self.config.solver)
        lite = SolverConfig(
            max_samples=12,
            avm_evaluations=80,
            time_budget_s=min(0.03, self.config.solver.time_budget_s),
            seed=self.config.seed,
        )
        self._lite_engine = SolverEngine(lite)
        #: Solver-kernel compiler (:mod:`repro.solverc`), or None when
        #: ``config.kernels.solver`` is off.  Compiled bundles are cached
        #: in :attr:`cache` keyed by (state fingerprint, target), and the
        #: engine falls back to the interpreter per stage for anything
        #: the compiler could not lower — results are bit-identical
        #: either way.
        self._compiler: Optional[ConstraintCompiler] = (
            ConstraintCompiler() if self.config.kernels.solver else None
        )
        #: Failed solver attempts per target (branch id / obligation).
        self._failures: Dict[object, int] = {}
        self.collector = CoverageCollector(compiled.registry)
        #: Objective-level coverage provenance (``repro.provenance/1``).
        #: Pure observation — never feeds back into the algorithm.
        self.ledger = (
            ProvenanceLedger(compiled.registry, "STCG")
            if self.config.provenance else NULL_LEDGER
        )
        self.simulator = Simulator(
            compiled,
            self.collector,
            tracer=self.tracer,
            kernel=self.config.kernels.sim,
        )
        self.tree = StateTree(
            self.simulator.get_state(), dedup=self.config.caches.tree_dedup
        )
        self.library = InputLibrary()
        self.suite = TestSuite(
            compiled.name, [spec.name for spec in compiled.inports]
        )
        self.timeline: List[TimelineEvent] = []
        self.stats: Dict[str, int] = {
            "solver_calls": 0,
            "sat": 0,
            "unsat": 0,
            "unknown": 0,
            "const_false_skips": 0,
            "verdict_skips": 0,
            "random_sequences": 0,
            "steps_executed": 0,
            "warmup_steps": 0,
        }
        #: The unified metrics registry (``repro.metrics/1``).  Declared
        #: up front so an untraced or zero-activity run still snapshots
        #: the full instrument set; most counters are projected from the
        #: legacy accumulators at the end of the run, but live-observed
        #: distributions (``stcg.case_length``) record as they happen.
        self.metrics = declare_instruments(MetricsRegistry())
        self._case_hist = self.metrics.histogram(
            "stcg.case_length", CASE_LENGTH_BOUNDS
        )
        self._start = 0.0
        self._branches = compiled.registry.branches_by_depth()
        #: Branch ids proven unreachable by abstract interpretation.
        self.proven_dead: set = set()
        if self.config.prove_dead_branches:
            from repro.analysis import find_dead_branches

            self.proven_dead = {
                b.branch_id for b in find_dead_branches(compiled)
            }
        self.stats["proven_dead"] = len(self.proven_dead)
        #: Persistent cross-run warm-start store (:mod:`repro.store`),
        #: or None when ``config.store`` is unset.  Scoped per cell
        #: (tool + seed) so matrix workers never share a file; the fuzz
        #: generators re-scope it before first use.
        self.store = None
        if self.config.store is not None:
            from repro.store import WarmStore

            self.store = WarmStore(
                self.config.store,
                compiled,
                self.config,
                scope=f"STCG|seed={self.config.seed}",
            )
            self.stats.update(
                store_reads=0,
                store_hits=0,
                store_misses=0,
                store_rejected=0,
                store_writes=0,
                restored_verdicts=0,
                restored_markers=0,
                restored_snapshots=0,
                restored_encodings=0,
                corpus_seeds=0,
            )
        #: Derived-state sizes right after a successful warm-start
        #: restore — the skip-save fingerprint (see :meth:`_store_save`).
        self._store_snapshot: Optional[tuple] = None
        #: Process trace (populated when config.record_trace is on).
        self.trace: List[TraceEntry] = []

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def run(self) -> GenerationResult:
        """Generate test cases until the budget expires or coverage is full."""
        self._store_load()
        self._start = self._clock()
        tracer = self.tracer
        probe = PROBE
        if probe.enabled:
            # Publish progress for heartbeats: plain attribute writes that
            # never feed back into the algorithm (see repro.obs.probe).
            probe.note(coverage_fn=self.collector.decision_coverage)
        if self.config.random_warmup_s > 0:
            if probe.enabled:
                probe.note(phase="warmup")
            with tracer.span("warmup"):
                self._random_warmup()
        while not self._done():
            if probe.enabled:
                probe.note(
                    phase="solve_scan",
                    tree_nodes=len(self.tree),
                    solver_calls=self.stats["solver_calls"],
                )
            with tracer.span("solve_scan"):
                target = self._state_aware_solve()
            if self._out_of_time():
                break
            if probe.enabled:
                probe.note(
                    phase="execute",
                    solver_calls=self.stats["solver_calls"],
                )
            with tracer.span("execute"):
                self._dynamic_execute(target)
            if target is None:
                # Nothing was solvable anywhere: bias toward exploration for
                # a few rounds before paying for another full solve scan.
                for _ in range(self.config.random_batch - 1):
                    if self._done():
                        break
                    with tracer.span("execute"):
                        self._dynamic_execute(None)
            if tracer.enabled:
                tracer.sample("tree_nodes", self._elapsed(), len(self.tree))
        self._store_save()
        return GenerationResult(
            tool="STCG",
            model_name=self.compiled.name,
            summary=self.collector.summary(),
            suite=self.suite,
            timeline=list(self.timeline),
            stats={**self.stats, "tree_nodes": len(self.tree)},
            trace_data=self._trace_data(),
            provenance=self.ledger.snapshot(),
        )

    def _trace_data(self) -> Dict[str, object]:
        """Assemble the ``repro.trace/1`` aggregates (empty when untraced).

        The subsystem counter payloads (``solver_stages``, ``cache``,
        ``kernel``, ``solverc``) are no longer built from their legacy
        accumulators directly: the accumulators are folded into the
        unified metrics registry once, and each payload is a *view* over
        the resulting ``repro.metrics/1`` snapshot — so the snapshot and
        the legacy shapes can never disagree.
        """
        summarize = getattr(self.tracer, "summary", None)
        if summarize is None:
            return {}
        summary = summarize()
        stages = merge_stage_dicts({}, self._engine.metrics.as_dict())
        merge_stage_dicts(stages, self._lite_engine.metrics.as_dict())
        cache_stats = self.cache.stats()
        kernel_stats = self.simulator.kernel_stats()
        populate_registry(
            self.metrics,
            stats=self.stats,
            solver_stages=stages,
            cache=cache_stats,
            kernel=kernel_stats,
            solverc=self._solverc_stats(),
            tree_nodes=len(self.tree),
            dedup_links=self.tree.dedup_links,
            verdict_skips=self.stats["verdict_skips"],
            unique_states=self.tree.unique_states(),
        )
        snapshot = self.metrics.snapshot()
        counters = dict(summary["counters"])
        counters.update(cache_stats)
        counters["dedup_links"] = self.tree.dedup_links
        kernel = kernel_view(snapshot)
        if kernel_stats is not None:
            # A label list, not a metric: carried alongside the view.
            kernel["fallback_classes"] = list(
                kernel_stats.get("fallback_classes") or []
            )
        data: Dict[str, object] = {
            "schema": TRACE_SCHEMA,
            "phase_totals": summary["phase_totals"],
            "solver_stages": solver_stages_view(snapshot),
            "tree_growth": summary["series"].get("tree_nodes", []),
            "solver_targets": summary["targets"],
            "counters": counters,
            "cache": cache_view(snapshot),
            "kernel": kernel,
            "solverc": solverc_view(snapshot),
        }
        if self.config.metrics:
            data["metrics"] = snapshot
        return data

    def _solverc_stats(self) -> Dict[str, object]:
        """Solver-kernel counters over both engines plus the compiler."""
        if self._compiler is None:
            return {"enabled": False}
        merged = SolvercStats()
        merged.merge(self._engine.solverc)
        merged.merge(self._lite_engine.solverc)
        merged.merge(self._compiler.stats)
        return {"enabled": True, **merged.as_dict()}

    # ------------------------------------------------------------------
    # Algorithm 1: state-aware solving
    # ------------------------------------------------------------------

    def _state_aware_solve(self) -> Optional[SolveTarget]:
        for branch in self._branches:
            if self.collector.is_branch_covered(branch):
                continue
            if branch.branch_id in self.proven_dead:
                continue
            for node in self.tree.solve_nodes():
                if node.is_solved(branch.branch_id):
                    continue
                if self._out_of_time():
                    return None
                target = self._solve_pair(node, branch)
                if target is not None:
                    return target
        # Branch obligations exhausted for now; work on condition / MCDC
        # obligations ("all the coverage requirements" of the paper).
        for obligation in self.collector.unsatisfied_condition_obligations():
            for node in self.tree.solve_nodes():
                if obligation in node.solved_obligations:
                    continue
                if self._out_of_time():
                    return None
                target = self._solve_obligation(node, obligation)
                if target is not None:
                    return target
        return None

    def _solve_pair(
        self, node: StateTreeNode, branch: Branch
    ) -> Optional[SolveTarget]:
        """One solver attempt for (state, branch); marks the pair attempted."""
        target_key = ("branch", branch.branch_id)
        ledger = self.ledger
        objective = ledger.branch_objective(branch) if ledger.enabled else None
        node.set_solved(branch.branch_id)
        if self._skip_dead(node, target_key, branch.label, objective):
            return None
        encoding = self._encoding(node)
        constraint = encoding.path_constraint(branch)
        fingerprint = node.state.fingerprint()
        if (
            self.config.skip_constant_false
            and isinstance(constraint, Const)
            and constraint.value is False
        ):
            # The branch is unreachable from this state regardless of input
            # (e.g. a transition whose source state is inactive).  The skip
            # never counted toward failure backoff, so a cached replay of
            # it must not either.
            self.stats["const_false_skips"] += 1
            self.cache.mark_dead(fingerprint, target_key, counts_failure=False)
            if ledger.enabled:
                ledger.skip(objective, "const_false")
            if self.config.record_trace:
                self.trace.append(
                    TraceEntry("solve_fail", branch.label, node.node_id)
                )
            return None
        self.stats["solver_calls"] += 1
        engine = self._engine_for(target_key)
        compiled = self._compiled_for(
            fingerprint, target_key, constraint, encoding
        )
        with self.tracer.span("solve", target=branch.label):
            result = engine.solve(
                constraint, encoding.variables, self._rng, compiled=compiled
            )
        self.stats[result.status.value] += 1
        if ledger.enabled:
            ledger.attempt(
                objective,
                node.node_id,
                result.status.value,
                result.stats.stage,
                "lite" if engine is self._lite_engine else "full",
                compiled is not None,
            )
        self._note_outcome(target_key, result.status is Status.SAT)
        if result.status is not Status.SAT:
            if (
                result.status is Status.UNSAT
                and result.stats.stage in CACHEABLE_UNSAT_STAGES
            ):
                self.cache.mark_dead(
                    fingerprint, target_key, counts_failure=True
                )
            if self.config.record_trace:
                self.trace.append(
                    TraceEntry("solve_fail", branch.label, node.node_id)
                )
            return None
        assert result.model is not None
        self.library.add(result.model)
        if self.config.record_trace:
            self.trace.append(TraceEntry("solve_ok", branch.label, node.node_id))
        return SolveTarget(node, branch, result.model)

    def _solve_obligation(self, node: StateTreeNode, obligation) -> Optional[SolveTarget]:
        """One solver attempt for (state, condition obligation)."""
        target_key = ("obligation", obligation)
        ledger = self.ledger
        objective = (
            ledger.obligation_objective(obligation) if ledger.enabled else None
        )
        node.solved_obligations.add(obligation)
        if self._skip_dead(node, target_key, None, objective):
            return None
        encoding = self._encoding(node)
        constraint = encoding.obligation_constraint(obligation)
        fingerprint = node.state.fingerprint()
        if (
            self.config.skip_constant_false
            and isinstance(constraint, Const)
            and constraint.value is False
        ):
            self.stats["const_false_skips"] += 1
            self.cache.mark_dead(fingerprint, target_key, counts_failure=False)
            if ledger.enabled:
                ledger.skip(objective, "const_false")
            return None
        self.stats["solver_calls"] += 1
        engine = self._engine_for(target_key)
        compiled = self._compiled_for(
            fingerprint, target_key, constraint, encoding
        )
        with self.tracer.span("solve", target=repr(obligation)):
            result = engine.solve(
                constraint, encoding.variables, self._rng, compiled=compiled
            )
        self.stats[result.status.value] += 1
        if ledger.enabled:
            ledger.attempt(
                objective,
                node.node_id,
                result.status.value,
                result.stats.stage,
                "lite" if engine is self._lite_engine else "full",
                compiled is not None,
            )
        self._note_outcome(target_key, result.status is Status.SAT)
        if result.status is not Status.SAT:
            if (
                result.status is Status.UNSAT
                and result.stats.stage in CACHEABLE_UNSAT_STAGES
            ):
                self.cache.mark_dead(
                    fingerprint, target_key, counts_failure=True
                )
            return None
        assert result.model is not None
        self.library.add(result.model)
        return SolveTarget(node, None, result.model)

    def _skip_dead(
        self,
        node: StateTreeNode,
        target_key,
        branch_label: Optional[str],
        objective: Optional[str] = None,
    ) -> bool:
        """Skip a (state, target) pair the cache knows is dead.

        The skip replicates everything the refuted attempt would have done
        to generator state: failure backoff advances iff the original
        refutation counted as a solver failure, and the process trace gets
        the same ``solve_fail`` row.  No RNG is consumed either way (the
        cached stages are draw-free), so a warm run stays bit-identical.
        """
        counts_failure = self.cache.dead_verdict(
            node.state.fingerprint(), target_key
        )
        if counts_failure is None:
            return False
        self.stats["verdict_skips"] += 1
        self._engine.metrics.note_skip("verdict")
        if objective is not None and self.ledger.enabled:
            self.ledger.skip(objective, "verdict")
        if counts_failure:
            self._note_outcome(target_key, False)
        if self.config.record_trace:
            self.trace.append(
                TraceEntry("solve_fail", branch_label, node.node_id)
            )
        return True

    def _compiled_for(self, fingerprint, target_key, constraint, encoding):
        """The cached solver-kernel bundle for this solve, or None.

        The one-step constraint is a pure function of (model, state
        fingerprint, target), so the compiled artifacts — and the
        contraction result they memoize — replay exactly on a repeat
        visit of the same (state, target) cell.  First visits return
        None (pure interpreter): most pairs are solved exactly once, and
        compiling for them costs more than it saves.  ``contractor=False``
        because the bundle's contraction *snapshot* — recorded on the
        interpreted first use — already covers every later visit.
        """
        if self._compiler is None:
            return None
        return self.cache.compiled_constraint(
            fingerprint,
            target_key,
            lambda: self._compiler.compile(
                constraint, encoding.variables, contractor=False
            ),
        )

    def _engine_for(self, target_key) -> SolverEngine:
        """Full-budget engine until a target has failed often; lite after."""
        failures = self._failures.get(target_key, 0)
        if failures >= self.config.failure_backoff_after:
            return self._lite_engine
        return self._engine

    def _note_outcome(self, target_key, sat: bool) -> None:
        if sat:
            self._failures.pop(target_key, None)
        else:
            self._failures[target_key] = self._failures.get(target_key, 0) + 1

    def _encoding(self, node: StateTreeNode) -> OneStepEncoding:
        with self.tracer.span("encode"):
            return self.cache.encoding(
                node.state.fingerprint(),
                lambda: OneStepEncoding(self.compiled, node.state),
            )

    # ------------------------------------------------------------------
    # Algorithm 2: dynamic execution
    # ------------------------------------------------------------------

    def _dynamic_execute(self, target: Optional[SolveTarget]) -> Optional[TestCase]:
        if target is not None:
            start = target.node
            sequence = [target.input_data]
            origin = ORIGIN_SOLVER
        else:
            start = self.tree.random_node(self._rng)
            sequence = self._random_sequence()
            origin = ORIGIN_RANDOM
            self.stats["random_sequences"] += 1
        case, created_ids = self._execute_sequence(start, sequence, origin)
        if self.config.record_trace:
            self.trace.append(
                TraceEntry(
                    "random" if target is None else "exec",
                    target.branch.label
                    if target is not None and target.branch
                    else None,
                    (target.node.node_id if target is not None else None),
                    created_ids,
                    tuple(case.new_branch_ids) if case is not None else (),
                )
            )
        return case

    def _execute_sequence(
        self,
        start: StateTreeNode,
        sequence: List[Dict[str, object]],
        origin: str,
    ) -> Tuple[Optional[TestCase], Tuple[int, ...]]:
        """Algorithm 2's execution loop from a tree node.

        Children are appended to the state tree while it is below its size
        cap; past the cap the walk keeps executing (coverage still counts)
        without recording new nodes.  Returns the synthesized test case (or
        ``None`` when no new coverage appeared) plus the ids of the tree
        nodes the walk created.
        """
        self.simulator.set_state(start.get_state())
        current = [start]
        created_ids: List[int] = []
        ledger = self.ledger
        ledger.begin_case(origin)

        def on_step(index: int, new_branch_ids: Tuple[int, ...], _found: bool):
            self.stats["steps_executed"] += 1
            if ledger.enabled:
                for branch_id in new_branch_ids:
                    ledger.cover_branch(branch_id, index + 1)
            if len(self.tree) < self.config.max_tree_nodes:
                child = self.tree.add_child(
                    current[0], self.simulator.get_state(), sequence[index]
                )
                child.covered_branches = set(new_branch_ids)
                created_ids.append(child.node_id)
                current[0] = child

        on_obligations = None
        if ledger.enabled:
            def on_obligations(index: int, new_obligations: List[object]):
                for obligation in new_obligations:
                    ledger.cover_obligation(obligation, index + 1)

        outcome = self.simulator.run_sequence(
            sequence, on_step=on_step, on_obligations=on_obligations
        )
        if outcome.last_covering_step == 0:
            ledger.end_case(None)
            return None, tuple(created_ids)
        executed = [
            dict(step_input)
            for step_input in sequence[: outcome.last_covering_step]
        ]
        case = TestCase(
            inputs=start.path_inputs() + executed,
            origin=origin,
            new_branch_ids=list(outcome.new_branch_ids),
            timestamp=self._elapsed(),
        )
        self.suite.add(case)
        ledger.end_case(len(self.suite) - 1)
        self._case_hist.observe(float(len(executed)))
        self.timeline.append(
            TimelineEvent(
                t=case.timestamp,
                decision_coverage=self.collector.decision_coverage(),
                origin=origin,
                new_branches=len(outcome.new_branch_ids),
            )
        )
        return case, tuple(created_ids)

    def _random_sequence(self) -> List[Dict[str, object]]:
        length = self.config.random_sequence_length
        mix = 1.0 if self.config.fresh_random_inputs else self.config.fresh_input_mix
        sequence: List[Dict[str, object]] = []
        for _ in range(length):
            if self.library.is_empty or self._rng.random() < mix:
                sequence.append(random_input(self.compiled.inports, self._rng))
            else:
                sequence.append(self.library.random_input(self._rng))
        return sequence

    # ------------------------------------------------------------------
    # hybrid warm-up (Discussion-section variant)
    # ------------------------------------------------------------------

    def _random_warmup(self) -> None:
        """Pure random exploration before any solving (hybrid mode)."""
        deadline = self._start + min(
            self.config.random_warmup_s, self.config.budget_s
        )
        while self._clock() < deadline and not self._fully_covered():
            start = self.tree.random_node(self._rng)
            sequence = [
                random_input(self.compiled.inports, self._rng)
                for _ in range(self.config.random_sequence_length)
            ]
            before = self.stats["steps_executed"]
            self._execute_sequence(start, sequence, ORIGIN_RANDOM)
            self.stats["warmup_steps"] += self.stats["steps_executed"] - before

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    # -- warm-start store ----------------------------------------------

    def _store_load(self) -> Optional[Dict[str, object]]:
        """Warm-start from the store; returns the raw payload (or None).

        Runs before the budget clock starts.  Only the solve-cache folds
        are restored into the live run — they are observationally
        transparent, so the warm run stays bit-identical to a cold one.
        The full payload is returned for consumers with their own reuse
        story (the fuzz generators seed their corpus from it).  Any
        problem — missing file, digest mismatch, malformed folds —
        degrades to a cold start and counts ``store_rejected``; a store
        must never take a run down.
        """
        if self.store is None or not self.config.store.read:
            return None
        self.stats["store_reads"] += 1
        payload, status = self.store.load()
        if status != "hit":
            self.stats[
                "store_misses" if status == "miss" else "store_rejected"
            ] += 1
            return None
        folds = payload.get("cache")
        if folds is not None:
            try:
                counts = self.cache.restore_folds(folds, self.compiled)
            except Exception:
                # restore_folds stages all decodes before applying, so
                # the cache is untouched here — the run is simply cold.
                self.stats["store_rejected"] += 1
                return None
            self.stats["restored_verdicts"] += counts["verdicts"]
            self.stats["restored_markers"] += counts["markers"]
            self.stats["restored_snapshots"] += counts["snapshots"]
            self.stats["restored_encodings"] += counts["encodings"]
        self.stats["store_hits"] += 1
        tree_payload = payload.get("tree")
        self._store_snapshot = (
            self.cache.verdict_entries,
            len(self.cache.encodings),
            len(self.cache.compiled),
            len(tree_payload["nodes"])
            if isinstance(tree_payload, dict)
            and isinstance(tree_payload.get("nodes"), list)
            else -1,
        )
        return payload

    def _store_save(self, extra: Optional[Dict[str, object]] = None) -> None:
        """Persist this run's derived state; best-effort, never raises.

        A warm run that learned nothing — same verdict/encoding/compiled
        counts and tree size as right after the restore, which a
        bit-identical equal-budget rerun always hits — skips the write:
        the stored document is already the fixed point, and skipping
        keeps the warm path's end-to-end cost at load + solve.  Runs
        with ``extra`` payloads (the fuzz corpus) always write.
        """
        if self.store is None or not self.config.store.write:
            return
        if extra is None and self._store_snapshot == (
            self.cache.verdict_entries,
            len(self.cache.encodings),
            len(self.cache.compiled),
            len(self.tree),
        ):
            return
        try:
            payload: Dict[str, object] = {
                "tree": self.tree.to_payload(),
                "cache": self.cache.export_folds(),
            }
            if extra:
                payload.update(extra)
            if self.store.save(payload):
                self.stats["store_writes"] += 1
        except Exception:
            pass

    def _elapsed(self) -> float:
        return self._clock() - self._start

    def _out_of_time(self) -> bool:
        return self._elapsed() >= self.config.budget_s

    def _fully_covered(self) -> bool:
        remaining = [
            b for b in self.collector.uncovered_branches()
            if b.branch_id not in self.proven_dead
        ]
        return not remaining and not (
            self.collector.unsatisfied_condition_obligations()
        )

    def _done(self) -> bool:
        if self._out_of_time():
            return True
        return self.config.stop_on_full_coverage and self._fully_covered()


def generate(compiled: CompiledModel, config: Optional[StcgConfig] = None):
    """Convenience wrapper: run STCG on a compiled model."""
    return StcgGenerator(compiled, config).run()
