"""The state tree (Definitions 3 and 4).

Every node holds a concretely reached model state, the one-step input that
produced it from its parent, the set of branches already *attempted* by the
solver on this state (``SB`` — attempted, whether or not a solution was
found, so Algorithm 1 never re-solves a pair), and the branches *covered*
while executing into this state (``CV``).

Nodes are deduplicated by state **fingerprint**
(:meth:`~repro.model.state.ModelState.fingerprint`): the first node to
reach a state value is its *canonical* node; later nodes with the same
fingerprint link to it instead of growing an independent subtree of solver
bookkeeping.  Duplicates still exist as tree nodes — their root paths are
distinct input sequences Algorithm 2 replays — but they share the
canonical node's solved-branch/obligation sets and are skipped by the
solver's scan (:meth:`StateTree.solve_nodes`).  The skip is exact, not a
heuristic: shared ``SB`` sets mean a duplicate can never be the first
unsolved node for any target, so the scan's outcome is bit-identical with
dedup on or off (``dedup=False`` keeps the full scan for A/B runs).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Set

from repro.model.state import ModelState

#: Schema tag of the serialized state tree (:meth:`StateTree.to_payload`).
TREE_SCHEMA = "repro.state_tree/1"


class StateTreeNode:
    """One explored model state (Definition 3: ⟨P, S, IN, SB, CV⟩)."""

    __slots__ = (
        "node_id",
        "parent",
        "state",
        "input",
        "solved_branches",
        "solved_obligations",
        "covered_branches",
        "children",
        "canonical",
    )

    def __init__(
        self,
        node_id: int,
        parent: Optional["StateTreeNode"],
        state: ModelState,
        input_data: Optional[Dict[str, object]],
    ):
        self.node_id = node_id
        self.parent = parent
        self.state = state
        self.input = input_data
        self.solved_branches: Set[int] = set()
        self.solved_obligations: Set = set()
        self.covered_branches: Set[int] = set()
        self.children: List["StateTreeNode"] = []
        #: First tree node with this state fingerprint (self when unique).
        self.canonical: "StateTreeNode" = self

    # -- paper operations -------------------------------------------------------

    def is_solved(self, branch_id: int) -> bool:
        """Has the solver already been asked about this branch on this state?"""
        return branch_id in self.solved_branches

    def set_solved(self, branch_id: int) -> None:
        self.solved_branches.add(branch_id)

    def get_state(self) -> ModelState:
        return self.state

    def get_input(self) -> Optional[Dict[str, object]]:
        return self.input

    def get_parent(self) -> Optional["StateTreeNode"]:
        return self.parent

    @property
    def is_canonical(self) -> bool:
        """Is this the first node that reached its state value?"""
        return self.canonical is self

    # -- path utilities -------------------------------------------------------------

    def path_inputs(self) -> List[Dict[str, object]]:
        """Input sequence from the root to this node (a test case)."""
        inputs: List[Dict[str, object]] = []
        node: Optional[StateTreeNode] = self
        while node is not None and node.input is not None:
            inputs.append(node.input)
            node = node.parent
        inputs.reverse()
        return inputs

    def depth(self) -> int:
        level = 0
        node = self.parent
        while node is not None:
            level += 1
            node = node.parent
        return level

    def __repr__(self) -> str:
        return f"StateTreeNode#{self.node_id}(depth={self.depth()})"


class StateTree:
    """The explored-state tree (Definition 4).

    Nodes whose states are value-identical *share* their solved-branch and
    solved-obligation bookkeeping: ``solve(Model, Branch)`` depends only on
    the state value, so re-solving the same branch on a revisited state is
    the duplicate work the paper's ``isSolved`` check exists to avoid.
    Sharing (and the solver-scan dedup built on it) is keyed by the state's
    content fingerprint; one-step encodings are cached by the same key in
    :class:`~repro.cache.solve.SolveCache`.
    """

    def __init__(self, root_state: ModelState, dedup: bool = True):
        self._nodes: List[StateTreeNode] = []
        self._shared_solved: Dict[str, Set[int]] = {}
        self._shared_obligations: Dict[str, Set] = {}
        #: fingerprint -> canonical (first) node.
        self._canonical: Dict[str, StateTreeNode] = {}
        #: Nodes the solver scan visits: canonical-only under dedup.
        self._solve_nodes: List[StateTreeNode] = []
        self.dedup = dedup
        #: Nodes that linked to an existing canonical node instead of
        #: bringing their own solver bookkeeping.
        self.dedup_links = 0
        self.root = StateTreeNode(0, None, root_state, None)
        self._link_shared(self.root)
        self._nodes.append(self.root)

    def _link_shared(self, node: StateTreeNode) -> None:
        fingerprint = node.state.fingerprint()
        node.solved_branches = self._shared_solved.setdefault(fingerprint, set())
        node.solved_obligations = self._shared_obligations.setdefault(
            fingerprint, set()
        )
        first = self._canonical.get(fingerprint)
        if first is None:
            self._canonical[fingerprint] = node
            self._solve_nodes.append(node)
        else:
            node.canonical = first
            self.dedup_links += 1
            if not self.dedup:
                self._solve_nodes.append(node)

    def add_child(
        self,
        parent: StateTreeNode,
        state: ModelState,
        input_data: Dict[str, object],
    ) -> StateTreeNode:
        node = StateTreeNode(len(self._nodes), parent, state, dict(input_data))
        self._link_shared(node)
        parent.children.append(node)
        self._nodes.append(node)
        return node

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[StateTreeNode]:
        return iter(self._nodes)

    def solve_nodes(self) -> Iterator[StateTreeNode]:
        """Nodes Algorithm 1 scans, in insertion order.

        Under dedup this yields one node per distinct state fingerprint
        (the canonical node); with ``dedup=False`` it yields every node,
        matching the naive scan.
        """
        return iter(self._solve_nodes)

    def unique_states(self) -> int:
        """Number of distinct state fingerprints in the tree."""
        return len(self._canonical)

    def node(self, node_id: int) -> StateTreeNode:
        return self._nodes[node_id]

    def random_node(self, rng: random.Random) -> StateTreeNode:
        return rng.choice(self._nodes)

    def leaves(self) -> List[StateTreeNode]:
        return [node for node in self._nodes if not node.children]

    def max_depth(self) -> int:
        return max(node.depth() for node in self._nodes)

    def find_by_state(self, state: ModelState) -> Optional[StateTreeNode]:
        """First node holding an identical state (duplicate detection)."""
        return self._canonical.get(state.fingerprint())

    # -- serialization (the warm-start store) ---------------------------------

    def to_payload(self) -> Dict[str, object]:
        """A stable JSON-safe snapshot of the whole tree.

        Nodes are emitted in ``node_id`` order (ids are list indices, so
        the order also reconstructs parent-before-child), values go
        through the exact store codec (tuples tagged, floats via
        ``repr``), and the shared solved/obligation bookkeeping is
        emitted once per state fingerprint — mirroring how the live tree
        shares those sets between duplicate-state nodes.
        """
        from repro.store.codec import encode_values

        nodes = []
        for node in self._nodes:
            nodes.append(
                {
                    "parent": (
                        node.parent.node_id if node.parent is not None else None
                    ),
                    "input": (
                        encode_values(node.input)
                        if node.input is not None
                        else None
                    ),
                    "state": encode_values(node.state.values),
                    "covered": sorted(node.covered_branches),
                }
            )
        return {
            "schema": TREE_SCHEMA,
            "dedup": self.dedup,
            "nodes": nodes,
            "solved": {
                fingerprint: sorted(branch_ids)
                for fingerprint, branch_ids in self._shared_solved.items()
                if branch_ids
            },
            "obligations": {
                fingerprint: sorted(
                    [ob.point_id, ob.atom, ob.polarity, ob.determining]
                    for ob in obligations
                )
                for fingerprint, obligations in self._shared_obligations.items()
                if obligations
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "StateTree":
        """Rebuild a tree from :meth:`to_payload` output.

        Replaying ``add_child`` in node order reconstructs fingerprints,
        canonical links, the dedup-aware solve-node list and
        ``dedup_links`` exactly; the shared solved/obligation sets are
        then refilled in place so every node referencing them sees the
        restored bookkeeping.  Raises on any malformed payload — the
        store layer turns that into a cold start.
        """
        from repro.coverage.collector import ConditionObligation
        from repro.store.codec import CodecError, decode_values

        if payload.get("schema") != TREE_SCHEMA:
            raise CodecError(
                f"not a {TREE_SCHEMA} payload: {payload.get('schema')!r}"
            )
        nodes = payload["nodes"]
        if not nodes or nodes[0]["parent"] is not None:
            raise CodecError("tree payload must start with a parentless root")
        tree = cls(
            ModelState(decode_values(nodes[0]["state"])),
            dedup=bool(payload.get("dedup", True)),
        )
        tree.root.covered_branches = set(nodes[0]["covered"])
        for raw in nodes[1:]:
            parent_id = raw["parent"]
            if not 0 <= parent_id < len(tree._nodes):
                raise CodecError(f"tree payload parent {parent_id!r} out of range")
            node = tree.add_child(
                tree._nodes[parent_id],
                ModelState(decode_values(raw["state"])),
                decode_values(raw["input"]),
            )
            node.covered_branches = set(raw["covered"])
        for fingerprint, branch_ids in payload.get("solved", {}).items():
            tree._shared_solved.setdefault(fingerprint, set()).update(
                int(branch_id) for branch_id in branch_ids
            )
        for fingerprint, obligations in payload.get("obligations", {}).items():
            tree._shared_obligations.setdefault(fingerprint, set()).update(
                ConditionObligation(
                    int(ob[0]), int(ob[1]), bool(ob[2]), bool(ob[3])
                )
                for ob in obligations
            )
        return tree

    def render(self, max_nodes: int = 64) -> str:
        """ASCII rendering (Figure 3(b) style)."""
        lines: List[str] = []

        def visit(node: StateTreeNode, prefix: str, is_last: bool) -> None:
            if len(lines) >= max_nodes:
                return
            connector = "" if node.parent is None else ("`-- " if is_last else "|-- ")
            covered = (
                f" covers={sorted(node.covered_branches)}"
                if node.covered_branches
                else ""
            )
            lines.append(f"{prefix}{connector}S{node.node_id}{covered}")
            child_prefix = prefix + (
                "" if node.parent is None else ("    " if is_last else "|   ")
            )
            for index, child in enumerate(node.children):
                visit(child, child_prefix, index == len(node.children) - 1)

        visit(self.root, "", True)
        if len(self._nodes) > max_nodes:
            lines.append(f"... ({len(self._nodes) - max_nodes} more nodes)")
        return "\n".join(lines)
