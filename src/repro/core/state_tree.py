"""The state tree (Definitions 3 and 4).

Every node holds a concretely reached model state, the one-step input that
produced it from its parent, the set of branches already *attempted* by the
solver on this state (``SB`` — attempted, whether or not a solution was
found, so Algorithm 1 never re-solves a pair), and the branches *covered*
while executing into this state (``CV``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.errors import ReproError
from repro.model.state import ModelState


class StateTreeNode:
    """One explored model state (Definition 3: ⟨P, S, IN, SB, CV⟩)."""

    __slots__ = (
        "node_id",
        "parent",
        "state",
        "input",
        "solved_branches",
        "solved_obligations",
        "covered_branches",
        "children",
        "encoding",
    )

    def __init__(
        self,
        node_id: int,
        parent: Optional["StateTreeNode"],
        state: ModelState,
        input_data: Optional[Dict[str, object]],
    ):
        self.node_id = node_id
        self.parent = parent
        self.state = state
        self.input = input_data
        self.solved_branches: Set[int] = set()
        self.solved_obligations: Set = set()
        self.covered_branches: Set[int] = set()
        self.children: List["StateTreeNode"] = []
        #: Cached one-step symbolic encoding for this state (lazily built).
        self.encoding = None

    # -- paper operations -------------------------------------------------------

    def is_solved(self, branch_id: int) -> bool:
        """Has the solver already been asked about this branch on this state?"""
        return branch_id in self.solved_branches

    def set_solved(self, branch_id: int) -> None:
        self.solved_branches.add(branch_id)

    def get_state(self) -> ModelState:
        return self.state

    def get_input(self) -> Optional[Dict[str, object]]:
        return self.input

    def get_parent(self) -> Optional["StateTreeNode"]:
        return self.parent

    # -- path utilities -------------------------------------------------------------

    def path_inputs(self) -> List[Dict[str, object]]:
        """Input sequence from the root to this node (a test case)."""
        inputs: List[Dict[str, object]] = []
        node: Optional[StateTreeNode] = self
        while node is not None and node.input is not None:
            inputs.append(node.input)
            node = node.parent
        inputs.reverse()
        return inputs

    def depth(self) -> int:
        level = 0
        node = self.parent
        while node is not None:
            level += 1
            node = node.parent
        return level

    def __repr__(self) -> str:
        return f"StateTreeNode#{self.node_id}(depth={self.depth()})"


class StateTree:
    """The explored-state tree (Definition 4).

    Nodes whose states are value-identical *share* their solved-branch and
    solved-obligation bookkeeping (and their cached one-step encoding):
    ``solve(Model, Branch)`` depends only on the state value, so re-solving
    the same branch on a revisited state is the duplicate work the paper's
    ``isSolved`` check exists to avoid.
    """

    def __init__(self, root_state: ModelState):
        self._nodes: List[StateTreeNode] = []
        self._shared_solved: Dict[tuple, Set[int]] = {}
        self._shared_obligations: Dict[tuple, Set] = {}
        self._shared_encodings: Dict[tuple, object] = {}
        self.root = StateTreeNode(0, None, root_state, None)
        #: One-step-encoding cache traffic (read by the tracing layer).
        self.encoding_hits = 0
        self.encoding_misses = 0
        self._link_shared(self.root)
        self._nodes.append(self.root)

    def _link_shared(self, node: StateTreeNode) -> None:
        signature = node.state.signature()
        node.solved_branches = self._shared_solved.setdefault(signature, set())
        node.solved_obligations = self._shared_obligations.setdefault(
            signature, set()
        )

    def cached_encoding(self, node: StateTreeNode, factory):
        """Per-state-signature cache for one-step encodings."""
        signature = node.state.signature()
        encoding = self._shared_encodings.get(signature)
        if encoding is None:
            self.encoding_misses += 1
            encoding = factory(node.state)
            self._shared_encodings[signature] = encoding
        else:
            self.encoding_hits += 1
        return encoding

    def add_child(
        self,
        parent: StateTreeNode,
        state: ModelState,
        input_data: Dict[str, object],
    ) -> StateTreeNode:
        node = StateTreeNode(len(self._nodes), parent, state, dict(input_data))
        self._link_shared(node)
        parent.children.append(node)
        self._nodes.append(node)
        return node

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[StateTreeNode]:
        return iter(self._nodes)

    def node(self, node_id: int) -> StateTreeNode:
        return self._nodes[node_id]

    def random_node(self, rng: random.Random) -> StateTreeNode:
        return rng.choice(self._nodes)

    def leaves(self) -> List[StateTreeNode]:
        return [node for node in self._nodes if not node.children]

    def max_depth(self) -> int:
        return max(node.depth() for node in self._nodes)

    def find_by_state(self, state: ModelState) -> Optional[StateTreeNode]:
        """First node holding an identical state (duplicate detection)."""
        signature = state.signature()
        for node in self._nodes:
            if node.state.signature() == signature:
                return node
        return None

    def render(self, max_nodes: int = 64) -> str:
        """ASCII rendering (Figure 3(b) style)."""
        lines: List[str] = []

        def visit(node: StateTreeNode, prefix: str, is_last: bool) -> None:
            if len(lines) >= max_nodes:
                return
            connector = "" if node.parent is None else ("`-- " if is_last else "|-- ")
            covered = (
                f" covers={sorted(node.covered_branches)}"
                if node.covered_branches
                else ""
            )
            lines.append(f"{prefix}{connector}S{node.node_id}{covered}")
            child_prefix = prefix + (
                "" if node.parent is None else ("    " if is_last else "|   ")
            )
            for index, child in enumerate(node.children):
                visit(child, child_prefix, index == len(node.children) - 1)

        visit(self.root, "", True)
        if len(self._nodes) > max_nodes:
            lines.append(f"... ({len(self._nodes) - max_nodes} more nodes)")
        return "\n".join(lines)
