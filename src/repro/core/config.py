"""Configuration for the STCG generator (and its ablations)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.solver.engine import SolverConfig


@dataclass(kw_only=True)
class StcgConfig:
    """Knobs of the STCG loop (keyword-only, validated on construction).

    The defaults reproduce the paper's algorithm.  The three flags at the
    bottom implement the Discussion-section variants and are exercised by
    the ablation benches:

    * ``random_warmup_s`` — hybrid mode: spend this long on pure random
      exploration before the solving loop ("introduce the random method
      into STCG ... first").
    * ``fresh_random_inputs`` — draw random sequences from fresh random
      input values instead of the solved-input library ("constructing a
      random input sequence using only previously solved inputs may not
      reach some branches").
    * ``skip_constant_false`` — detect branch conditions that fold to the
      constant ``false`` on a state and mark them solved without invoking
      the engine (cheap stand-in for the proposed dead-logic verification;
      turning it off measures the wasted re-solving the paper describes).
    """

    #: Wall-clock budget for one generation run, in seconds.
    budget_s: float = 10.0
    #: Random sequence length N used by Algorithm 2 when solving fails.
    random_sequence_length: int = 12
    #: Per-call solver budgets.  Kept deliberately small: a single one-step
    #: constraint either solves quickly or is worth abandoning for another
    #: (state, branch) pair — the paper treats solver timeouts as routine.
    solver: SolverConfig = field(
        default_factory=lambda: SolverConfig(
            max_samples=48, avm_evaluations=700, time_budget_s=0.15
        )
    )
    #: Master seed for all randomized components.
    seed: int = 0
    #: Stop as soon as every branch is covered (before the budget runs out).
    stop_on_full_coverage: bool = True
    #: After this many failed solver attempts on one target (across all
    #: states), further attempts use a much smaller "lite" budget.  Hard or
    #: dead targets otherwise starve dynamic exploration — the waste the
    #: paper's Discussion attributes to perpetually-false branches.
    failure_backoff_after: int = 12
    #: Random sequences executed per Algorithm-1 pass that found nothing
    #: solvable.  1 is the paper's literal loop; a small batch keeps the
    #: solve/explore wall-clock ratio balanced when most solver calls are
    #: hopeless.
    random_batch: int = 3
    #: Cap on state-tree size; random exploration pauses at the cap (the
    #: solver keeps running).  Guards against memory blow-up in long runs.
    max_tree_nodes: int = 4000

    # -- Discussion-section variants -------------------------------------------

    random_warmup_s: float = 0.0
    fresh_random_inputs: bool = False
    skip_constant_false: bool = True
    #: Probability that an element of a random sequence is drawn fresh from
    #: the input domains instead of the solved-input library.  The paper's
    #: Discussion proposes exactly this compensation ("attaching random
    #: methods") for branches the library alone cannot reach; 0.0 gives the
    #: strict library-only behaviour of Algorithm 2.
    fresh_input_mix: float = 0.25

    #: Verify unreachable branches up front by abstract interpretation
    #: (the Discussion's "verify the unreachable branches using the formal
    #: method") and exclude proven-dead branches from solving.
    prove_dead_branches: bool = False

    # -- solve caches (repro.cache) ---------------------------------------------

    #: Capacity of the per-model one-step-encoding LRU (entries).  0 turns
    #: the cache off; every solver attempt then rebuilds the symbolic
    #: encoding.  The cache is observationally transparent — results are
    #: bit-identical at any capacity (see DESIGN.md, "Cache-key soundness").
    encoding_cache_size: int = 512
    #: Remember deterministic UNSAT verdicts per (state fingerprint,
    #: target) and skip the solver on a repeat attempt.  Only verdicts
    #: from randomness-free stages are recorded, so fixed-seed runs stay
    #: bit-identical with the cache on or off.
    verdict_cache: bool = True
    #: Skip duplicate-fingerprint tree nodes in the Algorithm-1 solve scan
    #: (they share solved-sets with their canonical node, so the skip is
    #: exact).  Off reproduces the naive full scan.
    tree_dedup: bool = True

    # -- concrete execution ------------------------------------------------------

    #: Run concrete simulation through the compiled plan kernel
    #: (:mod:`repro.kernel`): per-block closures over pre-resolved input
    #: slots and reused buffers.  Observably equivalent to the generic
    #: interpreter (see DESIGN.md, "kernel soundness") — fixed-seed runs
    #: are bit-identical with the kernel on or off; off forces the
    #: reference interpreter.  Symbolic execution is unaffected either way.
    sim_kernel: bool = True

    #: Record a per-attempt trace (solve successes/failures, random runs).
    #: Used by the Table I / Figure 3 reproduction; off by default because
    #: traces grow with every solver attempt.
    record_trace: bool = False

    #: Deep tracing: profile the generator's phases (solve scan, solving,
    #: encoding, execution, warm-up), per-target solver time, solver-stage
    #: metrics and state-tree growth into ``GenerationResult.trace_data``
    #: (the ``repro.trace/1`` telemetry kinds).  Off by default; tracing
    #: never changes the generated tests or ``stats`` — only observes.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ConfigError(
                f"budget_s must be positive, got {self.budget_s!r}"
            )
        if self.random_sequence_length < 1:
            raise ConfigError(
                "random_sequence_length must be >= 1, got "
                f"{self.random_sequence_length!r}"
            )
        if self.random_batch < 1:
            raise ConfigError(
                f"random_batch must be >= 1, got {self.random_batch!r}"
            )
        if self.max_tree_nodes < 1:
            raise ConfigError(
                f"max_tree_nodes must be >= 1, got {self.max_tree_nodes!r}"
            )
        if self.failure_backoff_after < 1:
            raise ConfigError(
                "failure_backoff_after must be >= 1, got "
                f"{self.failure_backoff_after!r}"
            )
        if self.random_warmup_s < 0:
            raise ConfigError(
                f"random_warmup_s must be >= 0, got {self.random_warmup_s!r}"
            )
        if not 0.0 <= self.fresh_input_mix <= 1.0:
            raise ConfigError(
                f"fresh_input_mix must be in [0, 1], got {self.fresh_input_mix!r}"
            )
        if self.encoding_cache_size < 0:
            raise ConfigError(
                "encoding_cache_size must be >= 0, got "
                f"{self.encoding_cache_size!r}"
            )
        if not isinstance(self.seed, int):
            raise ConfigError(f"seed must be an int, got {self.seed!r}")
