"""Configuration for the STCG generator (and its ablations).

The config surface is organized around a unified kernel/cache story:

* :class:`KernelConfig` — the compiled fast paths (``kernels=``).  The
  *sim* kernel specializes concrete simulation (:mod:`repro.kernel`);
  the *solver* kernel compiles and batches the symbolic solve pipeline
  (:mod:`repro.solverc`).  Both are observably transparent: fixed-seed
  runs are bit-identical with either kernel on or off.
* :class:`CacheConfig` — the fingerprint-keyed solve caches
  (``caches=``): encoding LRU, compiled-constraint LRU, UNSAT verdict
  memo, and state-tree deduplication.  All observationally transparent
  (see DESIGN.md, "Cache-key soundness").

The flat pre-redesign field names (``sim_kernel``,
``encoding_cache_size``, ``verdict_cache``, ``tree_dedup``) were kept as
deprecated constructor aliases for one release and have been removed;
use the sub-configs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.solver.engine import SolverConfig

__all__ = [
    "CacheConfig",
    "FuzzConfig",
    "KernelConfig",
    "StcgConfig",
    "StoreConfig",
]


@dataclass(frozen=True, kw_only=True)
class StoreConfig:
    """Where (and whether) the persistent warm-start store lives.

    The store (:mod:`repro.store`) persists a run's derived state —
    solve-cache folds, the state tree, the fuzz corpus — keyed by
    content digests of the model and the cache-relevant config, so a
    repeated run of the same cell warm-starts instead of re-deriving
    everything.  ``read``/``write`` split the roles: a CI baseline job
    might write without reading, a strict-reuse consumer read without
    writing.  The store is best-effort by design: missing, stale, or
    corrupt documents make the run cold, never make it fail.
    """

    #: Directory holding the store documents (created on first write).
    path: str
    #: Load a matching document at run start (warm-start when present).
    read: bool = True
    #: Persist this run's derived state at run end.
    write: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.path, str) or not self.path:
            raise ConfigError(
                f"store.path must be a non-empty string, got {self.path!r}"
            )


@dataclass(frozen=True, kw_only=True)
class KernelConfig:
    """Which compiled fast paths the generator uses.

    Kernels change how fast a run is, never what it produces: DESIGN.md
    pins both observably equivalent to their interpreters, and the
    equivalence suites run fixed-seed generations with each kernel on
    and off and require bit-identical suites.
    """

    #: Concrete simulation through the compiled plan kernel
    #: (:mod:`repro.kernel`): per-block closures over pre-resolved input
    #: slots and reused buffers.  Off forces the reference interpreter.
    sim: bool = True
    #: Symbolic solving through the compiled solver kernel
    #: (:mod:`repro.solverc`): per-constraint compiled contractors,
    #: scalar distance closures and batched candidate scoring.  Off
    #: forces the reference solver pipeline.
    solver: bool = True


@dataclass(frozen=True, kw_only=True)
class CacheConfig:
    """Bounds and switches of the fingerprint-keyed solve caches."""

    #: Capacity of the per-model one-step-encoding LRU (entries).  0
    #: turns the cache off; every solver attempt then rebuilds the
    #: symbolic encoding.
    encoding_size: int = 512
    #: Capacity of the compiled-constraint LRU (entries), keyed by
    #: (state fingerprint, solve target).  Only populated when the
    #: solver kernel is on; 0 recompiles per solver call.
    compiled_size: int = 256
    #: Remember deterministic UNSAT verdicts per (state fingerprint,
    #: target) and skip the solver on a repeat attempt.  Only verdicts
    #: from randomness-free stages are recorded, so fixed-seed runs stay
    #: bit-identical with the cache on or off.
    verdicts: bool = True
    #: Skip duplicate-fingerprint tree nodes in the Algorithm-1 solve
    #: scan (they share solved-sets with their canonical node, so the
    #: skip is exact).  Off reproduces the naive full scan.
    tree_dedup: bool = True

    def __post_init__(self) -> None:
        if self.encoding_size < 0:
            raise ConfigError(
                "caches.encoding_size must be >= 0, got "
                f"{self.encoding_size!r}"
            )
        if self.compiled_size < 0:
            raise ConfigError(
                "caches.compiled_size must be >= 0, got "
                f"{self.compiled_size!r}"
            )


@dataclass(frozen=True, kw_only=True)
class FuzzConfig:
    """Knobs of the coverage-guided fuzzing engine (:mod:`repro.fuzz`).

    The fuzzer's budget is **count-based** (``executions``), not
    wall-clock: a fixed-seed campaign executes the same candidates in the
    same order on any machine, which is what keeps fuzz and hybrid cells
    bit-identical across ``workers=1`` and ``workers=N``.  A wall-clock
    deadline still bounds the campaign from above (the enclosing run's
    ``budget_s``), so a slow model cannot overshoot its cell.
    """

    #: Candidate executions per campaign (the deterministic budget).
    executions: int = 512
    #: Hard cap on mutated sequence length, in steps.
    max_sequence_length: int = 24
    #: Self-seeding sequences (random + SimCoTest-style piecewise-constant
    #: signals) executed before mutation starts when no suite seeds the
    #: corpus.  Hybrid campaigns seed from the STCG suite instead.
    seed_sequences: int = 8
    #: Fraction of the hybrid budget spent on the initial pure-STCG pass;
    #: the remainder is shared by the fuzz campaign and the second solver
    #: pass over the fuzz-fed state tree.
    hybrid_split: float = 0.5
    #: Cap on fuzz-discovered covering states fed back into the state
    #: tree per campaign (hybrid mode's solver re-targeting).
    feedback_nodes: int = 256
    #: Write the final corpus as a ``repro.fuzz.corpus/1`` JSON document
    #: here after the campaign (the CI fuzz-corpus artifact).
    corpus_out: str = ""
    #: Seed the campaign corpus from a ``repro.fuzz.corpus/1`` document
    #: before the self-seeding phase.  Unlike the silent warm-start
    #: store, an unreadable or mismatched file here is a hard error —
    #: the user named it explicitly.
    corpus_in: str = ""

    def __post_init__(self) -> None:
        if self.executions < 1:
            raise ConfigError(
                f"fuzz.executions must be >= 1, got {self.executions!r}"
            )
        if self.max_sequence_length < 1:
            raise ConfigError(
                "fuzz.max_sequence_length must be >= 1, got "
                f"{self.max_sequence_length!r}"
            )
        if self.seed_sequences < 0:
            raise ConfigError(
                "fuzz.seed_sequences must be >= 0, got "
                f"{self.seed_sequences!r}"
            )
        if not 0.0 < self.hybrid_split < 1.0:
            raise ConfigError(
                "fuzz.hybrid_split must be in (0, 1), got "
                f"{self.hybrid_split!r}"
            )
        if self.feedback_nodes < 0:
            raise ConfigError(
                "fuzz.feedback_nodes must be >= 0, got "
                f"{self.feedback_nodes!r}"
            )


@dataclass(kw_only=True)
class StcgConfig:
    """Knobs of the STCG loop (keyword-only, validated on construction).

    The defaults reproduce the paper's algorithm.  The three flags at the
    bottom implement the Discussion-section variants and are exercised by
    the ablation benches:

    * ``random_warmup_s`` — hybrid mode: spend this long on pure random
      exploration before the solving loop ("introduce the random method
      into STCG ... first").
    * ``fresh_random_inputs`` — draw random sequences from fresh random
      input values instead of the solved-input library ("constructing a
      random input sequence using only previously solved inputs may not
      reach some branches").
    * ``skip_constant_false`` — detect branch conditions that fold to the
      constant ``false`` on a state and mark them solved without invoking
      the engine (cheap stand-in for the proposed dead-logic verification;
      turning it off measures the wasted re-solving the paper describes).
    """

    #: Wall-clock budget for one generation run, in seconds.
    budget_s: float = 10.0
    #: Random sequence length N used by Algorithm 2 when solving fails.
    random_sequence_length: int = 12
    #: Per-call solver budgets.  Kept deliberately small: a single one-step
    #: constraint either solves quickly or is worth abandoning for another
    #: (state, branch) pair — the paper treats solver timeouts as routine.
    solver: SolverConfig = field(
        default_factory=lambda: SolverConfig(
            max_samples=48, avm_evaluations=700, time_budget_s=0.15
        )
    )
    #: Master seed for all randomized components.
    seed: int = 0
    #: Stop as soon as every branch is covered (before the budget runs out).
    stop_on_full_coverage: bool = True
    #: After this many failed solver attempts on one target (across all
    #: states), further attempts use a much smaller "lite" budget.  Hard or
    #: dead targets otherwise starve dynamic exploration — the waste the
    #: paper's Discussion attributes to perpetually-false branches.
    failure_backoff_after: int = 12
    #: Random sequences executed per Algorithm-1 pass that found nothing
    #: solvable.  1 is the paper's literal loop; a small batch keeps the
    #: solve/explore wall-clock ratio balanced when most solver calls are
    #: hopeless.
    random_batch: int = 3
    #: Cap on state-tree size; random exploration pauses at the cap (the
    #: solver keeps running).  Guards against memory blow-up in long runs.
    max_tree_nodes: int = 4000

    # -- Discussion-section variants -------------------------------------------

    random_warmup_s: float = 0.0
    fresh_random_inputs: bool = False
    skip_constant_false: bool = True
    #: Probability that an element of a random sequence is drawn fresh from
    #: the input domains instead of the solved-input library.  The paper's
    #: Discussion proposes exactly this compensation ("attaching random
    #: methods") for branches the library alone cannot reach; 0.0 gives the
    #: strict library-only behaviour of Algorithm 2.
    fresh_input_mix: float = 0.25

    #: Verify unreachable branches up front by abstract interpretation
    #: (the Discussion's "verify the unreachable branches using the formal
    #: method") and exclude proven-dead branches from solving.
    prove_dead_branches: bool = False

    # -- compiled fast paths and caches ------------------------------------------

    #: The compiled fast paths (sim kernel, solver kernel).  Both
    #: observably transparent — see :class:`KernelConfig`.
    kernels: KernelConfig = field(default_factory=KernelConfig)
    #: The fingerprint-keyed solve caches — see :class:`CacheConfig`.
    caches: CacheConfig = field(default_factory=CacheConfig)
    #: The coverage-guided fuzzing engine (``tool="Fuzz"``/``"Hybrid"``)
    #: — see :class:`FuzzConfig`.  Ignored by the pure STCG loop.
    fuzz: FuzzConfig = field(default_factory=FuzzConfig)
    #: The persistent cross-run warm-start store — see
    #: :class:`StoreConfig`.  ``None`` (the default) disables the store
    #: entirely; every run is cold and nothing touches disk.
    store: "StoreConfig | None" = None

    #: Record a per-attempt trace (solve successes/failures, random runs).
    #: Used by the Table I / Figure 3 reproduction; off by default because
    #: traces grow with every solver attempt.
    record_trace: bool = False

    #: Deep tracing: profile the generator's phases (solve scan, solving,
    #: encoding, execution, warm-up), per-target solver time, solver-stage
    #: metrics and state-tree growth into ``GenerationResult.trace_data``
    #: (the ``repro.trace/1`` telemetry kinds).  Off by default; tracing
    #: never changes the generated tests or ``stats`` — only observes.
    trace: bool = False

    #: Attach the unified ``repro.metrics/1`` registry snapshot to traced
    #: results (``trace_data["metrics"]``), from which the legacy
    #: solver-stage/cache/kernel counter payloads are derived as views.
    #: Like tracing, metrics only observe: fixed-seed suites are
    #: bit-identical with this on or off.
    metrics: bool = True

    #: Objective-level coverage provenance (``repro.provenance/1``):
    #: record which (case, step) first covered every Decision/Condition/
    #: MCDC objective, and the audit chain of solver attempts — stage
    #: verdicts, verdict-cache replays, constant-false folds, kernel
    #: attribution — for every objective left uncovered
    #: (``GenerationResult.provenance``).  On by default and pinned
    #: observation-must-not-perturb: fixed-seed suites are bit-identical
    #: with this on or off.
    provenance: bool = True

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ConfigError(
                f"budget_s must be positive, got {self.budget_s!r}"
            )
        if self.random_sequence_length < 1:
            raise ConfigError(
                "random_sequence_length must be >= 1, got "
                f"{self.random_sequence_length!r}"
            )
        if self.random_batch < 1:
            raise ConfigError(
                f"random_batch must be >= 1, got {self.random_batch!r}"
            )
        if self.max_tree_nodes < 1:
            raise ConfigError(
                f"max_tree_nodes must be >= 1, got {self.max_tree_nodes!r}"
            )
        if self.failure_backoff_after < 1:
            raise ConfigError(
                "failure_backoff_after must be >= 1, got "
                f"{self.failure_backoff_after!r}"
            )
        if self.random_warmup_s < 0:
            raise ConfigError(
                f"random_warmup_s must be >= 0, got {self.random_warmup_s!r}"
            )
        if not 0.0 <= self.fresh_input_mix <= 1.0:
            raise ConfigError(
                f"fresh_input_mix must be in [0, 1], got {self.fresh_input_mix!r}"
            )
        if not isinstance(self.kernels, KernelConfig):
            raise ConfigError(
                f"kernels must be a KernelConfig, got {self.kernels!r}"
            )
        if not isinstance(self.caches, CacheConfig):
            raise ConfigError(
                f"caches must be a CacheConfig, got {self.caches!r}"
            )
        if not isinstance(self.fuzz, FuzzConfig):
            raise ConfigError(
                f"fuzz must be a FuzzConfig, got {self.fuzz!r}"
            )
        if self.store is not None and not isinstance(self.store, StoreConfig):
            raise ConfigError(
                f"store must be a StoreConfig or None, got {self.store!r}"
            )
        if not isinstance(self.seed, int):
            raise ConfigError(f"seed must be an int, got {self.seed!r}")
