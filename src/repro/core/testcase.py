"""Test cases and suites.

A test case is an input sequence replayed from the model's initial state.
STCG synthesizes one whenever an execution discovers new coverage, by
walking the state-tree path back to the root (Algorithm 2, lines 21-25).
The text export mirrors the paper's Signal-Builder-compatible dump so
suites can be replayed independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class TestCase:
    """An input sequence plus provenance metadata."""

    __test__ = False  # not a pytest class, despite the name

    inputs: List[Dict[str, object]]
    #: "solver" when produced by state-aware solving, "random" when produced
    #: by a random input sequence (the paper's triangle/diamond markers).
    origin: str = "solver"
    #: Branches newly covered when this case was synthesized.
    new_branch_ids: List[int] = field(default_factory=list)
    #: Seconds since the start of generation.
    timestamp: float = 0.0

    @property
    def length(self) -> int:
        return len(self.inputs)

    def to_text(self, input_names: Sequence[str]) -> str:
        """Tabular text export: one line per step, one column per input."""
        lines = ["\t".join(["step"] + list(input_names))]
        for index, step_inputs in enumerate(self.inputs):
            row = [str(index)]
            for name in input_names:
                row.append(_format_value(step_inputs[name]))
            lines.append("\t".join(row))
        return "\n".join(lines)


@dataclass
class TestSuite:
    """An ordered collection of test cases for one model."""

    __test__ = False  # not a pytest class, despite the name

    model_name: str
    input_names: List[str]
    cases: List[TestCase] = field(default_factory=list)

    def add(self, case: TestCase) -> None:
        self.cases.append(case)

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)

    def total_steps(self) -> int:
        return sum(case.length for case in self.cases)

    def to_text(self) -> str:
        blocks = [f"# test suite for {self.model_name} ({len(self.cases)} cases)"]
        for index, case in enumerate(self.cases):
            blocks.append(
                f"## case {index} origin={case.origin} "
                f"t={case.timestamp:.3f}s new={sorted(case.new_branch_ids)}"
            )
            blocks.append(case.to_text(self.input_names))
        return "\n".join(blocks) + "\n"

    def replay(self, compiled, collector=None):
        """Re-execute every case from the initial state; returns the
        collector (fresh one if not supplied) for independent coverage
        measurement."""
        from repro.coverage.collector import CoverageCollector
        from repro.model.simulator import Simulator

        if collector is None:
            collector = CoverageCollector(compiled.registry)
        simulator = Simulator(compiled, collector)
        for case in self.cases:
            simulator.reset()
            simulator.run_sequence(case.inputs)
        return collector


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def parse_suite_text(text: str) -> List[List[Dict[str, str]]]:
    """Parse the text export back into raw (string-valued) sequences.

    Mainly for round-trip testing of the exporter.
    """
    sequences: List[List[Dict[str, str]]] = []
    current: Optional[List[Dict[str, str]]] = None
    header: List[str] = []
    for line in text.splitlines():
        if line.startswith("## case"):
            current = []
            sequences.append(current)
            header = []
        elif line.startswith("#") or not line.strip():
            continue
        elif line.startswith("step\t"):
            header = line.split("\t")[1:]
        elif current is not None and header:
            cells = line.split("\t")
            current.append(dict(zip(header, cells[1:])))
    return sequences
