"""The solved-input library.

Every input the solver produces is stored here (Figure 2's "input library");
when no (state, branch) pair is solvable, Algorithm 2 draws random sequences
from it to expand the state space.  Duplicates are dropped so the random
draw is uniform over *distinct* solved behaviours.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple


class InputLibrary:
    """Deduplicated store of solver-produced one-step inputs."""

    def __init__(self):
        self._inputs: List[Dict[str, object]] = []
        self._seen: set = set()

    def add(self, input_data: Dict[str, object]) -> bool:
        """Store an input; returns False when it was already known."""
        key = _freeze(input_data)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._inputs.append(dict(input_data))
        return True

    def __len__(self) -> int:
        return len(self._inputs)

    @property
    def is_empty(self) -> bool:
        return not self._inputs

    def random_input(self, rng: random.Random) -> Dict[str, object]:
        if not self._inputs:
            raise IndexError("input library is empty")
        return dict(rng.choice(self._inputs))

    def random_sequence(self, rng: random.Random, length: int) -> List[Dict[str, object]]:
        return [self.random_input(rng) for _ in range(length)]

    def all_inputs(self) -> List[Dict[str, object]]:
        return [dict(entry) for entry in self._inputs]


def _freeze(input_data: Dict[str, object]) -> Tuple:
    return tuple(sorted(input_data.items()))
