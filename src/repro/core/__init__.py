"""STCG core: state tree, state-aware solving, dynamic execution."""

from repro.core.config import StcgConfig
from repro.core.input_library import InputLibrary
from repro.core.result import (
    GenerationResult,
    ORIGIN_RANDOM,
    ORIGIN_SOLVER,
    ORIGIN_TOOL,
    TimelineEvent,
)
from repro.core.state_tree import StateTree, StateTreeNode
from repro.core.stcg import SolveTarget, StcgGenerator, generate
from repro.core.testcase import TestCase, TestSuite, parse_suite_text

__all__ = [
    "GenerationResult",
    "InputLibrary",
    "ORIGIN_RANDOM",
    "ORIGIN_SOLVER",
    "ORIGIN_TOOL",
    "SolveTarget",
    "StateTree",
    "StateTreeNode",
    "StcgConfig",
    "StcgGenerator",
    "TestCase",
    "TestSuite",
    "TimelineEvent",
    "generate",
    "parse_suite_text",
]
