"""Per-constraint compilation bundles and solver-kernel statistics.

:class:`ConstraintCompiler` turns one solver constraint (an
``OneStepEncoding`` path or obligation constraint) into a
:class:`CompiledConstraint`: an optional compiled HC4 contractor plus
lazily compiled distance artifacts (scalar closure, batch tape, split
cases).  Laziness is load-bearing: most solver calls die at the
contract stage, and each (fingerprint, target) pair is typically solved
exactly once per run, so a compiled piece must pay for itself within
the calls that need it.  The distance pieces are only built when the
sampling stages are actually reached, and the generator defers the
whole bundle to the second visit of a pair (see
``repro.cache.SolveCache.compiled_constraint``).

Compiled bundles are cached by the PR 3 state fingerprints (see
``repro.cache.SolveCache.compiled_constraint``), so re-visits of a
(state, branch) pair across engines and runs reuse the artifacts — and
the cached contraction *result*, which is a pure function of the
constraint and the initial box.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.expr.ast import Expr, Var
from repro.expr.nnf import to_nnf
from repro.solver.splitter import split_cases
from repro.solverc.contractc import CompiledContractor, compile_contractor
from repro.solverc.distc import (
    BatchDistance,
    compile_distance_batch,
    compile_distance_scalar,
    worth_compiling_scalar,
)
from repro.solverc.tape import NotLowerable

__all__ = [
    "CompiledCase",
    "CompiledConstraint",
    "ConstraintCompiler",
    "SolvercStats",
]

_UNSET = object()


class SolvercStats:
    """Fixed-key counters of compiled-vs-fallback solver traffic."""

    KEYS = (
        "constraints_compiled",
        "contract_compile_fallbacks",
        "batch_lowered",
        "batch_fallbacks",
        "scalar_fallbacks",
        "contract_compiled",
        "contract_cached",
        "contract_interpreted",
        "candidates_batched",
        "candidates_scalar",
        "case_batched",
        "case_interpreted",
        "avm_compiled",
        "avm_interpreted",
    )

    __slots__ = ("counts",)

    def __init__(self):
        self.counts: Dict[str, int] = {key: 0 for key in self.KEYS}

    def note(self, key: str, amount: int = 1) -> None:
        self.counts[key] += amount

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counts)

    def merge(self, other: "SolvercStats") -> "SolvercStats":
        for key, value in other.counts.items():
            self.counts[key] += value
        return self


class CompiledCase:
    """Compiled artifacts for one disjunctive split case."""

    __slots__ = (
        "case",
        "contractor",
        "contract_result",
        "_batch",
        "_stats",
        "_variables",
    )

    def __init__(self, case: Expr, variables: List[Var], stats: SolvercStats):
        self.case = case
        self.contract_result = None
        self._batch = _UNSET
        self._stats = stats
        self._variables = variables
        try:
            self.contractor: Optional[CompiledContractor] = (
                compile_contractor(case)
            )
        except Exception:
            self.contractor = None
            stats.note("contract_compile_fallbacks")

    def batch(self) -> Optional[BatchDistance]:
        """The case-distance batch tape, or None when not lowerable."""
        if self._batch is _UNSET:
            try:
                self._batch = compile_distance_batch(
                    to_nnf(self.case), self._variables
                )
                self._stats.note("batch_lowered")
            except NotLowerable:
                self._batch = None
                self._stats.note("batch_fallbacks")
        return self._batch


class CompiledConstraint:
    """All compiled forms of one solver constraint, built lazily."""

    __slots__ = (
        "constraint",
        "variables",
        "contractor",
        "contract_result",
        "_nnf",
        "_objective",
        "_batch",
        "_cases",
        "_stats",
    )

    def __init__(
        self,
        constraint: Expr,
        variables: List[Var],
        contractor: Optional[CompiledContractor],
        stats: SolvercStats,
    ):
        self.constraint = constraint
        self.variables = variables
        self.contractor = contractor
        #: (feasible, box-snapshot) of the whole-constraint contraction,
        #: filled in by the engine on first use.  Contraction is a pure
        #: function of (constraint, initial box), so replay is exact.
        self.contract_result = None
        self._nnf = _UNSET
        self._objective = _UNSET
        self._batch = _UNSET
        self._cases = _UNSET
        self._stats = stats

    def nnf(self) -> Expr:
        if self._nnf is _UNSET:
            self._nnf = to_nnf(self.constraint)
        return self._nnf

    def objective(self):
        """Compiled scalar ``env -> distance`` closure, or None.

        None both on compile failure and when the constraint is a
        heavily shared DAG — closures re-expand shared subtrees per
        call, so there the memoizing interpreter is the fast path.
        """
        if self._objective is _UNSET:
            try:
                if worth_compiling_scalar(self.nnf()):
                    self._objective = compile_distance_scalar(self.nnf())
                else:
                    self._objective = None
                    self._stats.note("scalar_fallbacks")
            except Exception:
                self._objective = None
        return self._objective

    def batch(self) -> Optional[BatchDistance]:
        """Whole-constraint batch distance tape, or None."""
        if self._batch is _UNSET:
            try:
                self._batch = compile_distance_batch(
                    self.nnf(), self.variables
                )
                self._stats.note("batch_lowered")
            except NotLowerable:
                self._batch = None
                self._stats.note("batch_fallbacks")
        return self._batch

    def cases(self) -> List[CompiledCase]:
        """Split cases (possibly a single one), compiled on first use."""
        if self._cases is _UNSET:
            self._cases = [
                CompiledCase(case, self.variables, self._stats)
                for case in split_cases(self.nnf())
            ]
        return self._cases


class ConstraintCompiler:
    """Compiles solver constraints; owns the compile-side counters."""

    def __init__(self):
        self.stats = SolvercStats()

    def compile(
        self,
        constraint: Expr,
        variables: Iterable[Var],
        *,
        contractor: bool = True,
    ) -> CompiledConstraint:
        """Compile ``constraint`` into a :class:`CompiledConstraint`.

        ``contractor=False`` skips compiling the HC4 contractor: a
        caller that caches bundles per (fingerprint, target) replays the
        stored contraction *snapshot* from the second use on, so the
        engine's interpreted contractor runs exactly once either way and
        the compiled walk would never be exercised.
        """
        var_list = _dedupe(variables)
        compiled_contractor = None
        if contractor:
            try:
                compiled_contractor = compile_contractor(constraint)
            except Exception:
                self.stats.note("contract_compile_fallbacks")
        self.stats.note("constraints_compiled")
        return CompiledConstraint(
            constraint, var_list, compiled_contractor, self.stats
        )


def _dedupe(variables: Iterable[Var]) -> List[Var]:
    # Same first-occurrence order as the engine's own _dedupe, so the
    # compiled tape's columns line up with the engine's Box.
    seen = set()
    result: List[Var] = []
    for var in variables:
        if var.name not in seen:
            seen.add(var.name)
            result.append(var)
    return result
