"""The solver kernel: compiled/batched forms of the symbolic hot path.

``repro.solverc`` is to :mod:`repro.solver` what :mod:`repro.kernel` is to
the concrete simulator: each (state, branch) constraint is compiled once
into flat, slot-indexed closures — a compiled HC4 contractor, a compiled
scalar branch-distance objective, and a numpy *batch tape* that evaluates
many candidate points as stacked ndarray columns — with a per-stage
fallback to the interpreter pipeline for constructs the compiler cannot
lower.  The compiled forms are observationally exact: fixed-seed solver
runs are bit-identical with the kernel on or off (see DESIGN.md,
"Solver-kernel soundness").
"""

from repro.solverc.compiler import (
    CompiledConstraint,
    ConstraintCompiler,
    SolvercStats,
)
from repro.solverc.tape import NotLowerable

__all__ = [
    "CompiledConstraint",
    "ConstraintCompiler",
    "NotLowerable",
    "SolvercStats",
]
