"""Compiled branch-distance objectives: scalar closures and batch tapes.

Two compiled forms of :class:`~repro.expr.distance.DistanceEvaluator`,
both observably exact against the interpreter:

* :func:`compile_distance_scalar` — one closure per NNF node, with atom
  operands evaluated through :func:`repro.kernel.exprc.compile_expr`
  (which is itself pinned observably equivalent to ``evaluate``).  Same
  Python-float arithmetic, same ``try/except Exception`` failure
  behaviour, so the AVM search sees bit-identical objective values.
* :func:`compile_distance_batch` — the atoms are lowered onto a shared
  :class:`~repro.solverc.tape.TapeBuilder` and the AND/OR/atom distance
  combinators become tape instructions, so one ``evaluate`` call scores
  a whole chunk of candidate points as stacked float64 columns.  Raises
  :class:`~repro.solverc.tape.NotLowerable` when any atom cannot ride
  the tape; callers fall back to the scalar path.

The distance formulas are transcribed from ``repro.expr.distance`` and
must track it: AND sums, OR takes the first minimum, relational atoms
use the K-offset metric with ``normalize_raw`` flooring, non-finite
operands and evaluation errors map to ``FAILURE_DISTANCE``.
"""

from __future__ import annotations

from typing import Callable, List, Mapping

import numpy as np

from repro.expr import ast
from repro.expr.ast import Binary, Const, Expr, Var
from repro.expr.distance import FAILURE_DISTANCE, K, _finite, normalize_raw
from repro.expr.types import BOOL
from repro.solverc.tape import TapeBuilder, _or

__all__ = [
    "BatchDistance",
    "compile_distance_batch",
    "compile_distance_scalar",
    "worth_compiling_scalar",
]


# -- scalar ----------------------------------------------------------------


def worth_compiling_scalar(nnf: Expr) -> bool:
    """Whether scalar closures would beat the interpreter on ``nnf``.

    ``compile_expr`` closures drop the evaluator's per-call memoization
    of shared sub-DAGs, so on a heavily shared constraint they re-do
    each occurrence of a shared subtree while ``DistanceEvaluator``
    computes it once per call.  Compare the tree expansion (capped)
    against the number of unique DAG nodes and refuse to compile when
    sharing would make the closure slower than the interpreter.
    """
    unique = set()
    stack = [nnf]
    while stack:
        node = stack.pop()
        if id(node) in unique:
            continue
        unique.add(id(node))
        stack.extend(node.children)
    # Closures run a node roughly 3x faster than the memoizing
    # interpreter, so they stay ahead until sharing re-expands the tree
    # past about that factor.
    cap = 3 * len(unique) + 64
    count = 0
    stack = [nnf]
    while stack:
        node = stack.pop()
        count += 1
        if count > cap:
            return False
        stack.extend(node.children)
    return True


def _compile_expr(expr):
    # Deferred: repro.kernel's package import reaches the simulator,
    # which imports repro.solver — importing exprc at module scope would
    # close that loop before repro.solver finishes initializing.
    from repro.kernel.exprc import compile_expr

    return compile_expr(expr)


def compile_distance_scalar(nnf: Expr) -> Callable[[Mapping], float]:
    """Compile an NNF constraint into an ``env -> distance`` closure."""
    if isinstance(nnf, Const):
        value = 0.0 if nnf.value else FAILURE_DISTANCE
        return lambda env: value
    if isinstance(nnf, Binary):
        if nnf.op == ast.AND:
            left = compile_distance_scalar(nnf.left)
            right = compile_distance_scalar(nnf.right)
            return lambda env: left(env) + right(env)
        if nnf.op == ast.OR:
            left = compile_distance_scalar(nnf.left)
            right = compile_distance_scalar(nnf.right)
            return lambda env: min(left(env), right(env))
        if nnf.op in ast.REL_OPS:
            return _compile_atom_scalar(nnf)
    return _compile_opaque_scalar(nnf)


def _compile_atom_scalar(atom: Binary) -> Callable[[Mapping], float]:
    left = _compile_expr(atom.left)
    right = _compile_expr(atom.right)
    # compile_expr coerces every result through the node's static type,
    # so "is a bool involved" is decidable here rather than per call.
    coerce_bool = atom.left.ty is BOOL or atom.right.ty is BOOL
    metric = _SCALAR_METRICS[atom.op]

    def distance(env: Mapping) -> float:
        try:
            a = left(env)
            b = right(env)
        except Exception:
            return FAILURE_DISTANCE
        if coerce_bool:
            a = float(bool(a))
            b = float(bool(b))
        if not (_finite(a) and _finite(b)):
            return FAILURE_DISTANCE
        return metric(a, b)

    return distance


def _compile_opaque_scalar(expr: Expr) -> Callable[[Mapping], float]:
    compiled = _compile_expr(expr)

    def distance(env: Mapping) -> float:
        try:
            value = compiled(env)
        except Exception:
            return FAILURE_DISTANCE
        return 0.0 if value else K

    return distance


_SCALAR_METRICS = {
    ast.LT: lambda a, b: 0.0 if a < b else normalize_raw(a - b + K),
    ast.LE: lambda a, b: 0.0 if a <= b else normalize_raw(a - b),
    ast.GT: lambda a, b: 0.0 if a > b else normalize_raw(b - a + K),
    ast.GE: lambda a, b: 0.0 if a >= b else normalize_raw(b - a),
    ast.EQ: lambda a, b: 0.0 if a == b else normalize_raw(abs(a - b)),
    ast.NE: lambda a, b: 0.0 if a != b else K,
}


# -- batch -----------------------------------------------------------------


class BatchDistance:
    """Evaluates the whole-constraint distance for a chunk of candidates."""

    __slots__ = ("_tape", "_root", "_vars")

    def __init__(self, tape, root, variables):
        self._tape = tape
        self._root = root
        self._vars = {var.name: var for var in variables}

    def evaluate(self, candidates: List[Mapping]) -> np.ndarray:
        """Distance per candidate, index-aligned with the input list."""
        count = len(candidates)
        columns = {}
        for name in self._tape.used_vars:
            if self._vars[name].ty is BOOL:
                data = (1.0 if env[name] else 0.0 for env in candidates)
            else:
                data = (float(env[name]) for env in candidates)
            columns[name] = np.fromiter(data, dtype=np.float64, count=count)
        slots, _ = self._tape.run(columns)
        result = np.asarray(slots[self._root], dtype=np.float64)
        if result.ndim == 0:
            result = np.broadcast_to(result, (count,))
        return result


def compile_distance_batch(nnf: Expr, variables) -> BatchDistance:
    """Lower an NNF constraint to a batch tape; raises NotLowerable."""
    builder = TapeBuilder(variables)
    root = _lower_distance(builder, nnf)
    return BatchDistance(builder.build(), root, variables)


def _lower_distance(builder: TapeBuilder, nnf: Expr) -> int:
    if isinstance(nnf, Const):
        value = 0.0 if nnf.value else FAILURE_DISTANCE
        return builder.new_slot(const=value)
    if isinstance(nnf, Binary):
        if nnf.op == ast.AND:
            left = _lower_distance(builder, nnf.left)
            right = _lower_distance(builder, nnf.right)
            out = builder.new_slot()

            def add(slots, errs, columns):
                slots[out] = slots[left] + slots[right]

            builder.add_instr(add)
            return out
        if nnf.op == ast.OR:
            left = _lower_distance(builder, nnf.left)
            right = _lower_distance(builder, nnf.right)
            out = builder.new_slot()

            def minimum(slots, errs, columns):
                # Distances are never NaN, so np.minimum matches min().
                slots[out] = np.minimum(slots[left], slots[right])

            builder.add_instr(minimum)
            return out
        if nnf.op in ast.REL_OPS:
            return _lower_atom(builder, nnf)
    return _lower_opaque(builder, nnf)


def _lower_atom(builder: TapeBuilder, atom: Binary) -> int:
    left = builder.slot(atom.left)
    right = builder.slot(atom.right)
    coerce_bool = atom.left.ty is BOOL or atom.right.ty is BOOL
    metric = _BATCH_METRICS[atom.op]
    out = builder.new_slot()

    def instr(slots, errs, columns):
        a = slots[left]
        b = slots[right]
        if coerce_bool:
            a = np.where(np.not_equal(a, 0.0), 1.0, 0.0)
            b = np.where(np.not_equal(b, 0.0), 1.0, 0.0)
        value = metric(a, b)
        if not coerce_bool:
            finite = np.isfinite(a) & np.isfinite(b)
            value = np.where(finite, value, FAILURE_DISTANCE)
        err = _or(errs[left], errs[right])
        if err is not None:
            # Errors dominate, exactly like the per-atom try/except.
            value = np.where(err, FAILURE_DISTANCE, value)
        slots[out] = value

    builder.add_instr(instr)
    return out


def _lower_opaque(builder: TapeBuilder, expr: Expr) -> int:
    value_slot = builder.slot(expr)
    out = builder.new_slot()

    def instr(slots, errs, columns):
        value = np.where(np.not_equal(slots[value_slot], 0.0), 0.0, K)
        err = errs[value_slot]
        if err is not None:
            value = np.where(err, FAILURE_DISTANCE, value)
        slots[out] = value

    builder.add_instr(instr)
    return out


def _floored(raw):
    return np.maximum(raw, 1e-9)


_BATCH_METRICS = {
    ast.LT: lambda a, b: np.where(a < b, 0.0, _floored((a - b) + K)),
    ast.LE: lambda a, b: np.where(a <= b, 0.0, _floored(a - b)),
    ast.GT: lambda a, b: np.where(a > b, 0.0, _floored((b - a) + K)),
    ast.GE: lambda a, b: np.where(a >= b, 0.0, _floored(b - a)),
    ast.EQ: lambda a, b: np.where(a == b, 0.0, _floored(np.abs(a - b))),
    ast.NE: lambda a, b: np.where(a != b, 0.0, K),
}
