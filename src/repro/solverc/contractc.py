"""Closure-compiled HC4 contraction (the contract-stage kernel).

:class:`CompiledContractor` performs exactly the same forward/backward
interval passes as :class:`~repro.solver.contractor.Contractor`, but the
per-pass tree walk — isinstance dispatch, id-keyed memo dict, repeated
constant conversion — is done once at compile time.  The forward pass
becomes a flat postorder instruction list over a slot-indexed value
list (constants pre-filled in a template that is block-copied per
pass), and the backward pass becomes a tree of closures mirroring the
interpreter's recursion.

All interval arithmetic goes through the same :class:`Interval` methods
and the canonical ``_forward_unary`` / ``_forward_binary`` transfer
functions from :mod:`repro.solver.contractor`, so the narrowed boxes are
identical object-for-object — including the pass count, the order of
``narrow`` calls, and the ``_empty_out`` conflict behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.expr import ast
from repro.expr.ast import Binary, Const, Expr, Ite, Select, Store, Unary, Var
from repro.solver.box import Box
from repro.solver.contractor import (
    MAX_PASSES,
    _empty_out,
    _forward_binary,
    _forward_unary,
)
from repro.solver.interval import (
    BOOL_FALSE,
    BOOL_TRUE,
    BOOL_UNKNOWN,
    Interval,
)

__all__ = ["CompiledContractor", "compile_contractor"]

_INF = float("inf")

# fn(vals, box) -> None: fills this node's forward slot.
_ForwardInstr = Callable[[List[Optional[Interval]], Box], None]
# fn(req, vals, box) -> bool: pushes a requirement toward the variables.
_BackwardFn = Callable[[Interval, List[Optional[Interval]], Box], bool]


class CompiledContractor:
    """Drop-in compiled replacement for ``Contractor(constraint)``."""

    __slots__ = ("_instrs", "_template", "_root", "_backward")

    def __init__(self, instrs, template, root, backward):
        self._instrs = instrs
        self._template = template
        self._root = root
        self._backward = backward

    def contract(self, box: Box) -> bool:
        """Narrow ``box`` in place; mirrors ``Contractor.contract``."""
        vals = list(self._template)
        for _ in range(MAX_PASSES):
            vals[:] = self._template
            for instr in self._instrs:
                instr(vals, box)
            root = vals[self._root]
            if root is not None and root.definitely_false:
                _empty_out(box)
                return False
            changed = self._backward(BOOL_TRUE, vals, box)
            if box.is_empty:
                return False
            if not changed:
                break
        return True


def compile_contractor(constraint: Expr) -> CompiledContractor:
    compiler = _Compiler()
    root = compiler.forward_slot(constraint)
    backward = compiler.backward_fn(constraint)
    return CompiledContractor(
        compiler.instrs, compiler.template, root, backward
    )


class _Compiler:
    def __init__(self):
        self.instrs: List[_ForwardInstr] = []
        self.template: List[Optional[Interval]] = []
        self._forward_memo: Dict[int, int] = {}
        self._backward_memo: Dict[int, _BackwardFn] = {}

    # ------------------------------------------------------------------
    # Forward compilation: one slot per node the interpreter would memo.
    # ------------------------------------------------------------------

    def _new_slot(self, const: Optional[Interval] = None) -> int:
        self.template.append(const)
        return len(self.template) - 1

    def forward_slot(self, node: Expr) -> int:
        key = id(node)
        cached = self._forward_memo.get(key)
        if cached is not None:
            return cached
        index = self._compile_forward(node)
        self._forward_memo[key] = index
        return index

    def _fwd_slot_of(self, node: Expr) -> Optional[int]:
        # Backward-pass forward lookups mirror ``self._forward.get(id)``:
        # a node the forward pass never visited reads as None.
        return self._forward_memo.get(id(node))

    def _compile_forward(self, node: Expr) -> int:
        if isinstance(node, Const):
            if node.ty.is_array:
                return self._new_slot(None)
            return self._new_slot(Interval.point(float(node.value)))
        if isinstance(node, Var):
            index = self._new_slot()
            name = node.name

            def var_instr(vals, box):
                vals[index] = box.domain(name)

            self.instrs.append(var_instr)
            return index
        if isinstance(node, Unary):
            arg = self.forward_slot(node.arg)
            index = self._new_slot()
            op = node.op
            default = Interval.top() if node.ty.is_numeric else BOOL_UNKNOWN

            def unary_instr(vals, box):
                value = vals[arg]
                if value is None:
                    vals[index] = default
                else:
                    vals[index] = _forward_unary(op, value)

            self.instrs.append(unary_instr)
            return index
        if isinstance(node, Binary):
            left = self.forward_slot(node.left)
            right = self.forward_slot(node.right)
            index = self._new_slot()
            op = node.op
            default = BOOL_UNKNOWN if node.ty.is_bool else Interval.top()

            def binary_instr(vals, box):
                a = vals[left]
                b = vals[right]
                if a is None or b is None:
                    vals[index] = default
                else:
                    vals[index] = _forward_binary(op, a, b)

            self.instrs.append(binary_instr)
            return index
        if isinstance(node, Ite):
            cond = self.forward_slot(node.cond)
            then = self.forward_slot(node.then)
            orelse = self.forward_slot(node.orelse)
            index = self._new_slot()

            def ite_instr(vals, box):
                c = vals[cond]
                if c is not None and c.definitely_true:
                    vals[index] = vals[then]
                    return
                if c is not None and c.definitely_false:
                    vals[index] = vals[orelse]
                    return
                t = vals[then]
                e = vals[orelse]
                if t is None or e is None:
                    vals[index] = None
                else:
                    vals[index] = t.hull(e)

            self.instrs.append(ite_instr)
            return index
        if isinstance(node, Select):
            if isinstance(node.array, Const):
                values = [float(v) for v in node.array.value]
                length = len(values)
                idx = self.forward_slot(node.index)
                index = self._new_slot()

                def select_instr(vals, box):
                    span = vals[idx]
                    if span is None or span.is_empty:
                        vals[index] = None
                        return
                    lo = max(0, int(span.lo))
                    hi = min(length - 1, int(span.hi))
                    if lo > hi:
                        vals[index] = Interval.empty()
                        return
                    window = values[lo : hi + 1]
                    vals[index] = Interval(min(window), max(window))

                self.instrs.append(select_instr)
                return index
            default = Interval.top() if node.ty.is_numeric else BOOL_UNKNOWN
            return self._new_slot(default)
        if isinstance(node, Store):
            return self._new_slot(None)
        return self._new_slot(None)

    # ------------------------------------------------------------------
    # Backward compilation: a closure per node, composed like the
    # interpreter's recursion (shared sub-DAGs share the closure but are
    # still invoked once per parent, exactly as the tree walk would).
    # ------------------------------------------------------------------

    def backward_fn(self, node: Expr) -> _BackwardFn:
        key = id(node)
        cached = self._backward_memo.get(key)
        if cached is not None:
            return cached
        fn = self._compile_backward(node)
        self._backward_memo[key] = fn
        return fn

    def _compile_backward(self, node: Expr) -> _BackwardFn:
        if isinstance(node, Var):
            name = node.name
            return lambda req, vals, box: box.narrow(name, req)
        if isinstance(node, Const):
            return _no_contract
        if isinstance(node, Unary):
            return self._compile_backward_unary(node)
        if isinstance(node, Binary):
            if node.op in ast.BOOL_OPS:
                return self._compile_backward_bool(node)
            if node.op in ast.REL_OPS:
                return self._compile_backward_rel(node)
            return self._compile_backward_arith(node)
        if isinstance(node, Ite):
            cond_slot = self._fwd_slot_of(node.cond)
            then_fn = self.backward_fn(node.then)
            else_fn = self.backward_fn(node.orelse)

            def ite_bw(req, vals, box):
                cond = vals[cond_slot] if cond_slot is not None else None
                if cond is not None and cond.definitely_true:
                    return then_fn(req, vals, box)
                if cond is not None and cond.definitely_false:
                    return else_fn(req, vals, box)
                return False

            return ite_bw
        return _no_contract

    def _compile_backward_unary(self, node: Unary) -> _BackwardFn:
        op = node.op
        if op not in _INVERTIBLE_UNARY:
            return _no_contract
        arg_fn = self.backward_fn(node.arg)
        if op == ast.NEG:
            return lambda req, vals, box: arg_fn(-req, vals, box)
        if op == ast.NOT:

            def not_bw(req, vals, box):
                if req.definitely_true:
                    return arg_fn(BOOL_FALSE, vals, box)
                if req.definitely_false:
                    return arg_fn(BOOL_TRUE, vals, box)
                return False

            return not_bw
        if op == ast.ABS:

            def abs_bw(req, vals, box):
                if req.hi < 0:
                    _empty_out(box)
                    return True
                return arg_fn(Interval(-req.hi, req.hi), vals, box)

            return abs_bw
        if op in (ast.FLOOR, ast.CEIL, ast.TO_INT):

            def round_bw(req, vals, box):
                return arg_fn(
                    Interval(req.lo - 1.0, req.hi + 1.0), vals, box
                )

            return round_bw
        if op == ast.TO_REAL:
            return arg_fn
        # TO_BOOL

        def to_bool_bw(req, vals, box):
            if req.definitely_false:
                return arg_fn(Interval.point(0.0), vals, box)
            return False

        return to_bool_bw

    def _compile_backward_bool(self, node: Binary) -> _BackwardFn:
        op = node.op
        left_slot = self._fwd_slot_of(node.left)
        right_slot = self._fwd_slot_of(node.right)
        left_fn = self.backward_fn(node.left)
        right_fn = self.backward_fn(node.right)

        def bool_bw(req, vals, box):
            left_fwd = vals[left_slot] if left_slot is not None else None
            right_fwd = vals[right_slot] if right_slot is not None else None
            changed = False
            if req.definitely_true:
                if op == ast.AND:
                    changed |= left_fn(BOOL_TRUE, vals, box)
                    changed |= right_fn(BOOL_TRUE, vals, box)
                elif op == ast.OR:
                    if left_fwd is not None and left_fwd.definitely_false:
                        changed |= right_fn(BOOL_TRUE, vals, box)
                    elif right_fwd is not None and right_fwd.definitely_false:
                        changed |= left_fn(BOOL_TRUE, vals, box)
                elif op == ast.IMPLIES:
                    if left_fwd is not None and left_fwd.definitely_true:
                        changed |= right_fn(BOOL_TRUE, vals, box)
            elif req.definitely_false:
                if op == ast.OR:
                    changed |= left_fn(BOOL_FALSE, vals, box)
                    changed |= right_fn(BOOL_FALSE, vals, box)
                elif op == ast.AND:
                    if left_fwd is not None and left_fwd.definitely_true:
                        changed |= right_fn(BOOL_FALSE, vals, box)
                    elif right_fwd is not None and right_fwd.definitely_true:
                        changed |= left_fn(BOOL_FALSE, vals, box)
                elif op == ast.IMPLIES:
                    changed |= left_fn(BOOL_TRUE, vals, box)
                    changed |= right_fn(BOOL_FALSE, vals, box)
            return changed

        return bool_bw

    def _compile_backward_rel(self, node: Binary) -> _BackwardFn:
        base_op = node.op
        left_slot = self._fwd_slot_of(node.left)
        right_slot = self._fwd_slot_of(node.right)
        left_fn = self.backward_fn(node.left)
        right_fn = self.backward_fn(node.right)
        both_int = node.left.ty.is_int and node.right.ty.is_int

        def rel_bw(req, vals, box):
            op = base_op
            if req.definitely_false:
                op = ast.REL_NEGATION[op]
            elif not req.definitely_true:
                return False
            left = vals[left_slot] if left_slot is not None else None
            right = vals[right_slot] if right_slot is not None else None
            if (
                left is None
                or right is None
                or left.is_empty
                or right.is_empty
            ):
                return False
            strict_gap = (
                1.0 if both_int and op in (ast.LT, ast.GT) else 0.0
            )
            changed = False
            if op in (ast.LT, ast.LE):
                changed |= left_fn(
                    Interval(-_INF, right.hi - strict_gap), vals, box
                )
                changed |= right_fn(
                    Interval(left.lo + strict_gap, _INF), vals, box
                )
            elif op in (ast.GT, ast.GE):
                changed |= left_fn(
                    Interval(right.lo + strict_gap, _INF), vals, box
                )
                changed |= right_fn(
                    Interval(-_INF, left.hi - strict_gap), vals, box
                )
            elif op == ast.EQ:
                meet = left.intersect(right)
                if meet.is_empty:
                    _empty_out(box)
                    return True
                changed |= left_fn(meet, vals, box)
                changed |= right_fn(meet, vals, box)
            elif op == ast.NE:
                if (
                    left.is_point
                    and right.is_point
                    and left.lo == right.lo
                ):
                    _empty_out(box)
                    return True
            return changed

        return rel_bw

    def _compile_backward_arith(self, node: Binary) -> _BackwardFn:
        op = node.op
        if op not in _INVERTIBLE_ARITH:
            # IDIV / MOD and friends: forward bounds only, like the
            # interpreter (its _backward_arith falls through unchanged).
            return _no_contract
        left_slot = self._fwd_slot_of(node.left)
        right_slot = self._fwd_slot_of(node.right)
        left_fn = self.backward_fn(node.left)
        right_fn = self.backward_fn(node.right)

        def arith_bw(req, vals, box):
            left = vals[left_slot] if left_slot is not None else None
            right = vals[right_slot] if right_slot is not None else None
            if left is None or right is None:
                return False
            changed = False
            if op == ast.ADD:
                changed |= left_fn(req - right, vals, box)
                changed |= right_fn(req - left, vals, box)
            elif op == ast.SUB:
                changed |= left_fn(req + right, vals, box)
                changed |= right_fn(left - req, vals, box)
            elif op == ast.MUL:
                if not right.contains(0.0):
                    changed |= left_fn(req.divide(right), vals, box)
                if not left.contains(0.0):
                    changed |= right_fn(req.divide(left), vals, box)
            elif op == ast.DIV:
                changed |= left_fn(req * right, vals, box)
                if not req.contains(0.0):
                    changed |= right_fn(left.divide(req), vals, box)
            elif op == ast.MIN:
                left_req = Interval(req.lo, _INF)
                right_req = Interval(req.lo, _INF)
                if right.lo > req.hi:
                    left_req = req
                if left.lo > req.hi:
                    right_req = req
                changed |= left_fn(left_req, vals, box)
                changed |= right_fn(right_req, vals, box)
            elif op == ast.MAX:
                left_req = Interval(-_INF, req.hi)
                right_req = Interval(-_INF, req.hi)
                if right.hi < req.lo:
                    left_req = req
                if left.hi < req.lo:
                    right_req = req
                changed |= left_fn(left_req, vals, box)
                changed |= right_fn(right_req, vals, box)
            return changed

        return arith_bw


def _no_contract(req, vals, box) -> bool:
    return False


_INVERTIBLE_UNARY = frozenset(
    {
        ast.NEG,
        ast.NOT,
        ast.ABS,
        ast.FLOOR,
        ast.CEIL,
        ast.TO_INT,
        ast.TO_REAL,
        ast.TO_BOOL,
    }
)

_INVERTIBLE_ARITH = frozenset(
    {ast.ADD, ast.SUB, ast.MUL, ast.DIV, ast.MIN, ast.MAX}
)
