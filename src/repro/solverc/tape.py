"""Slot-indexed numpy lowering of expression DAGs (the batch tape).

``TapeBuilder`` lowers :class:`~repro.expr.ast.Expr` trees into a flat
instruction list over numpy float64 columns: one slot per unique node
(id-memoised, so shared sub-DAGs are evaluated once), one instruction per
non-constant node, plus a parallel lazily-allocated *error mask* per slot
recording which candidate rows would have raised in the interpreter.

Exactness contract (load-bearing — the engine relies on it to keep
fixed-seed runs bit-identical with the kernel off):

* every value a lowered slot holds is, row by row, the exact float64 the
  scalar evaluator would produce.  Python scalar arithmetic on floats and
  IEEE float64 ndarray arithmetic agree for ``+ - * / abs neg`` and all
  comparisons; ``min``/``max`` are mirrored with ``np.where`` (not
  ``np.minimum``, whose NaN handling differs from Python's);
  ``//``/``%`` use C-truncation semantics computed in int64.
* integer-typed nodes are only lowered when a compile-time interval
  analysis (reusing the contractor's forward transfer functions) bounds
  their magnitude below 2**53, where int↔float64 conversion is exact;
  anything larger (or unbounded) raises :class:`NotLowerable` and the
  engine falls back to the interpreter for that constraint.
* the only interpreter error sources inside a lowered tree are
  ``Select`` index-out-of-range and ``floor``/``ceil``/``int`` of a
  non-finite value; both set the error mask instead of raising, and the
  distance layer maps masked rows to ``FAILURE_DISTANCE`` — exactly what
  the interpreter's per-atom ``try/except`` does.  Error masks propagate
  lazily through ``and``/``or``/``implies``/``Ite`` mirroring the
  evaluator's short-circuiting.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.expr import ast
from repro.expr.ast import Binary, Const, Expr, Ite, Select, Unary, Var
from repro.expr.types import BOOL, INT
from repro.solver.box import _initial_domain
from repro.solver.contractor import _forward_binary, _forward_unary
from repro.solver.interval import Interval

__all__ = ["NotLowerable", "Tape", "TapeBuilder", "MAX_EXACT_INT"]

# Largest magnitude at which every integer has an exact float64
# representation.  INT-typed nodes whose compile-time interval exceeds
# this cannot ride the float64 tape without rounding.
MAX_EXACT_INT = 2.0**53


class NotLowerable(Exception):
    """The expression contains a construct the batch tape cannot carry."""


def _or(a, b):
    """Combine two optional error masks (None means 'no rows errored')."""
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def _masked(cond, err):
    """Restrict an error mask to rows where ``cond`` holds (lazy eval)."""
    if err is None:
        return None
    return cond & err


def _nonzero(values):
    """Row-wise truthiness of a 0/1 (or numeric) column."""
    return values != 0.0


class Tape:
    """A compiled instruction list; ``run`` evaluates it over columns."""

    __slots__ = ("_instrs", "_template", "_size", "used_vars")

    def __init__(self, instrs, template, size, used_vars):
        self._instrs = instrs
        self._template = template
        self._size = size
        self.used_vars = used_vars

    def run(self, columns: Dict[str, np.ndarray]):
        """Evaluate every slot; returns (values, error-masks) lists."""
        slots = list(self._template)
        errs: List[Optional[np.ndarray]] = [None] * self._size
        with np.errstate(all="ignore"):
            for instr in self._instrs:
                instr(slots, errs, columns)
        return slots, errs


class TapeBuilder:
    """Lowers expression nodes onto a shared slot-indexed tape."""

    def __init__(self, variables):
        self._vars = {var.name: var for var in variables}
        self._instrs: List[Callable] = []
        self._template: List[object] = []
        self._ivals: List[Optional[Interval]] = []
        self._memo: Dict[int, int] = {}
        self.used_vars: List[str] = []

    # -- tape assembly ------------------------------------------------

    def new_slot(self, ival: Optional[Interval] = None, const=None) -> int:
        index = len(self._template)
        self._template.append(const)
        self._ivals.append(ival)
        return index

    def add_instr(self, instr) -> None:
        self._instrs.append(instr)

    def interval(self, slot: int) -> Optional[Interval]:
        return self._ivals[slot]

    def build(self) -> Tape:
        return Tape(
            list(self._instrs),
            list(self._template),
            len(self._template),
            tuple(self.used_vars),
        )

    # -- lowering -----------------------------------------------------

    def slot(self, expr: Expr) -> int:
        key = id(expr)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        index = self._lower(expr)
        self._memo[key] = index
        return index

    def _lower(self, expr: Expr) -> int:
        if isinstance(expr, Const):
            return self._lower_const(expr)
        if isinstance(expr, Var):
            return self._lower_var(expr)
        if isinstance(expr, Unary):
            return self._lower_unary(expr)
        if isinstance(expr, Binary):
            return self._lower_binary(expr)
        if isinstance(expr, Ite):
            return self._lower_ite(expr)
        if isinstance(expr, Select):
            return self._lower_select(expr)
        raise NotLowerable(f"cannot lower {type(expr).__name__} node")

    def _lower_const(self, expr: Const) -> int:
        value = expr.value
        if isinstance(value, tuple):
            raise NotLowerable("bare array constant outside Select")
        if expr.ty is INT and abs(int(value)) > MAX_EXACT_INT:
            raise NotLowerable("integer constant exceeds exact float range")
        as_float = float(value)
        return self.new_slot(Interval.point(as_float), const=as_float)

    def _lower_var(self, expr: Var) -> int:
        var = self._vars.get(expr.name)
        if var is None:
            raise NotLowerable(f"unbound variable {expr.name!r}")
        if expr.name not in self.used_vars:
            self.used_vars.append(expr.name)
        ival = _initial_domain(var)
        self._gate(expr, ival)
        index = self.new_slot(ival)
        name = expr.name

        def instr(slots, errs, columns):
            slots[index] = columns[name]

        self.add_instr(instr)
        return index

    def _lower_unary(self, expr: Unary) -> int:
        op = expr.op
        if op not in _UNARY_FACTORIES:
            raise NotLowerable(f"unary op {op!r}")
        arg = self.slot(expr.arg)
        ival = _forward_unary(op, self._require_interval(arg))
        self._gate(expr, ival)
        index = self.new_slot(ival)
        self.add_instr(_UNARY_FACTORIES[op](index, arg))
        return index

    def _lower_binary(self, expr: Binary) -> int:
        op = expr.op
        if op not in _BINARY_FACTORIES:
            raise NotLowerable(f"binary op {op!r}")
        left = self.slot(expr.left)
        right = self.slot(expr.right)
        left_ival = self._require_interval(left)
        right_ival = self._require_interval(right)
        ival = _forward_binary(op, left_ival, right_ival)
        if op == ast.IDIV or op == ast.MOD:
            # |a idiv b| <= |a| for every b (b == 0 yields 0) and the
            # remainder inherits the dividend's sign, so both are much
            # tighter than interval division when b straddles zero.
            ival = ival.intersect(_magnitude_bound(left_ival))
        self._gate(expr, ival)
        index = self.new_slot(ival)
        self.add_instr(_BINARY_FACTORIES[op](index, left, right))
        return index

    def _lower_ite(self, expr: Ite) -> int:
        cond = self.slot(expr.cond)
        then = self.slot(expr.then)
        orelse = self.slot(expr.orelse)
        then_ival = self._require_interval(then)
        else_ival = self._require_interval(orelse)
        ival = then_ival.hull(else_ival)
        self._gate(expr, ival)
        index = self.new_slot(ival)

        def instr(slots, errs, columns):
            taken = _nonzero(slots[cond])
            slots[index] = np.where(taken, slots[then], slots[orelse])
            branch_err = _or(
                _masked(taken, errs[then]), _masked(~taken, errs[orelse])
            )
            errs[index] = _or(errs[cond], branch_err)

        self.add_instr(instr)
        return index

    def _lower_select(self, expr: Select) -> int:
        array = expr.array
        if not isinstance(array, Const) or not isinstance(array.value, tuple):
            raise NotLowerable("Select over a non-constant array")
        values = array.value
        if not values:
            raise NotLowerable("Select over an empty array")
        elem_ty = expr.ty
        floats = []
        for value in values:
            if elem_ty is INT and abs(int(value)) > MAX_EXACT_INT:
                raise NotLowerable("array element exceeds exact float range")
            floats.append(float(value))
        table = np.array(floats, dtype=np.float64)
        length = len(floats)
        index_slot = self.slot(expr.index)
        ival = Interval(min(floats), max(floats))
        self._gate(expr, ival)
        index = self.new_slot(ival)

        def instr(slots, errs, columns):
            raw = np.asarray(slots[index_slot])
            idx = raw.astype(np.int64)
            out_of_range = (idx < 0) | (idx >= length)
            slots[index] = table[np.clip(idx, 0, length - 1)]
            err = out_of_range if out_of_range.any() else None
            errs[index] = _or(errs[index_slot], err)

        self.add_instr(instr)
        return index

    # -- the exact-int gate -------------------------------------------

    def _require_interval(self, slot: int) -> Interval:
        ival = self._ivals[slot]
        if ival is None:
            raise NotLowerable("node without a value interval")
        return ival

    def _gate(self, expr: Expr, ival: Interval) -> None:
        if expr.ty is not INT:
            return  # BOOL columns are 0/1; REAL floats are already exact
        if ival.is_empty:
            return
        if not (-MAX_EXACT_INT <= ival.lo and ival.hi <= MAX_EXACT_INT):
            raise NotLowerable(
                "integer node not provably within exact float64 range"
            )


def _magnitude_bound(ival: Interval) -> Interval:
    if ival.is_empty:
        return ival
    bound = max(abs(ival.lo), abs(ival.hi))
    return Interval(-bound, bound)


# -- instruction factories -------------------------------------------------
#
# Each factory closes over slot indices and returns an
# ``instr(slots, errs, columns)`` callable.  Values mirror
# ``repro.expr.semantics`` / the evaluator exactly (see module docstring).


def _neg(out, arg):
    def instr(slots, errs, columns):
        slots[out] = -slots[arg]
        errs[out] = errs[arg]

    return instr


def _not(out, arg):
    def instr(slots, errs, columns):
        slots[out] = np.where(_nonzero(slots[arg]), 0.0, 1.0)
        errs[out] = errs[arg]

    return instr


def _abs(out, arg):
    def instr(slots, errs, columns):
        slots[out] = np.abs(slots[arg])
        errs[out] = errs[arg]

    return instr


def _rounding(np_fn):
    # floor/ceil/trunc: the interpreter raises on inf/nan; we mask.
    def factory(out, arg):
        def instr(slots, errs, columns):
            values = slots[arg]
            slots[out] = np_fn(values)
            bad = ~np.isfinite(values)
            errs[out] = _or(errs[arg], bad if bad.any() else None)

        return instr

    return factory


def _to_real(out, arg):
    def instr(slots, errs, columns):
        slots[out] = slots[arg]
        errs[out] = errs[arg]

    return instr


def _to_bool(out, arg):
    def instr(slots, errs, columns):
        slots[out] = np.where(_nonzero(slots[arg]), 1.0, 0.0)
        errs[out] = errs[arg]

    return instr


_UNARY_FACTORIES = {
    ast.NEG: _neg,
    ast.NOT: _not,
    ast.ABS: _abs,
    ast.FLOOR: _rounding(np.floor),
    ast.CEIL: _rounding(np.ceil),
    ast.TO_INT: _rounding(np.trunc),
    ast.TO_REAL: _to_real,
    ast.TO_BOOL: _to_bool,
}


def _arith(np_op):
    def factory(out, left, right):
        def instr(slots, errs, columns):
            slots[out] = np_op(slots[left], slots[right])
            errs[out] = _or(errs[left], errs[right])

        return instr

    return factory


def _div(out, left, right):
    # Mirrors semantics.real_div: total, saturating on division by zero.
    def instr(slots, errs, columns):
        a = slots[left]
        b = slots[right]
        quotient = np.where(
            b == 0.0,
            np.where(a == 0.0, 0.0, np.where(a > 0.0, np.inf, -np.inf)),
            a / np.where(b == 0.0, 1.0, b),
        )
        slots[out] = quotient
        errs[out] = _or(errs[left], errs[right])

    return instr


def _int_pair(slots, left, right):
    a = np.asarray(slots[left]).astype(np.int64)
    b = np.asarray(slots[right]).astype(np.int64)
    zero_div = b == 0
    safe = np.where(zero_div, np.int64(1), b)
    quotient = np.abs(a) // np.abs(safe)
    quotient = np.where((a >= 0) == (safe > 0), quotient, -quotient)
    quotient = np.where(zero_div, np.int64(0), quotient)
    return a, b, zero_div, quotient


def _idiv(out, left, right):
    # Mirrors semantics.c_idiv: C truncation, b == 0 -> 0, exact in int64.
    def instr(slots, errs, columns):
        _, _, _, quotient = _int_pair(slots, left, right)
        slots[out] = quotient.astype(np.float64)
        errs[out] = _or(errs[left], errs[right])

    return instr


def _mod(out, left, right):
    # Mirrors semantics.c_mod: a - c_idiv(a, b) * b, b == 0 -> 0.
    def instr(slots, errs, columns):
        a, b, zero_div, quotient = _int_pair(slots, left, right)
        remainder = np.where(zero_div, np.int64(0), a - quotient * b)
        slots[out] = remainder.astype(np.float64)
        errs[out] = _or(errs[left], errs[right])

    return instr


def _minimum(out, left, right):
    # Python min(a, b) returns b only when b < a — np.minimum differs
    # on NaN, np.where(b < a, b, a) does not.
    def instr(slots, errs, columns):
        a = slots[left]
        b = slots[right]
        slots[out] = np.where(b < a, b, a)
        errs[out] = _or(errs[left], errs[right])

    return instr


def _maximum(out, left, right):
    def instr(slots, errs, columns):
        a = slots[left]
        b = slots[right]
        slots[out] = np.where(b > a, b, a)
        errs[out] = _or(errs[left], errs[right])

    return instr


def _relation(np_cmp):
    def factory(out, left, right):
        def instr(slots, errs, columns):
            slots[out] = np.where(
                np_cmp(slots[left], slots[right]), 1.0, 0.0
            )
            errs[out] = _or(errs[left], errs[right])

        return instr

    return factory


def _and(out, left, right):
    # Lazy: the evaluator never evaluates the right operand when the
    # left is falsy, so right-side errors only count on truthy-left rows.
    def instr(slots, errs, columns):
        a = _nonzero(slots[left])
        slots[out] = np.where(a & _nonzero(slots[right]), 1.0, 0.0)
        errs[out] = _or(errs[left], _masked(a, errs[right]))

    return instr


def _or_(out, left, right):
    def instr(slots, errs, columns):
        a = _nonzero(slots[left])
        slots[out] = np.where(a | _nonzero(slots[right]), 1.0, 0.0)
        errs[out] = _or(errs[left], _masked(~a, errs[right]))

    return instr


def _implies(out, left, right):
    def instr(slots, errs, columns):
        a = _nonzero(slots[left])
        slots[out] = np.where(~a | _nonzero(slots[right]), 1.0, 0.0)
        errs[out] = _or(errs[left], _masked(a, errs[right]))

    return instr


def _xor(out, left, right):
    def instr(slots, errs, columns):
        slots[out] = np.where(
            _nonzero(slots[left]) != _nonzero(slots[right]), 1.0, 0.0
        )
        errs[out] = _or(errs[left], errs[right])

    return instr


_BINARY_FACTORIES = {
    ast.ADD: _arith(np.add),
    ast.SUB: _arith(np.subtract),
    ast.MUL: _arith(np.multiply),
    ast.DIV: _div,
    ast.IDIV: _idiv,
    ast.MOD: _mod,
    ast.MIN: _minimum,
    ast.MAX: _maximum,
    ast.LT: _relation(np.less),
    ast.LE: _relation(np.less_equal),
    ast.GT: _relation(np.greater),
    ast.GE: _relation(np.greater_equal),
    ast.EQ: _relation(np.equal),
    ast.NE: _relation(np.not_equal),
    ast.AND: _and,
    ast.OR: _or_,
    ast.IMPLIES: _implies,
    ast.XOR: _xor,
}
