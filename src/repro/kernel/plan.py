"""Ahead-of-time compilation of a plan into a concrete step kernel.

:func:`compile_kernel` walks a :class:`~repro.model.graph.CompiledModel`'s
plan once and produces a :class:`CompiledKernel`: a flat tuple of per-item
closures over

* **pre-resolved slots** — every input reads directly from the producing
  item's output buffer (``compiled.input_slots``), so the hot loop touches
  no ``id()``-keyed dicts and no ``PlanItem`` objects,
* **reused buffers** — output lists and the activation table are allocated
  once per kernel and overwritten in place every step.

Buffer reuse is only sound because stale reads are impossible by
construction: an input slot whose source runs *at or after* the consumer
(``src_index >= item.index``) is exactly the case where the interpreter's
``_gather_inputs`` finds ``None`` and raises — with a reused buffer it
would silently read the previous step's value instead.  Those items are
detected at compile time and compiled to a closure raising the identical
``SimulationError``; every remaining slot provably holds the current step's
value when read.  The activation table is likewise safe: items without an
enable never write their entry (it stays ``True``, as the interpreter would
set it), and enabled items overwrite theirs before any child reads it.

Any block class without a registered kernel factory runs through the
generic ``compute``/``update`` interpreter inside the same slot/buffer
machinery, preserving its exact semantics (including the declared-arity
check).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import SimulationError
from repro.kernel.blocks import KERNEL_FACTORIES, PRELOADED
from repro.model.context import StepContext
from repro.model.graph import CompiledModel, PlanItem


def _make_active(actives: List[bool], item: PlanItem):
    """The concrete ``_item_active`` specialized for one enabled item.

    Returns ``None`` for always-active items.  The returned callable also
    maintains the shared activation table so nested enables observe their
    parent's activation, exactly like the interpreter's ``actives`` list.
    """
    if item.enable is None:
        return None
    index = item.index
    decision = getattr(item.enable.block, "decision", None)
    if decision is None:
        path = item.enable.block.path

        def broken(ctx):
            raise SimulationError(f"enable source {path!r} has no decision")

        return broken
    assert item.enable_index is not None
    parent = item.enable_index
    decision_id = decision.decision_id
    outcome = item.enable.outcome

    def active(ctx):
        value = bool(
            actives[parent] and ctx.taken_outcomes.get(decision_id) == outcome
        )
        actives[index] = value
        return value

    return active


def _forward_raiser(item: PlanItem, slots) -> Callable:
    """A closure for an item with a not-yet-run input source.

    The interpreter raises on the first (in port order) input whose source
    has not produced outputs this step; with reused buffers that slot would
    silently hold the previous step's value, so the whole item compiles to
    the identical per-step error instead.
    """
    for position, (src_index, _port) in enumerate(slots):
        if src_index >= item.index:
            signal = item.input_signals[position]
            message = (
                f"{item.block.path!r} reads {signal.block.path!r} before it "
                "ran (nondirect port feeding a direct one?)"
            )

            def step(ctx):
                raise SimulationError(message)

            return step
    raise AssertionError("no forward slot found")  # pragma: no cover


def _fallback_step(item: PlanItem, srcs, out, active) -> Callable:
    """Generic interpreter dispatch for one item, inside the slot machinery."""
    block = item.block
    n_out = block.n_out
    path = block.path
    always = active is None

    def step(ctx):
        ctx.active = True if always else active(ctx)
        values = [lst[port] for lst, port in srcs]
        outputs = block.compute(ctx, values)
        if len(outputs) != n_out:
            raise SimulationError(
                f"{path!r} produced {len(outputs)} outputs, declared {n_out}"
            )
        block.update(ctx, values, outputs)
        out[:] = outputs

    return step


class CompiledKernel:
    """The concrete fast path of one compiled model (one per simulator)."""

    def __init__(self, compiled: CompiledModel):
        self.compiled = compiled
        plan = compiled.plan
        out_lists: List[List[object]] = [
            [None] * item.block.n_out for item in plan
        ]
        self.out_lists = out_lists
        #: Shared activation table; entries of never-enabled items stay True.
        self.actives: List[bool] = [True] * len(plan)
        self.n_specialized = 0
        self.n_fallback = 0
        self.fallback_classes: set = set()
        steps: List[Callable] = []
        for item in plan:
            slots = compiled.input_slots[item.index]
            if any(src_index >= item.index for src_index, _ in slots):
                steps.append(_forward_raiser(item, slots))
                self.n_specialized += 1
                continue
            srcs = tuple((out_lists[src], port) for src, port in slots)
            out = out_lists[item.index]
            active = _make_active(self.actives, item)
            factory = KERNEL_FACTORIES.get(type(item.block))
            step = None
            if factory is not None:
                step = factory(item, item.block, srcs, out, active, compiled)
            if step is PRELOADED:
                self.n_specialized += 1
                continue
            if step is None:
                step = _fallback_step(item, srcs, out, active)
                self.n_fallback += 1
                self.fallback_classes.add(type(item.block).__name__)
            else:
                self.n_specialized += 1
            steps.append(step)
        self.steps: Tuple[Callable, ...] = tuple(steps)
        self._outs = tuple(
            (name, out_lists[index], port)
            for name, index, port in compiled.outport_slots
        )

    def run_step(self, ctx: StepContext) -> None:
        """Execute one concrete step; coverage/state land on ``ctx``."""
        for step in self.steps:
            step(ctx)
        ctx.active = True

    def read_outputs(self) -> Dict[str, object]:
        """The outport values of the step most recently run."""
        return {name: values[port] for name, values, port in self._outs}

    def stats(self) -> Dict[str, object]:
        """Compile-time specialization counts (for trace/report output)."""
        return {
            "specialized_blocks": self.n_specialized,
            "fallback_blocks": self.n_fallback,
            "fallback_classes": sorted(self.fallback_classes),
        }


def compile_kernel(compiled: CompiledModel) -> CompiledKernel:
    """Compile the concrete fast path for ``compiled``."""
    return CompiledKernel(compiled)
