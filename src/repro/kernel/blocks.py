"""Per-block specialized kernels for the concrete fast path.

Each factory takes one plan item plus its pre-resolved input slots and
returns a closure ``step(ctx)`` that reproduces, bit for bit, what the
generic interpreter (``Block.compute`` + ``Block.update`` driven by
:func:`repro.model.executor.execute_step`) would do in **concrete** mode:

* the same output values written into the item's reusable output buffer,
* the same coverage events, in the same order, through the same
  ``ctx.on_decision`` / ``ctx.on_condition_vector`` entry points (so the
  activation gating and collector bookkeeping stay shared code),
* the same activation-gated ``ctx.next_state`` writes,
* the same errors for the same malformed situations.

A factory may refuse to specialize by returning ``None`` (e.g. a ``Switch``
whose coverage was never registered, a state path missing from the compiled
layout, a ``TypeCast`` to a non-scalar type) — the plan compiler then falls
back to the generic interpreter for that item, which keeps equivalence
trivially.  ``PRELOADED`` signals that the block's output was computed at
build time (constants) and no per-step closure is needed at all.

Dispatch is by *exact* block class: subclasses may override ``compute`` /
``update``, so they take the generic path unless registered explicitly
(``Memory`` is — it inherits ``UnitDelay``'s semantics unchanged).
Symbolic and abstract execution never touch this module.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.expr.semantics import c_mod, real_div
from repro.expr.types import BOOL, INT, REAL
from repro.kernel.exprc import compile_expr
from repro.model.blocks.datastore import DataStoreRead, DataStoreWrite
from repro.model.blocks.discrete import (
    DiscreteIntegrator,
    Memory,
    RateLimiter,
    UnitDelay,
)
from repro.model.blocks.logic import CompareToConstant, Logic, RelationalOperator
from repro.model.blocks.lookup import Lookup1D
from repro.model.blocks.math_ops import (
    Abs,
    Bias,
    Fcn,
    Gain,
    MinMax,
    Product,
    Quantizer,
    Saturation,
    Sum,
    TypeCast,
)
from repro.model.blocks.routing import (
    ArrayUpdate,
    IfBlock,
    MultiportSwitch,
    Mux,
    Selector,
    SubsystemOutput,
    Switch,
    SwitchCase,
)
from repro.model.blocks.sources import Constant, Counter, Inport
from repro.model.graph import CompiledModel, PlanItem
from repro.stateflow.chart import ChartBlock

#: ``(source_output_buffer, port)`` — resolved once, read every step.
Slot = Tuple[List[object], int]
#: ``active(ctx) -> bool`` or ``None`` for always-active items.
ActiveFn = Optional[Callable[..., bool]]
StepFn = Callable[..., None]

#: Sentinel: the factory filled the output buffer at build time; the item
#: needs no per-step work at all.
PRELOADED = object()


def _state_path(block, key: str, compiled: CompiledModel) -> Optional[str]:
    """Precomputed state path, or ``None`` if the layout doesn't know it."""
    path = f"{block.path}.{key}"
    return path if path in compiled.state_elements else None


# -- pure dataflow ----------------------------------------------------------


def _k_gain(item, block: Gain, srcs, out, active, compiled):
    (lst, port), = srcs
    gain = block.gain

    def step(ctx):
        out[0] = gain * lst[port]

    return step


def _k_bias(item, block: Bias, srcs, out, active, compiled):
    (lst, port), = srcs
    bias = block.bias

    def step(ctx):
        out[0] = lst[port] + bias

    return step


def _k_sum(item, block: Sum, srcs, out, active, compiled):
    signs = block.signs
    if signs == "++":
        (a_lst, a_port), (b_lst, b_port) = srcs

        def step(ctx):
            out[0] = a_lst[a_port] + b_lst[b_port]

        return step
    if signs == "+-":
        (a_lst, a_port), (b_lst, b_port) = srcs

        def step(ctx):
            out[0] = a_lst[a_port] - b_lst[b_port]

        return step
    first_negated = signs[0] == "-"
    rest = tuple(zip(signs[1:], srcs[1:]))
    (f_lst, f_port) = srcs[0]

    def step(ctx):
        total = -f_lst[f_port] if first_negated else f_lst[f_port]
        for sign, (lst, port) in rest:
            if sign == "+":
                total = total + lst[port]
            else:
                total = total - lst[port]
        out[0] = total

    return step


def _k_product(item, block: Product, srcs, out, active, compiled):
    ops = block.ops
    (f_lst, f_port) = srcs[0]
    if ops == "**":
        (b_lst, b_port) = srcs[1]

        def step(ctx):
            out[0] = f_lst[f_port] * b_lst[b_port]

        return step
    rest = tuple(zip(ops[1:], srcs[1:]))

    def step(ctx):
        total = f_lst[f_port]
        for op, (lst, port) in rest:
            if op == "*":
                total = total * lst[port]
            else:
                total = real_div(float(total), float(lst[port]))
        out[0] = total

    return step


def _k_abs(item, block: Abs, srcs, out, active, compiled):
    (lst, port), = srcs

    def step(ctx):
        out[0] = abs(lst[port])

    return step


def _k_minmax(item, block: MinMax, srcs, out, active, compiled):
    combine = min if block.mode == "min" else max
    rest = srcs[1:]
    (f_lst, f_port) = srcs[0]

    def step(ctx):
        total = f_lst[f_port]
        for lst, port in rest:
            total = combine(total, lst[port])
        out[0] = total

    return step


def _k_saturation(item, block: Saturation, srcs, out, active, compiled):
    (lst, port), = srcs
    lo = block.lo
    hi = block.hi

    def step(ctx):
        out[0] = min(max(lst[port], lo), hi)

    return step


def _k_typecast(item, block: TypeCast, srcs, out, active, compiled):
    if block.target is BOOL:
        conv = bool
    elif block.target is INT:
        conv = int
    elif block.target is REAL:
        conv = float
    else:
        return None  # interpreter raises ModelError per step; keep that
    (lst, port), = srcs

    def step(ctx):
        out[0] = conv(lst[port])

    return step


def _k_quantizer(item, block: Quantizer, srcs, out, active, compiled):
    (lst, port), = srcs
    interval = block.interval
    floor = math.floor

    def step(ctx):
        out[0] = floor(float(lst[port]) / interval + 0.5) * interval

    return step


def _k_fcn(item, block: Fcn, srcs, out, active, compiled):
    fn = compile_expr(block.template)
    bindings = tuple(zip(block.args, srcs))

    def step(ctx):
        out[0] = fn({name: lst[port] for name, (lst, port) in bindings})

    return step


def _k_lookup(item, block: Lookup1D, srcs, out, active, compiled):
    (lst, port), = srcs
    interp = block._interp_concrete

    def step(ctx):
        out[0] = interp(float(lst[port]))

    return step


def _k_relop(item, block: RelationalOperator, srcs, out, active, compiled):
    (a_lst, a_port), (b_lst, b_port) = srcs
    test = _REL_TESTS[block.op]

    def step(ctx):
        out[0] = test(a_lst[a_port], b_lst[b_port])

    return step


def _k_cmpconst(item, block: CompareToConstant, srcs, out, active, compiled):
    (lst, port), = srcs
    constant = block.constant
    test = _REL_TESTS[block.op]

    def step(ctx):
        out[0] = test(lst[port], constant)

    return step


_REL_TESTS = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


def _k_selector(item, block: Selector, srcs, out, active, compiled):
    (a_lst, a_port), (i_lst, i_port) = srcs
    top = block.length - 1

    def step(ctx):
        index = min(max(int(i_lst[i_port]), 0), top)
        out[0] = a_lst[a_port][index]

    return step


def _k_array_update(item, block: ArrayUpdate, srcs, out, active, compiled):
    (a_lst, a_port), (i_lst, i_port), (v_lst, v_port) = srcs
    top = block.length - 1

    def step(ctx):
        index = min(max(int(i_lst[i_port]), 0), top)
        items = list(a_lst[a_port])
        items[index] = v_lst[v_port]
        out[0] = tuple(items)

    return step


def _k_mux(item, block: Mux, srcs, out, active, compiled):
    def step(ctx):
        out[0] = tuple(lst[port] for lst, port in srcs)

    return step


# -- sources ----------------------------------------------------------------


def _k_inport(item, block: Inport, srcs, out, active, compiled):
    name = block.port_name

    def step(ctx):
        try:
            out[0] = ctx.inputs[name]
        except KeyError:
            raise SimulationError(f"missing input {name!r}") from None

    return step


def _k_constant(item, block: Constant, srcs, out, active, compiled):
    out[0] = block.value
    return PRELOADED


def _k_counter(item, block: Counter, srcs, out, active, compiled):
    path = _state_path(block, "count", compiled)
    if path is None:
        return None
    step_by = block.step
    period = block.period
    always = active is None

    def step(ctx):
        act = True if always else active(ctx)
        count = ctx.state_env[path]
        out[0] = count
        if act:
            ctx.next_state[path] = c_mod(int(count + step_by), period)

    return step


# -- internal-state blocks --------------------------------------------------


def _k_unit_delay(item, block: UnitDelay, srcs, out, active, compiled):
    path = _state_path(block, "x", compiled)
    if path is None:
        return None
    (lst, port), = srcs
    always = active is None

    def step(ctx):
        act = True if always else active(ctx)
        out[0] = ctx.state_env[path]
        if act:
            ctx.next_state[path] = lst[port]

    return step


def _k_integrator(item, block: DiscreteIntegrator, srcs, out, active, compiled):
    path = _state_path(block, "acc", compiled)
    if path is None:
        return None
    (lst, port), = srcs
    gain = block.gain
    lo = block.lo
    hi = block.hi
    always = active is None

    def step(ctx):
        act = True if always else active(ctx)
        acc = ctx.state_env[path]
        out[0] = acc
        if act:
            advanced = acc + gain * float(lst[port])
            ctx.next_state[path] = min(max(advanced, lo), hi)

    return step


def _k_rate_limiter(item, block: RateLimiter, srcs, out, active, compiled):
    path = _state_path(block, "prev", compiled)
    if path is None:
        return None
    (lst, port), = srcs
    up = block.up
    neg_down = -block.down
    always = active is None

    def step(ctx):
        act = True if always else active(ctx)
        prev = ctx.state_env[path]
        limited = min(max(float(lst[port]) - prev, neg_down), up)
        value = prev + limited
        out[0] = value
        if act:
            ctx.next_state[path] = value

    return step


def _k_sub_output(item, block: SubsystemOutput, srcs, out, active, compiled):
    path = _state_path(block, "held", compiled)
    if path is None:
        return None
    (lst, port), = srcs
    always = active is None

    def step(ctx):
        act = True if always else active(ctx)
        if act:
            value = lst[port]
            out[0] = value
            ctx.next_state[path] = value
        else:
            out[0] = ctx.state_env[path]

    return step


def _k_store_read(item, block: DataStoreRead, srcs, out, active, compiled):
    path = f"$store.{block.store}"
    if path not in compiled.state_elements:
        return None
    if block.read_current:

        def step(ctx):
            next_state = ctx.next_state
            if path in next_state:
                out[0] = next_state[path]
            else:
                out[0] = ctx.state_env[path]

        return step

    def step(ctx):
        out[0] = ctx.state_env[path]

    return step


def _k_store_write(item, block: DataStoreWrite, srcs, out, active, compiled):
    path = f"$store.{block.store}"
    if path not in compiled.state_elements:
        return None
    (lst, port), = srcs
    always = active is None

    def step(ctx):
        if True if always else active(ctx):
            ctx.next_state[path] = lst[port]

    return step


# -- decision / event blocks ------------------------------------------------
#
# These fire coverage events, so they must publish their activation on the
# context before calling ``on_decision`` / ``on_condition_vector`` — the
# gating inside those entry points is the single shared implementation of
# conditional-execution semantics.


def _k_switch(item, block: Switch, srcs, out, active, compiled):
    decision = block.decision
    if decision is None:
        return None
    (t_lst, t_port), (c_lst, c_port), (f_lst, f_port) = srcs
    criterion = block.criterion
    threshold = block.threshold
    if criterion == "gt":
        def test(value):
            return value > threshold
    elif criterion == "ge":
        def test(value):
            return value >= threshold
    elif criterion == "ne0":
        def test(value):
            return value != 0
    else:
        test = bool
    always = active is None

    def step(ctx):
        ctx.active = True if always else active(ctx)
        condition = test(c_lst[c_port])
        ctx.on_decision(decision, 0 if condition else 1)
        out[0] = t_lst[t_port] if condition else f_lst[f_port]

    return step


def _k_multiport(item, block: MultiportSwitch, srcs, out, active, compiled):
    decision = block.decision
    if decision is None:
        return None
    (c_lst, c_port) = srcs[0]
    data = srcs[1:]
    labels = block.labels
    n_labels = len(labels)
    has_default = block.has_default
    (d_lst, d_port) = data[-1]
    always = active is None

    def step(ctx):
        ctx.active = True if always else active(ctx)
        control = int(c_lst[c_port])
        for index, label in enumerate(labels):
            if control == label:
                ctx.on_decision(decision, index)
                lst, port = data[index]
                out[0] = lst[port]
                return
        if has_default:
            ctx.on_decision(decision, n_labels)
        out[0] = d_lst[d_port]

    return step


def _k_if(item, block: IfBlock, srcs, out, active, compiled):
    decision = block.decision
    if decision is None:
        return None
    has_else = block.has_else
    n_clauses = block.n_clauses
    always = active is None

    def step(ctx):
        ctx.active = True if always else active(ctx)
        for index, (lst, port) in enumerate(srcs):
            if lst[port]:
                ctx.on_decision(decision, index)
                return
        if has_else:
            ctx.on_decision(decision, n_clauses)

    return step


def _k_switch_case(item, block: SwitchCase, srcs, out, active, compiled):
    decision = block.decision
    if decision is None:
        return None
    (c_lst, c_port), = srcs
    cases = block.cases
    n_cases = len(cases)
    has_default = block.has_default
    always = active is None

    def step(ctx):
        ctx.active = True if always else active(ctx)
        value = int(c_lst[c_port])
        for index, group in enumerate(cases):
            if value in group:
                ctx.on_decision(decision, index)
                return
        if has_default:
            ctx.on_decision(decision, n_cases)

    return step


def _k_logic(item, block: Logic, srcs, out, active, compiled):
    point = block.condition_point
    if point is None:
        return None
    op = block.op
    if op == "not":
        def combine(operands):
            return not operands[0]
    elif op == "and":
        combine = all
    elif op == "nand":
        def combine(operands):
            return not all(operands)
    elif op == "or":
        combine = any
    elif op == "nor":
        def combine(operands):
            return not any(operands)
    else:  # xor

        def combine(operands):
            result = operands[0]
            for operand in operands[1:]:
                result = result != operand
            return result

    always = active is None

    def step(ctx):
        ctx.active = True if always else active(ctx)
        operands = [bool(lst[port]) for lst, port in srcs]
        ctx.on_condition_vector(point, operands)
        out[0] = combine(operands)

    return step


# -- charts -----------------------------------------------------------------


def _k_chart(item, block: ChartBlock, srcs, out, active, compiled):
    spec = block.spec
    prefix = block.path
    loc_path = f"{prefix}.loc"
    rw_paths = tuple(
        (name, f"{prefix}.{name}")
        for name in spec.local_names + spec.output_names
    )
    state_elements = compiled.state_elements
    if loc_path not in state_elements or any(
        path not in state_elements for _, path in rw_paths
    ):
        return None
    in_bindings = tuple(zip(spec.input_names, srcs))
    out_names = tuple(spec.output_names)

    # Per leaf location: the candidate transition programs in priority
    # order, each fully compiled — (decision, condition point, atom
    # closures, guard closure, action writes, entry-chain writes, target
    # location) — plus the leaf's during-action writes.
    programs = []
    for leaf in spec.leaves:
        candidates = []
        for transition in spec.candidates_for(leaf):
            decision = block._decisions.get(transition.index)
            if decision is None:
                return None
            instrumented = block._points.get(transition.index)
            if instrumented is None:
                point: object = None
                atom_fns: tuple = ()
            else:
                point, atoms = instrumented
                atom_fns = tuple(compile_expr(atom) for atom in atoms)
            candidates.append((
                decision,
                point,
                atom_fns,
                compile_expr(transition.guard),
                tuple(
                    (assign.target, compile_expr(assign.expr))
                    for assign in transition.actions
                ),
                tuple(
                    (assign.target, compile_expr(assign.expr))
                    for state in spec.entry_chain(transition.target)
                    for assign in state.entry
                ),
                spec.enter_target(transition.target).location,
            ))
        during = tuple(
            (assign.target, compile_expr(assign.expr)) for assign in leaf.during
        )
        programs.append((tuple(candidates), during))
    always = active is None

    def step(ctx):
        ctx.active = act = True if always else active(ctx)
        env = ctx.state_env
        frame = {name: lst[port] for name, (lst, port) in in_bindings}
        for name, path in rw_paths:
            frame[name] = env[path]
        loc = int(env[loc_path])
        candidates, during = programs[loc]
        fired = None
        for candidate in candidates:
            point = candidate[1]
            if point is not None:
                vector = tuple(bool(fn(frame)) for fn in candidate[2])
                ctx.on_condition_vector(point, vector)
            taken = bool(candidate[3](frame))
            ctx.on_decision(candidate[0], 0 if taken else 1)
            if taken:
                fired = candidate
                break
        if fired is not None:
            for target, fn in fired[4]:
                frame[target] = fn(frame)
            for target, fn in fired[5]:
                frame[target] = fn(frame)
            new_loc = fired[6]
        else:
            for target, fn in during:
                frame[target] = fn(frame)
            new_loc = loc
        for index, name in enumerate(out_names):
            out[index] = frame[name]
        if act:
            next_state = ctx.next_state
            next_state[loc_path] = new_loc
            for name, path in rw_paths:
                next_state[path] = frame[name]

    return step


#: Exact-class dispatch table.  ``MovingAccumulator`` (tuple-state FIFO) is
#: deliberately absent so every full-model equivalence run also exercises
#: the generic fallback path.
KERNEL_FACTORIES: Dict[type, Callable] = {
    Gain: _k_gain,
    Bias: _k_bias,
    Sum: _k_sum,
    Product: _k_product,
    Abs: _k_abs,
    MinMax: _k_minmax,
    Saturation: _k_saturation,
    TypeCast: _k_typecast,
    Quantizer: _k_quantizer,
    Fcn: _k_fcn,
    Lookup1D: _k_lookup,
    RelationalOperator: _k_relop,
    CompareToConstant: _k_cmpconst,
    Selector: _k_selector,
    ArrayUpdate: _k_array_update,
    Mux: _k_mux,
    Inport: _k_inport,
    Constant: _k_constant,
    Counter: _k_counter,
    UnitDelay: _k_unit_delay,
    Memory: _k_unit_delay,
    DiscreteIntegrator: _k_integrator,
    RateLimiter: _k_rate_limiter,
    SubsystemOutput: _k_sub_output,
    DataStoreRead: _k_store_read,
    DataStoreWrite: _k_store_write,
    Switch: _k_switch,
    MultiportSwitch: _k_multiport,
    IfBlock: _k_if,
    SwitchCase: _k_switch_case,
    Logic: _k_logic,
    ChartBlock: _k_chart,
}


def factory_for(item: PlanItem) -> Optional[Callable]:
    """The kernel factory for a plan item, or ``None`` (generic fallback)."""
    return KERNEL_FACTORIES.get(type(item.block))
