"""Compile expression ASTs to Python closures for the concrete fast path.

:func:`compile_expr` turns an :class:`~repro.expr.ast.Expr` tree into a
``fn(env) -> value`` closure observably equivalent to
:func:`repro.expr.evaluator.evaluate` under every environment:

* the same lazy connectives — AND/OR/IMPLIES short-circuit, and the
  unselected ITE branch is never computed (no spurious division-by-zero),
* the same per-node result coercion (``coerce_value`` through the node's
  ``ty``, specialized to ``bool``/``int``/``float`` for scalar types),
* the same errors with the same messages (``EvalError`` for unbound
  variables and out-of-range array indices).

What is dropped is the evaluator's per-call memoization of shared
sub-DAGs.  Expressions are pure, so re-evaluating a shared subtree can only
change cost, never the value; chart guards and actions — the only
expressions the kernel compiles — are small parsed trees without sharing.
Any node type this compiler does not recognize compiles to a closure that
defers the whole subtree to the interpreter, keeping equivalence trivial.
"""

from __future__ import annotations

import math
import operator
from typing import Callable, Mapping

from repro.errors import EvalError
from repro.expr import ast, semantics
from repro.expr.ast import Binary, Const, Expr, Ite, Select, Store, Unary, Var
from repro.expr.evaluator import evaluate
from repro.expr.types import Type, coerce_value

CompiledExpr = Callable[[Mapping[str, object]], object]

_UNARY = {
    ast.NEG: operator.neg,
    ast.NOT: operator.not_,
    ast.ABS: abs,
    ast.FLOOR: math.floor,
    ast.CEIL: math.ceil,
    ast.TO_INT: int,
    ast.TO_REAL: float,
    ast.TO_BOOL: bool,
}

_BINARY = {
    ast.ADD: operator.add,
    ast.SUB: operator.sub,
    ast.MUL: operator.mul,
    ast.DIV: lambda a, b: semantics.real_div(float(a), float(b)),
    ast.IDIV: lambda a, b: semantics.c_idiv(int(a), int(b)),
    ast.MOD: lambda a, b: semantics.c_mod(int(a), int(b)),
    ast.MIN: min,
    ast.MAX: max,
    ast.LT: operator.lt,
    ast.LE: operator.le,
    ast.GT: operator.gt,
    ast.GE: operator.ge,
    ast.EQ: operator.eq,
    ast.NE: operator.ne,
    ast.XOR: lambda a, b: bool(a) != bool(b),
}


def _converter(ty: Type) -> Callable[[object], object]:
    """``coerce_value(value, ty)`` specialized to a plain callable."""
    if ty.is_bool:
        return bool
    if ty.is_int:
        return int
    if ty.is_real:
        return float
    return lambda value: coerce_value(value, ty)


def _interpreted(expr: Expr) -> CompiledExpr:
    """Fallback: defer the whole subtree to the reference evaluator."""
    return lambda env: evaluate(expr, env)


def compile_expr(expr: Expr) -> CompiledExpr:
    """Compile ``expr`` into a closure equivalent to ``evaluate(expr, env)``."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda env: value
    if isinstance(expr, Var):
        name = expr.name
        conv = _converter(expr.ty)

        def var_fn(env):
            try:
                raw = env[name]
            except KeyError:
                raise EvalError(f"no value for variable {name!r}") from None
            return conv(raw)

        return var_fn
    if isinstance(expr, Unary):
        fn = _UNARY.get(expr.op)
        if fn is None:
            return _interpreted(expr)
        arg = compile_expr(expr.arg)
        conv = _converter(expr.ty)
        return lambda env: conv(fn(arg(env)))
    if isinstance(expr, Binary):
        op = expr.op
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        if op == ast.AND:
            return lambda env: bool(right(env)) if left(env) else False
        if op == ast.OR:
            return lambda env: True if left(env) else bool(right(env))
        if op == ast.IMPLIES:
            return lambda env: bool(right(env)) if left(env) else True
        fn = _BINARY.get(op)
        if fn is None:
            return _interpreted(expr)
        conv = _converter(expr.ty)
        return lambda env: conv(fn(left(env), right(env)))
    if isinstance(expr, Ite):
        cond = compile_expr(expr.cond)
        then = compile_expr(expr.then)
        orelse = compile_expr(expr.orelse)
        conv = _converter(expr.ty)
        return lambda env: conv(then(env)) if cond(env) else conv(orelse(env))
    if isinstance(expr, Select):
        array_fn = compile_expr(expr.array)
        index_fn = compile_expr(expr.index)

        def select_fn(env):
            array = array_fn(env)
            index = int(index_fn(env))
            if not 0 <= index < len(array):
                raise EvalError(
                    f"array index {index} out of range 0..{len(array) - 1}"
                )
            return array[index]

        return select_fn
    if isinstance(expr, Store):
        array_fn = compile_expr(expr.array)
        index_fn = compile_expr(expr.index)
        value_fn = compile_expr(expr.value)

        def store_fn(env):
            array = list(array_fn(env))
            index = int(index_fn(env))
            if not 0 <= index < len(array):
                raise EvalError(
                    f"array index {index} out of range 0..{len(array) - 1}"
                )
            array[index] = value_fn(env)
            return tuple(array)

        return store_fn
    return _interpreted(expr)
