"""Ahead-of-time specialization of concrete model execution.

The kernel layer compiles a :class:`~repro.model.graph.CompiledModel` into
per-block closures over pre-resolved input slots and reused buffers — the
concrete fast path behind ``Simulator(kernel=True)``.  It is observably
equivalent to the generic interpreter in :mod:`repro.model.executor` (see
DESIGN.md, "kernel soundness"); symbolic and abstract execution always use
the interpreter.
"""

from repro.kernel.exprc import compile_expr
from repro.kernel.plan import CompiledKernel, compile_kernel

__all__ = ["CompiledKernel", "compile_expr", "compile_kernel"]
