"""Symbolic encodings of model steps.

Two encoders share the symbolic execution machinery:

* :class:`OneStepEncoding` — STCG's state-aware encoding: inputs are
  symbolic variables, the state snapshot enters as *constants*.  Branch
  conditions therefore collapse wherever they depend on state (a transition
  whose source state is inactive folds to ``false`` immediately), which is
  the paper's central argument for solving one iteration at a time.
* :class:`UnrolledEncoding` — the SLDV-like bounded encoding: ``k`` steps
  are chained symbolically from the initial state, with per-step input
  variables and state expressions threaded between steps.  Constraint size
  grows with depth and with state complexity (arrays, chart locations),
  reproducing why whole-model constraint solving struggles on state-heavy
  models.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SolverError
from repro.coverage.registry import Branch
from repro.expr import ops as x
from repro.expr.ast import Expr, FALSE, TRUE, Var
from repro.model.context import symbolic_context
from repro.model.executor import execute_step
from repro.model.graph import CompiledModel
from repro.model.state import ModelState


class OneStepEncoding:
    """Symbolic execution of one iteration from a concrete state."""

    def __init__(self, compiled: CompiledModel, state: ModelState):
        self.compiled = compiled
        self.state = state
        self.variables: List[Var] = compiled.input_variables()
        inputs: Dict[str, object] = {v.name: v for v in self.variables}
        # ``ModelState.values`` already hands out a fresh dict; execution
        # only reads it (writes land in ``ctx.next_state``), so one copy
        # serves both as the execution environment and as the base of the
        # next-state map.  The snapshot itself is never aliased or mutated.
        env: Dict[str, object] = state.values
        ctx = symbolic_context(inputs, env)
        self.outputs = execute_step(compiled, ctx)
        self._outcome_conditions = ctx.outcome_conditions
        self._condition_atoms = ctx.condition_atoms
        self._next_state = env
        self._next_state.update(ctx.next_state)

    def branch_condition(self, branch: Branch) -> Expr:
        """The branch's local condition C under this state."""
        conditions = self._outcome_conditions.get(branch.decision.decision_id)
        if conditions is None:
            raise SolverError(
                f"decision {branch.decision.path!r} recorded no conditions"
            )
        return conditions[branch.outcome]

    def path_constraint(self, branch: Branch) -> Expr:
        """Branch condition conjoined with all ancestor branch conditions
        (Definition 1: solving a branch means satisfying its whole chain)."""
        constraint = self.branch_condition(branch)
        for ancestor in branch.ancestors():
            constraint = x.land(constraint, self.branch_condition(ancestor))
        return constraint

    def next_state_expressions(self) -> Dict[str, object]:
        """Symbolic next state (constants where untouched)."""
        return dict(self._next_state)

    def obligation_constraint(self, obligation) -> Expr:
        """Constraint whose solution satisfies a condition obligation.

        For a *value* obligation this is: the point is evaluated and the
        atom takes the requested polarity.  For an *mcdc* obligation it is
        additionally required that the atom *determines* the decision
        outcome — the boolean derivative of the point's structure, with the
        other atoms substituted symbolically, must be true.
        """
        recorded = self._condition_atoms.get(obligation.point_id)
        if recorded is None:
            # The point is unreachable from this state (e.g. a transition
            # guard whose source state is inactive).
            return x.FALSE
        atoms, context = recorded
        point = self.compiled.registry.condition_point(obligation.point_id)
        atom = atoms[obligation.atom]
        polarity = atom if obligation.polarity else x.lnot(atom)
        constraint = x.land(context, polarity)
        if obligation.determining:
            constraint = x.land(
                constraint, self._derivative(point, atoms, obligation.atom)
            )
        return constraint

    @staticmethod
    def _derivative(point, atoms: List[Expr], index: int) -> Expr:
        """Boolean derivative of the point structure w.r.t. one atom."""
        from repro.expr.variables import substitute

        bind_true = {}
        bind_false = {}
        for position, atom in enumerate(atoms):
            name = f"c{position}"
            if position == index:
                bind_true[name] = TRUE
                bind_false[name] = FALSE
            else:
                bind_true[name] = atom
                bind_false[name] = atom
        with_true = substitute(point.structure, bind_true)
        with_false = substitute(point.structure, bind_false)
        return x.lxor(with_true, with_false)


class UnrolledEncoding:
    """Bounded multi-step symbolic unrolling from the initial state."""

    def __init__(
        self,
        compiled: CompiledModel,
        depth: int,
        initial_state: Optional[ModelState] = None,
    ):
        if depth < 1:
            raise SolverError("unroll depth must be >= 1")
        self.compiled = compiled
        self.depth = depth
        self.variables: List[Var] = []
        self._step_conditions: List[Dict[int, List[Expr]]] = []
        state_env: Dict[str, object] = (
            initial_state.values
            if initial_state is not None
            else compiled.initial_state()
        )
        for step in range(depth):
            step_vars = compiled.input_variables(suffix=f"@{step}")
            self.variables.extend(step_vars)
            inputs = {
                spec.name: var
                for spec, var in zip(compiled.inports, step_vars)
            }
            ctx = symbolic_context(inputs, state_env, time_index=step)
            execute_step(compiled, ctx)
            self._step_conditions.append(ctx.outcome_conditions)
            state_env = dict(state_env)
            state_env.update(ctx.next_state)
        self._final_state = state_env

    def branch_condition(self, branch: Branch, step: int) -> Expr:
        conditions = self._step_conditions[step].get(branch.decision.decision_id)
        if conditions is None:
            raise SolverError(
                f"decision {branch.decision.path!r} recorded no conditions"
            )
        return conditions[branch.outcome]

    def path_constraint(self, branch: Branch, step: int) -> Expr:
        constraint = self.branch_condition(branch, step)
        for ancestor in branch.ancestors():
            constraint = x.land(constraint, self.branch_condition(ancestor, step))
        return constraint

    def reach_constraint(self, branch: Branch) -> Expr:
        """Branch reachable at *any* unrolled step (disjunction over steps)."""
        return x.disjoin(
            self.path_constraint(branch, step) for step in range(self.depth)
        )

    def decode_sequence(self, model: Dict[str, object]) -> List[Dict[str, object]]:
        """Split a solver model over step-suffixed variables into a test
        input sequence."""
        sequence: List[Dict[str, object]] = []
        for step in range(self.depth):
            step_inputs: Dict[str, object] = {}
            for spec in self.compiled.inports:
                step_inputs[spec.name] = model[f"{spec.name}@{step}"]
            sequence.append(step_inputs)
        return sequence
