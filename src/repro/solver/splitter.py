"""Disjunction splitting for the solver pipeline.

Interval contraction is weak on disjunctions (``a == 5 || b == 7`` narrows
nothing), and branch-distance search can get stuck between basins.  The
splitter decomposes an NNF constraint's top-level OR structure into
individual conjunctive cases, bounded by :data:`MAX_CASES`; the engine then
contracts/solves each case separately:

* any SAT case is a SAT verdict for the whole constraint,
* all cases UNSAT is a *proof* of unsatisfiability,
* otherwise the engine falls back to whole-constraint search.

Distribution is shallow — only ORs reachable from the root through other
ORs/ANDs are split, never ORs nested under arithmetic — which keeps the
case count small and the cases themselves conjunction-shaped (exactly what
HC4 contraction handles well).
"""

from __future__ import annotations

from typing import List, Optional

from repro.expr import ast
from repro.expr.ast import Binary, Expr
from repro.expr import ops as x

#: Cap on produced cases; constraints that would exceed it are not split.
MAX_CASES = 16


def split_cases(nnf_constraint: Expr, max_cases: int = MAX_CASES) -> List[Expr]:
    """Decompose an NNF constraint into disjunctive cases.

    Returns a list of constraints whose disjunction is equivalent to the
    input.  A single-element list means the constraint had no usable OR
    structure (or splitting would exceed ``max_cases``).
    """
    cases = _split(nnf_constraint, max_cases)
    if cases is None:
        return [nnf_constraint]
    return cases


def _split(node: Expr, budget: int) -> Optional[List[Expr]]:
    """Return disjunctive cases of ``node`` or None if over budget."""
    if isinstance(node, Binary):
        if node.op == ast.OR:
            left = _split(node.left, budget)
            if left is None:
                return None
            right = _split(node.right, budget - len(left))
            if right is None:
                return None
            combined = left + right
            if len(combined) > budget:
                return None
            return combined
        if node.op == ast.AND:
            left = _split(node.left, budget)
            right = _split(node.right, budget)
            if left is None or right is None:
                return None
            if len(left) * len(right) > budget:
                # Distribute only if the product stays small; otherwise keep
                # the AND intact on the larger side.
                if len(left) == 1 or len(right) == 1:
                    pass  # product == max(len), fine
                else:
                    return None
            return [
                x.land(a, b)
                for a in left
                for b in right
            ]
    return [node]
