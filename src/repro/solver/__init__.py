"""From-scratch constraint solving stack.

Pipeline stages (see :class:`~repro.solver.engine.SolverEngine`):

1. constant folding (done eagerly by the expression smart constructors),
2. interval contraction (:mod:`repro.solver.contractor`) — an empty
   contracted box is a proof of unsatisfiability,
3. corner/random sampling inside the contracted box
   (:mod:`repro.solver.sampler`),
4. alternating-variable-method search on branch distance
   (:mod:`repro.solver.avm`).

The one-step model encoder that produces the constraints lives in
:mod:`repro.solver.encoder`.
"""

from repro.solver.box import Box
from repro.solver.contractor import Contractor
from repro.solver.engine import SolveResult, SolveStats, SolverConfig, SolverEngine, Status
from repro.solver.interval import Interval

__all__ = [
    "Box",
    "Contractor",
    "Interval",
    "SolveResult",
    "SolveStats",
    "SolverConfig",
    "SolverEngine",
    "Status",
]
