"""Closed-interval arithmetic for the contraction-based solver stage.

Intervals are over the extended reals; booleans are encoded as the interval
``[0, 1]`` (``[1, 1]`` definitely true, ``[0, 0]`` definitely false).
Operations are conservative: the result interval always contains every value
producible from operand values, which keeps the contractor sound (an empty
contracted box proves unsatisfiability).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; ``lo > hi`` denotes the empty set."""

    lo: float
    hi: float

    # -- constructors -------------------------------------------------------

    @staticmethod
    def point(value: float) -> "Interval":
        value = float(value)
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        return Interval(-INF, INF)

    @staticmethod
    def empty() -> "Interval":
        return _EMPTY

    @staticmethod
    def boolean() -> "Interval":
        return Interval(0.0, 1.0)

    # -- predicates ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    @property
    def width(self) -> float:
        if self.is_empty:
            return 0.0
        return self.hi - self.lo

    # As a boolean lattice value.
    @property
    def definitely_true(self) -> bool:
        return not self.is_empty and self.lo > 0.0

    @property
    def definitely_false(self) -> bool:
        return not self.is_empty and self.hi <= 0.0

    # -- set operations -------------------------------------------------------

    def intersect(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return _EMPTY
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return _EMPTY
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def round_to_int(self) -> "Interval":
        """Tighten to the integers contained in the interval."""
        if self.is_empty:
            return self
        lo = self.lo if math.isinf(self.lo) else math.ceil(self.lo - 1e-9)
        hi = self.hi if math.isinf(self.hi) else math.floor(self.hi + 1e-9)
        if lo > hi:
            return _EMPTY
        return Interval(float(lo), float(hi))

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return _EMPTY
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return _EMPTY
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        if self.is_empty:
            return _EMPTY
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return _EMPTY
        products = [
            _mul(self.lo, other.lo),
            _mul(self.lo, other.hi),
            _mul(self.hi, other.lo),
            _mul(self.hi, other.hi),
        ]
        return Interval(min(products), max(products))

    def divide(self, other: "Interval") -> "Interval":
        """Conservative division; divisor straddling zero yields top."""
        if self.is_empty or other.is_empty:
            return _EMPTY
        if other.contains(0.0):
            return Interval.top()
        quotients = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ]
        return Interval(min(quotients), max(quotients))

    def minimum(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return _EMPTY
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def maximum(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return _EMPTY
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def absolute(self) -> "Interval":
        if self.is_empty:
            return _EMPTY
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def floor(self) -> "Interval":
        if self.is_empty:
            return _EMPTY
        lo = self.lo if math.isinf(self.lo) else math.floor(self.lo)
        hi = self.hi if math.isinf(self.hi) else math.floor(self.hi)
        return Interval(float(lo), float(hi))

    def ceil(self) -> "Interval":
        if self.is_empty:
            return _EMPTY
        lo = self.lo if math.isinf(self.lo) else math.ceil(self.lo)
        hi = self.hi if math.isinf(self.hi) else math.ceil(self.hi)
        return Interval(float(lo), float(hi))

    def trunc(self) -> "Interval":
        """C-style truncation toward zero."""
        if self.is_empty:
            return _EMPTY
        lo = self.lo if math.isinf(self.lo) else float(math.trunc(self.lo))
        hi = self.hi if math.isinf(self.hi) else float(math.trunc(self.hi))
        return Interval(lo, hi)

    def __repr__(self) -> str:
        if self.is_empty:
            return "Interval(empty)"
        return f"Interval({self.lo}, {self.hi})"


def _mul(a: float, b: float) -> float:
    """Multiplication with 0 * inf = 0 (the conservative choice here)."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


_EMPTY = Interval(1.0, -1.0)

#: Boolean lattice constants.
BOOL_TRUE = Interval(1.0, 1.0)
BOOL_FALSE = Interval(0.0, 0.0)
BOOL_UNKNOWN = Interval(0.0, 1.0)
