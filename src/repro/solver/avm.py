"""Alternating Variable Method search over a branch-distance objective.

AVM (Korel 1990) is a local search that optimizes one variable at a time:
first probing +/- one step ("exploratory moves"), then accelerating in the
improving direction with geometrically growing steps ("pattern moves").
Combined with random restarts it is a strong baseline for the piecewise
linear branch-distance landscapes produced by control models.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.expr.types import BOOL, INT
from repro.solver.box import Box
from repro.solver.interval import Interval
from repro.solver.sampler import clamp_to_domain, sample_point

Objective = Callable[[Dict[str, object]], float]

#: Real-valued variables get exploratory passes at these base step sizes.
REAL_STEPS = (1.0, 0.1, 0.01)


@dataclass
class AvmResult:
    """Outcome of an AVM run."""

    env: Dict[str, object]
    distance: float
    evaluations: int
    restarts: int = 0

    @property
    def satisfied(self) -> bool:
        return self.distance == 0.0


@dataclass
class _Budget:
    max_evaluations: int
    deadline: Optional[Callable[[], bool]] = None
    used: int = field(default=0)

    def spend(self) -> bool:
        """Consume one evaluation; returns False once exhausted."""
        self.used += 1
        if self.used > self.max_evaluations:
            return False
        if self.deadline is not None and self.deadline():
            return False
        return True

    @property
    def exhausted(self) -> bool:
        if self.used >= self.max_evaluations:
            return True
        return self.deadline is not None and self.deadline()


class AvmSearch:
    """Reusable AVM searcher for a fixed objective and box."""

    def __init__(
        self,
        objective: Objective,
        box: Box,
        rng: random.Random,
        max_evaluations: int = 2000,
        deadline: Optional[Callable[[], bool]] = None,
    ):
        self._objective = objective
        self._box = box
        self._rng = rng
        self._budget = _Budget(max_evaluations, deadline)
        self._names: List[str] = [name for name, _ in box]

    # -- public ----------------------------------------------------------------

    def run(self, start: Optional[Dict[str, object]] = None) -> AvmResult:
        """Search from ``start`` (random if omitted), restarting until budget."""
        best_env = dict(start) if start is not None else sample_point(self._box, self._rng)
        best_dist = self._evaluate(best_env)
        restarts = 0
        current_env, current_dist = dict(best_env), best_dist
        while best_dist > 0.0 and not self._budget.exhausted:
            current_env, current_dist = self._climb(current_env, current_dist)
            if current_dist < best_dist:
                best_env, best_dist = dict(current_env), current_dist
            if best_dist == 0.0 or self._budget.exhausted:
                break
            # Local optimum: random restart.
            restarts += 1
            current_env = sample_point(self._box, self._rng)
            current_dist = self._evaluate(current_env)
            if current_dist < best_dist:
                best_env, best_dist = dict(current_env), current_dist
        return AvmResult(best_env, best_dist, self._budget.used, restarts)

    # -- internals ---------------------------------------------------------------

    def _evaluate(self, env: Dict[str, object]) -> float:
        if not self._budget.spend():
            return math.inf
        return self._objective(env)

    def _climb(self, env: Dict[str, object], dist: float):
        """One full alternating pass until no variable improves."""
        improved = True
        while improved and dist > 0.0 and not self._budget.exhausted:
            improved = False
            order = list(self._names)
            self._rng.shuffle(order)
            for name in order:
                env, dist, moved = self._optimize_variable(env, dist, name)
                if moved:
                    improved = True
                if dist == 0.0 or self._budget.exhausted:
                    return env, dist
        return env, dist

    def _optimize_variable(self, env: Dict[str, object], dist: float, name: str):
        var = self._box.var(name)
        domain = self._box.domain(name)
        if var.ty is BOOL:
            return self._flip_boolean(env, dist, name)
        steps = (1.0,) if var.ty is INT else REAL_STEPS
        moved_any = False
        for step in steps:
            env, dist, moved = self._pattern_search(env, dist, name, step, domain, var.ty is INT)
            moved_any = moved_any or moved
            if dist == 0.0 or self._budget.exhausted:
                break
        return env, dist, moved_any

    def _flip_boolean(self, env: Dict[str, object], dist: float, name: str):
        trial = dict(env)
        trial[name] = not bool(env[name])
        trial_dist = self._evaluate(trial)
        if trial_dist < dist:
            return trial, trial_dist, True
        return env, dist, False

    def _pattern_search(
        self,
        env: Dict[str, object],
        dist: float,
        name: str,
        step: float,
        domain: Interval,
        is_int: bool,
    ):
        """Exploratory probe then geometric acceleration along one variable."""
        direction = 0
        for sign in (+1, -1):
            trial, trial_dist = self._probe(env, name, sign * step, domain, is_int)
            if trial_dist < dist:
                env, dist = trial, trial_dist
                direction = sign
                break
        if direction == 0:
            return env, dist, False
        # Pattern moves: double the step while it keeps improving.
        scale = 2.0
        while not self._budget.exhausted:
            trial, trial_dist = self._probe(
                env, name, direction * step * scale, domain, is_int
            )
            if trial_dist < dist:
                env, dist = trial, trial_dist
                scale *= 2.0
            else:
                break
        return env, dist, True

    def _probe(self, env, name, delta, domain, is_int):
        trial = dict(env)
        base = float(env[name])
        value = clamp_to_domain(base + delta, domain, is_int)
        trial[name] = int(value) if is_int else value
        if trial[name] == env[name]:
            return trial, math.inf
        return trial, self._evaluate(trial)
