"""Candidate-point generation inside a contracted variable box."""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List

from repro.expr.types import BOOL, INT
from repro.solver.box import Box
from repro.solver.interval import Interval


def clamp_to_domain(value: float, domain: Interval, is_int: bool) -> float:
    """Clamp a scalar into a domain, rounding integers."""
    if domain.is_empty:
        return value
    lo = domain.lo if math.isfinite(domain.lo) else -1.0e9
    hi = domain.hi if math.isfinite(domain.hi) else 1.0e9
    value = min(max(value, lo), hi)
    if is_int:
        value = float(round(value))
        value = min(max(value, math.ceil(lo)), math.floor(hi))
    return value


def sample_point(box: Box, rng: random.Random) -> Dict[str, object]:
    """Draw one random assignment inside the box (uniform per variable)."""
    env: Dict[str, object] = {}
    for name, domain in box:
        var = box.var(name)
        env[name] = _draw(domain, var.ty, rng)
    return env


def corner_points(box: Box, limit: int = 8) -> List[Dict[str, object]]:
    """A few deterministic candidates: midpoints, lows, highs, zeros."""
    mids: Dict[str, object] = {}
    los: Dict[str, object] = {}
    his: Dict[str, object] = {}
    zeros: Dict[str, object] = {}
    for name, domain in box:
        var = box.var(name)
        is_int = var.ty is INT or var.ty is BOOL
        lo = domain.lo if math.isfinite(domain.lo) else -1.0e6
        hi = domain.hi if math.isfinite(domain.hi) else 1.0e6
        mid = clamp_to_domain((lo + hi) / 2.0, domain, is_int)
        mids[name] = _to_value(mid, var.ty)
        los[name] = _to_value(clamp_to_domain(lo, domain, is_int), var.ty)
        his[name] = _to_value(clamp_to_domain(hi, domain, is_int), var.ty)
        zeros[name] = _to_value(clamp_to_domain(0.0, domain, is_int), var.ty)
    candidates = [mids, zeros, los, his]
    return candidates[:limit]


def sample_stream(
    box: Box, rng: random.Random, count: int
) -> Iterator[Dict[str, object]]:
    """Yield ``count`` random assignments."""
    for _ in range(count):
        yield sample_point(box, rng)


def _draw(domain: Interval, ty, rng: random.Random):
    if ty is BOOL:
        if domain.is_empty:
            return False
        if domain.lo > 0:
            return True
        if domain.hi < 1:
            return False
        return rng.random() < 0.5
    lo = domain.lo if math.isfinite(domain.lo) else -1.0e6
    hi = domain.hi if math.isfinite(domain.hi) else 1.0e6
    if domain.is_empty:
        lo, hi = -1.0e6, 1.0e6
    if ty is INT:
        ilo = math.ceil(lo)
        ihi = math.floor(hi)
        if ilo > ihi:
            return int(round(lo))
        roll = rng.random()
        # Mix domain corners and small magnitudes with uniform draws:
        # branch conditions compare against small constants and extremes.
        if roll < 0.1:
            return ilo
        if roll < 0.2:
            return ihi
        if roll < 0.6 and ilo <= 0 <= ihi:
            bound = min(16, max(abs(ilo), abs(ihi)))
            return rng.randint(max(ilo, -bound), min(ihi, bound))
        return rng.randint(ilo, ihi)
    roll = rng.random()
    if roll < 0.1:
        return lo
    if roll < 0.2:
        return hi
    if roll < 0.45 and lo <= 0.0 <= hi:
        return rng.uniform(max(lo, -16.0), min(hi, 16.0))
    return rng.uniform(lo, hi)


def _to_value(value: float, ty):
    if ty is BOOL:
        return bool(round(value))
    if ty is INT:
        return int(round(value))
    return float(value)
