"""The solving pipeline: fold → contract → sample → AVM.

:class:`SolverEngine` is the "constraint solver" STCG calls in Algorithm 1
line 10.  It is budgeted: a call that exhausts its budget returns
``UNKNOWN``, which the caller treats exactly like the paper treats a solver
timeout (try another state / branch).
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import SolverError
from repro.expr.ast import Const, Expr, Var
from repro.obs.stages import SolverStageMetrics, canonical_stage
from repro.expr.distance import DistanceEvaluator
from repro.expr.evaluator import evaluate
from repro.expr.nnf import to_nnf
from repro.expr.types import BOOL, INT
from repro.solver.avm import AvmSearch
from repro.solver.box import Box
from repro.solver.contractor import Contractor
from repro.solver.sampler import corner_points, sample_point
from repro.solver.splitter import split_cases


class Status(enum.Enum):
    """Outcome of a solver call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverConfig:
    """Budgets and knobs for a :class:`SolverEngine`.

    ``max_samples`` random points are tried after contraction before the AVM
    stage spends up to ``avm_evaluations`` objective evaluations.
    ``time_budget_s`` bounds one ``solve`` call end to end.
    """

    max_samples: int = 64
    avm_evaluations: int = 1500
    time_budget_s: float = 0.5
    seed: int = 0


@dataclass
class SolveStats:
    """Bookkeeping for one solver call.

    ``stage`` is the fine tag of the stage that produced the verdict;
    ``stage_times`` holds wall-clock seconds per *canonical* stage the call
    passed through (see :mod:`repro.obs.stages`).
    """

    status: Status = Status.UNKNOWN
    stage: str = ""
    samples: int = 0
    avm_evaluations: int = 0
    elapsed_s: float = 0.0
    stage_times: Dict[str, float] = field(default_factory=dict)


@dataclass
class SolveResult:
    """A solver verdict plus (for SAT) a complete input assignment."""

    status: Status
    model: Optional[Dict[str, object]] = None
    stats: SolveStats = field(default_factory=SolveStats)

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT


class SolverEngine:
    """Budgeted constraint solver over the expression IR."""

    def __init__(self, config: Optional[SolverConfig] = None):
        self.config = config or SolverConfig()
        self._rng = random.Random(self.config.seed)
        #: Lifetime per-stage attempt/win/time accounting (always on; a
        #: handful of clock reads per call, negligible next to a solve).
        self.metrics = SolverStageMetrics()

    def solve(
        self,
        constraint: Expr,
        variables: Iterable[Var],
        rng: Optional[random.Random] = None,
    ) -> SolveResult:
        """Find values for ``variables`` satisfying ``constraint``.

        ``variables`` must cover every free variable of the constraint; extra
        variables are given arbitrary in-domain values so the returned model
        is always a *complete* input assignment.
        """
        if not constraint.ty.is_bool:
            raise SolverError(f"constraint must be boolean, got {constraint.ty!r}")
        rng = rng or self._rng
        started = time.monotonic()
        stats = SolveStats()
        var_list = _dedupe(variables)

        def out_of_time() -> bool:
            return time.monotonic() - started > self.config.time_budget_s

        last_mark = started

        def mark(stage: str) -> None:
            """Attribute the time since the previous mark to ``stage``."""
            nonlocal last_mark
            now = time.monotonic()
            stats.stage_times[stage] = (
                stats.stage_times.get(stage, 0.0) + (now - last_mark)
            )
            last_mark = now

        def finish(status: Status, model=None, stage: str = "") -> SolveResult:
            mark(canonical_stage(stage))
            stats.status = status
            stats.stage = stage
            stats.elapsed_s = time.monotonic() - started
            self.metrics.record(stats)
            return SolveResult(status, model, stats)

        # Stage 0: constant constraint.
        if isinstance(constraint, Const):
            if constraint.value:
                box = Box(var_list)
                return finish(
                    Status.SAT, self._certify(constraint, {}, box), "fold"
                )
            return finish(Status.UNSAT, stage="fold")

        # Stage 1: interval contraction.
        box = Box(var_list)
        feasible = Contractor(constraint).contract(box)
        if not feasible:
            return finish(Status.UNSAT, stage="contract")
        mark("contract")

        nnf = to_nnf(constraint)
        distance = DistanceEvaluator(nnf)

        def objective(env: Dict[str, object]) -> float:
            return distance.distance(env)

        # Stage 2: deterministic corners then random samples inside the box.
        best_env: Optional[Dict[str, object]] = None
        best_dist = float("inf")
        for candidate in corner_points(box):
            stats.samples += 1
            d = objective(candidate)
            if d < best_dist:
                best_env, best_dist = candidate, d
            if d == 0.0:
                return finish(
                    Status.SAT, self._certify(constraint, candidate, box), "corner"
                )
        for _ in range(self.config.max_samples):
            if out_of_time():
                return finish(Status.UNKNOWN, stage="sample-timeout")
            candidate = sample_point(box, rng)
            stats.samples += 1
            d = objective(candidate)
            if d < best_dist:
                best_env, best_dist = candidate, d
            if d == 0.0:
                return finish(
                    Status.SAT, self._certify(constraint, candidate, box), "sample"
                )

        # Stage 3: disjunction splitting — contract and sample each OR case
        # separately.  Any satisfied case is SAT; all cases proven
        # inconsistent is UNSAT.
        mark("sample")
        cases = split_cases(nnf)
        if len(cases) > 1:
            all_unsat = True
            per_case = max(4, self.config.max_samples // len(cases))
            for case in cases:
                if out_of_time():
                    all_unsat = False
                    break
                case_box = Box(var_list)
                if not Contractor(case).contract(case_box):
                    continue
                all_unsat = False
                case_distance = DistanceEvaluator(to_nnf(case))
                for candidate in corner_points(case_box):
                    stats.samples += 1
                    if case_distance.distance(candidate) == 0.0:
                        return finish(
                            Status.SAT,
                            self._certify(constraint, candidate, box),
                            "split-corner",
                        )
                for _ in range(per_case):
                    candidate = sample_point(case_box, rng)
                    stats.samples += 1
                    d = case_distance.distance(candidate)
                    if d == 0.0:
                        return finish(
                            Status.SAT,
                            self._certify(constraint, candidate, box),
                            "split-sample",
                        )
                    whole = objective(candidate)
                    if whole < best_dist:
                        best_env, best_dist = candidate, whole
            if all_unsat:
                return finish(Status.UNSAT, stage="split")
            mark("split")

        # Stage 4: AVM from the best point seen so far.
        search = AvmSearch(
            objective,
            box,
            rng,
            max_evaluations=self.config.avm_evaluations,
            deadline=out_of_time,
        )
        result = search.run(best_env)
        stats.avm_evaluations = result.evaluations
        if result.satisfied:
            return finish(Status.SAT, self._certify(constraint, result.env, box), "avm")
        return finish(Status.UNKNOWN, stage="avm")

    # ------------------------------------------------------------------

    def _certify(
        self, constraint: Expr, env: Dict[str, object], box: Box
    ) -> Dict[str, object]:
        """Re-check a candidate and normalize it into a complete model.

        Variables the constraint does not mention are *resampled* randomly:
        a caller storing solver models in an input library (STCG's Figure 2)
        then gets diverse values on the don't-care inputs instead of the
        corner points the search happened to start from.
        """
        from repro.expr.variables import free_variables

        constrained = set(free_variables(constraint))
        filler = sample_point(box, self._rng)
        model: Dict[str, object] = {}
        for name, _ in box:
            source = env if name in constrained and name in env else filler
            var = box.var(name)
            value = source[name]
            if var.ty is BOOL:
                model[name] = bool(value)
            elif var.ty is INT:
                model[name] = int(value)
            else:
                model[name] = float(value)
        if evaluate(constraint, model) is not True:
            raise SolverError(
                "internal error: zero-distance candidate failed verification"
            )
        return model


def _dedupe(variables: Iterable[Var]) -> List[Var]:
    seen = set()
    result: List[Var] = []
    for var in variables:
        if var.name not in seen:
            seen.add(var.name)
            result.append(var)
    return result
