"""The solving pipeline: fold → contract → sample → AVM.

:class:`SolverEngine` is the "constraint solver" STCG calls in Algorithm 1
line 10.  It is budgeted: a call that exhausts its budget returns
``UNKNOWN``, which the caller treats exactly like the paper treats a solver
timeout (try another state / branch).
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import SolverError
from repro.expr.ast import Const, Expr, Var
from repro.obs.stages import SolverStageMetrics, canonical_stage
from repro.expr.distance import DistanceEvaluator
from repro.expr.evaluator import evaluate
from repro.expr.nnf import to_nnf
from repro.expr.types import BOOL, INT
from repro.solver.avm import AvmSearch
from repro.solver.box import Box
from repro.solver.contractor import Contractor
from repro.solver.sampler import corner_points, sample_point
from repro.solver.splitter import split_cases
from repro.solverc.compiler import CompiledConstraint, SolvercStats


class Status(enum.Enum):
    """Outcome of a solver call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverConfig:
    """Budgets and knobs for a :class:`SolverEngine`.

    ``max_samples`` random points are tried after contraction before the AVM
    stage spends up to ``avm_evaluations`` objective evaluations.
    ``time_budget_s`` bounds one ``solve`` call end to end.
    """

    max_samples: int = 64
    avm_evaluations: int = 1500
    time_budget_s: float = 0.5
    seed: int = 0


@dataclass
class SolveStats:
    """Bookkeeping for one solver call.

    ``stage`` is the fine tag of the stage that produced the verdict;
    ``stage_times`` holds wall-clock seconds per *canonical* stage the call
    passed through (see :mod:`repro.obs.stages`).
    """

    status: Status = Status.UNKNOWN
    stage: str = ""
    samples: int = 0
    avm_evaluations: int = 0
    elapsed_s: float = 0.0
    stage_times: Dict[str, float] = field(default_factory=dict)


@dataclass
class SolveResult:
    """A solver verdict plus (for SAT) a complete input assignment."""

    status: Status
    model: Optional[Dict[str, object]] = None
    stats: SolveStats = field(default_factory=SolveStats)

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT


class SolverEngine:
    """Budgeted constraint solver over the expression IR."""

    def __init__(self, config: Optional[SolverConfig] = None):
        self.config = config or SolverConfig()
        self._rng = random.Random(self.config.seed)
        #: Lifetime per-stage attempt/win/time accounting (always on; a
        #: handful of clock reads per call, negligible next to a solve).
        self.metrics = SolverStageMetrics()
        #: Compiled-vs-fallback traffic when callers pass ``compiled=``
        #: bundles (stays all-zero on pure interpreter use).
        self.solverc = SolvercStats()

    def solve(
        self,
        constraint: Expr,
        variables: Iterable[Var],
        rng: Optional[random.Random] = None,
        compiled: Optional[CompiledConstraint] = None,
    ) -> SolveResult:
        """Find values for ``variables`` satisfying ``constraint``.

        ``variables`` must cover every free variable of the constraint; extra
        variables are given arbitrary in-domain values so the returned model
        is always a *complete* input assignment.

        ``compiled`` (a :class:`~repro.solverc.CompiledConstraint` for this
        exact constraint) lets the stages run their kernel forms — compiled
        contraction, batched candidate scoring, compiled AVM objective —
        with per-stage fallback to the interpreter.  Results are
        bit-identical either way; only speed changes.
        """
        if not constraint.ty.is_bool:
            raise SolverError(f"constraint must be boolean, got {constraint.ty!r}")
        rng = rng or self._rng
        started = time.monotonic()
        stats = SolveStats()
        var_list = _dedupe(variables)

        def out_of_time() -> bool:
            return time.monotonic() - started > self.config.time_budget_s

        last_mark = started

        def mark(stage: str) -> None:
            """Attribute the time since the previous mark to ``stage``."""
            nonlocal last_mark
            now = time.monotonic()
            stats.stage_times[stage] = (
                stats.stage_times.get(stage, 0.0) + (now - last_mark)
            )
            last_mark = now

        def finish(status: Status, model=None, stage: str = "") -> SolveResult:
            mark(canonical_stage(stage))
            stats.status = status
            stats.stage = stage
            stats.elapsed_s = time.monotonic() - started
            self.metrics.record(stats)
            return SolveResult(status, model, stats)

        # Stage 0: constant constraint.
        if isinstance(constraint, Const):
            if constraint.value:
                box = Box(var_list)
                return finish(
                    Status.SAT, self._certify(constraint, {}, box), "fold"
                )
            return finish(Status.UNSAT, stage="fold")

        # Stage 1: interval contraction.
        box = Box(var_list)
        feasible = self._contract(constraint, box, compiled)
        if not feasible:
            return finish(Status.UNSAT, stage="contract")
        mark("contract")

        scalar = None
        batch = None
        if compiled is not None:
            nnf = compiled.nnf()
            scalar = compiled.objective()
            batch = compiled.batch()
        else:
            nnf = to_nnf(constraint)
        if scalar is not None:
            objective = scalar
        else:
            objective = DistanceEvaluator(nnf).distance

        # Stage 2: deterministic corners then random samples inside the box.
        best_env: Optional[Dict[str, object]] = None
        best_dist = float("inf")
        corners = corner_points(box)
        if batch is not None:
            best_env, best_dist, hit = _batch_scan(
                batch, corners, best_env, best_dist
            )
            self.solverc.note("candidates_batched", len(corners))
            if hit is not None:
                stats.samples += hit + 1
                return finish(
                    Status.SAT,
                    self._certify(constraint, corners[hit], box),
                    "corner",
                )
            stats.samples += len(corners)
        else:
            if compiled is not None:
                self.solverc.note("candidates_scalar", len(corners))
            for candidate in corners:
                stats.samples += 1
                d = objective(candidate)
                if d < best_dist:
                    best_env, best_dist = candidate, d
                if d == 0.0:
                    return finish(
                        Status.SAT,
                        self._certify(constraint, candidate, box),
                        "corner",
                    )
        if batch is not None:
            # One chunk per stage: draw every candidate (identical RNG
            # stream), score them in one tape pass, and on a hit rewind
            # the RNG and re-draw exactly as many points as the scalar
            # loop would have consumed before returning.
            chunk_size = self.config.max_samples
            if chunk_size > 0:
                if out_of_time():
                    return finish(Status.UNKNOWN, stage="sample-timeout")
                state = rng.getstate()
                chunk = [
                    sample_point(box, rng) for _ in range(chunk_size)
                ]
                best_env, best_dist, hit = _batch_scan(
                    batch, chunk, best_env, best_dist
                )
                self.solverc.note("candidates_batched", chunk_size)
                if hit is not None:
                    rng.setstate(state)
                    for _ in range(hit + 1):
                        sample_point(box, rng)
                    stats.samples += hit + 1
                    return finish(
                        Status.SAT,
                        self._certify(constraint, chunk[hit], box),
                        "sample",
                    )
                stats.samples += chunk_size
        else:
            if compiled is not None:
                self.solverc.note(
                    "candidates_scalar", self.config.max_samples
                )
            for _ in range(self.config.max_samples):
                if out_of_time():
                    return finish(Status.UNKNOWN, stage="sample-timeout")
                candidate = sample_point(box, rng)
                stats.samples += 1
                d = objective(candidate)
                if d < best_dist:
                    best_env, best_dist = candidate, d
                if d == 0.0:
                    return finish(
                        Status.SAT,
                        self._certify(constraint, candidate, box),
                        "sample",
                    )

        # Stage 3: disjunction splitting — contract and sample each OR case
        # separately.  Any satisfied case is SAT; all cases proven
        # inconsistent is UNSAT.
        mark("sample")
        if compiled is not None:
            compiled_cases = compiled.cases()
            cases = [entry.case for entry in compiled_cases]
        else:
            compiled_cases = None
            cases = split_cases(nnf)
        if len(cases) > 1:
            all_unsat = True
            per_case = max(4, self.config.max_samples // len(cases))
            for case_index, case in enumerate(cases):
                if out_of_time():
                    all_unsat = False
                    break
                case_box = Box(var_list)
                entry = (
                    compiled_cases[case_index]
                    if compiled_cases is not None
                    else None
                )
                if not self._contract(case, case_box, entry):
                    continue
                all_unsat = False
                case_batch = entry.batch() if entry is not None else None
                if case_batch is not None:
                    self.solverc.note("case_batched")
                    case_corners = corner_points(case_box)
                    if case_corners:
                        dists = case_batch.evaluate(case_corners)
                        self.solverc.note(
                            "candidates_batched", len(case_corners)
                        )
                        hit = _first_zero(dists)
                        if hit is not None:
                            stats.samples += hit + 1
                            return finish(
                                Status.SAT,
                                self._certify(
                                    constraint, case_corners[hit], box
                                ),
                                "split-corner",
                            )
                        stats.samples += len(case_corners)
                    state = rng.getstate()
                    chunk = [
                        sample_point(case_box, rng)
                        for _ in range(per_case)
                    ]
                    dists = case_batch.evaluate(chunk)
                    self.solverc.note("candidates_batched", per_case)
                    hit = _first_zero(dists)
                    if hit is not None:
                        rng.setstate(state)
                        for _ in range(hit + 1):
                            sample_point(case_box, rng)
                        stats.samples += hit + 1
                        return finish(
                            Status.SAT,
                            self._certify(constraint, chunk[hit], box),
                            "split-sample",
                        )
                    stats.samples += per_case
                    if batch is not None:
                        best_env, best_dist = _batch_best(
                            batch, chunk, best_env, best_dist
                        )
                        self.solverc.note("candidates_batched", per_case)
                    else:
                        for candidate in chunk:
                            whole = objective(candidate)
                            if whole < best_dist:
                                best_env, best_dist = candidate, whole
                else:
                    if entry is not None:
                        self.solverc.note("case_interpreted")
                    case_distance = DistanceEvaluator(to_nnf(case))
                    for candidate in corner_points(case_box):
                        stats.samples += 1
                        if case_distance.distance(candidate) == 0.0:
                            return finish(
                                Status.SAT,
                                self._certify(constraint, candidate, box),
                                "split-corner",
                            )
                    for _ in range(per_case):
                        candidate = sample_point(case_box, rng)
                        stats.samples += 1
                        d = case_distance.distance(candidate)
                        if d == 0.0:
                            return finish(
                                Status.SAT,
                                self._certify(constraint, candidate, box),
                                "split-sample",
                            )
                        whole = objective(candidate)
                        if whole < best_dist:
                            best_env, best_dist = candidate, whole
            if all_unsat:
                return finish(Status.UNSAT, stage="split")
            mark("split")

        # Stage 4: AVM from the best point seen so far.
        if compiled is not None:
            self.solverc.note(
                "avm_compiled" if scalar is not None else "avm_interpreted"
            )
        search = AvmSearch(
            objective,
            box,
            rng,
            max_evaluations=self.config.avm_evaluations,
            deadline=out_of_time,
        )
        result = search.run(best_env)
        stats.avm_evaluations = result.evaluations
        if result.satisfied:
            return finish(Status.SAT, self._certify(constraint, result.env, box), "avm")
        return finish(Status.UNKNOWN, stage="avm")

    def _contract(self, constraint: Expr, box: Box, compiled) -> bool:
        """Contract ``box``, preferring the compiled contractor.

        ``compiled`` is a :class:`CompiledConstraint` or
        :class:`~repro.solverc.compiler.CompiledCase` (both carry a
        ``contractor`` and a ``contract_result`` cache) or None for the
        pure interpreter path.  Contraction is a pure function of the
        constraint and the freshly built box, so a cached (feasible,
        snapshot) pair replays the exact narrowing.
        """
        if compiled is None:
            return Contractor(constraint).contract(box)
        cached = compiled.contract_result
        if cached is not None:
            feasible, snapshot = cached
            box.restore(snapshot)
            self.solverc.note("contract_cached")
            return feasible
        if compiled.contractor is not None:
            feasible = compiled.contractor.contract(box)
            self.solverc.note("contract_compiled")
        else:
            feasible = Contractor(constraint).contract(box)
            self.solverc.note("contract_interpreted")
        compiled.contract_result = (feasible, box.snapshot())
        return feasible

    # ------------------------------------------------------------------

    def _certify(
        self, constraint: Expr, env: Dict[str, object], box: Box
    ) -> Dict[str, object]:
        """Re-check a candidate and normalize it into a complete model.

        Variables the constraint does not mention are *resampled* randomly:
        a caller storing solver models in an input library (STCG's Figure 2)
        then gets diverse values on the don't-care inputs instead of the
        corner points the search happened to start from.
        """
        from repro.expr.variables import free_variables

        constrained = set(free_variables(constraint))
        filler = sample_point(box, self._rng)
        model: Dict[str, object] = {}
        for name, _ in box:
            source = env if name in constrained and name in env else filler
            var = box.var(name)
            value = source[name]
            if var.ty is BOOL:
                model[name] = bool(value)
            elif var.ty is INT:
                model[name] = int(value)
            else:
                model[name] = float(value)
        if evaluate(constraint, model) is not True:
            raise SolverError(
                "internal error: zero-distance candidate failed verification"
            )
        return model


def _first_zero(dists: np.ndarray) -> Optional[int]:
    """Index of the first exactly-satisfied candidate, or None."""
    zeros = np.flatnonzero(dists == 0.0)
    if zeros.size:
        return int(zeros[0])
    return None


def _batch_best(batch, candidates, best_env, best_dist):
    """Advance the best tracker over a chunk — zero is not a verdict here.

    The split stage scores candidates against the *whole* constraint
    purely to seed the AVM start point; a zero whole-distance does not
    end the stage (only a zero *case* distance does), so unlike
    ``_batch_scan`` a zero must simply win the best tracker.
    """
    if not candidates:
        return best_env, best_dist
    dists = batch.evaluate(candidates)
    low = int(np.argmin(dists))
    d = float(dists[low])
    if d < best_dist:
        return candidates[low], d
    return best_env, best_dist


def _batch_scan(batch, candidates, best_env, best_dist):
    """Score a candidate chunk; returns (best_env, best_dist, hit_index).

    Mirrors the scalar loop exactly: a zero distance wins immediately
    (first index, like the sequential scan), otherwise the best tracker
    advances to the chunk's first minimum iff it strictly beats the
    incumbent — which is what candidate-by-candidate ``d < best_dist``
    updates converge to.
    """
    if not candidates:
        return best_env, best_dist, None
    dists = batch.evaluate(candidates)
    hit = _first_zero(dists)
    if hit is not None:
        return best_env, best_dist, hit
    low = int(np.argmin(dists))
    d = float(dists[low])
    if d < best_dist:
        return candidates[low], d, None
    return best_env, best_dist, None


def _dedupe(variables: Iterable[Var]) -> List[Var]:
    seen = set()
    result: List[Var] = []
    for var in variables:
        if var.name not in seen:
            seen.add(var.name)
            result.append(var)
    return result
