"""HC4-style forward/backward interval contraction over constraint trees.

The contractor narrows a :class:`~repro.solver.box.Box` of input domains so
that every solution of the constraint stays inside the box.  An empty box
after contraction is therefore a *proof of unsatisfiability*; a non-empty box
guides the sampling and AVM stages.

The implementation is deliberately conservative: operators it cannot invert
(stores, selects with symbolic indices, XOR, multiplication across zero)
simply do not contract, which keeps soundness trivially intact.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.expr import ast
from repro.expr.ast import Binary, Const, Expr, Ite, Select, Store, Unary, Var
from repro.solver.box import Box
from repro.solver.interval import (
    BOOL_FALSE,
    BOOL_TRUE,
    BOOL_UNKNOWN,
    Interval,
)

#: Contraction fixpoint iteration cap.
MAX_PASSES = 12


class Contractor:
    """Runs forward/backward contraction passes for a fixed constraint."""

    def __init__(self, constraint: Expr):
        self._constraint = constraint
        self._forward: Dict[int, Optional[Interval]] = {}

    def contract(self, box: Box) -> bool:
        """Narrow ``box`` in place.

        Returns ``False`` when the constraint is proven unsatisfiable over
        the box (the box is left empty), ``True`` otherwise.
        """
        for _ in range(MAX_PASSES):
            self._forward = {}
            root = self._eval(self._constraint, box)
            if root is not None and root.definitely_false:
                _empty_out(box)
                return False
            changed = self._backward(self._constraint, BOOL_TRUE, box)
            if box.is_empty:
                return False
            if not changed:
                break
        return True

    # ------------------------------------------------------------------
    # Forward pass: compute an interval (or None for opaque) per node.
    # ------------------------------------------------------------------

    def _eval(self, node: Expr, box: Box) -> Optional[Interval]:
        key = id(node)
        if key in self._forward:
            return self._forward[key]
        result = self._eval_node(node, box)
        self._forward[key] = result
        return result

    def _eval_node(self, node: Expr, box: Box) -> Optional[Interval]:
        if isinstance(node, Const):
            if node.ty.is_array:
                return None
            return Interval.point(float(node.value))
        if isinstance(node, Var):
            return box.domain(node.name)
        if isinstance(node, Unary):
            arg = self._eval(node.arg, box)
            if arg is None:
                return Interval.top() if node.ty.is_numeric else BOOL_UNKNOWN
            return _forward_unary(node.op, arg)
        if isinstance(node, Binary):
            left = self._eval(node.left, box)
            right = self._eval(node.right, box)
            if left is None or right is None:
                return BOOL_UNKNOWN if node.ty.is_bool else Interval.top()
            return _forward_binary(node.op, left, right)
        if isinstance(node, Ite):
            cond = self._eval(node.cond, box)
            then = self._eval(node.then, box)
            orelse = self._eval(node.orelse, box)
            if cond is not None and cond.definitely_true:
                return then
            if cond is not None and cond.definitely_false:
                return orelse
            if then is None or orelse is None:
                return None
            return then.hull(orelse)
        if isinstance(node, Select):
            if isinstance(node.array, Const):
                values = node.array.value
                index = self._eval(node.index, box)
                if index is None or index.is_empty:
                    return None
                lo = max(0, int(index.lo))
                hi = min(len(values) - 1, int(index.hi))
                if lo > hi:
                    return Interval.empty()
                window = [float(v) for v in values[lo : hi + 1]]
                return Interval(min(window), max(window))
            return Interval.top() if node.ty.is_numeric else BOOL_UNKNOWN
        if isinstance(node, Store):
            return None
        return None

    # ------------------------------------------------------------------
    # Backward pass: push a required interval down toward the variables.
    # ------------------------------------------------------------------

    def _backward(self, node: Expr, req: Interval, box: Box) -> bool:
        if isinstance(node, Var):
            return box.narrow(node.name, req)
        if isinstance(node, Const):
            return False
        if isinstance(node, Unary):
            return self._backward_unary(node, req, box)
        if isinstance(node, Binary):
            if node.op in ast.BOOL_OPS:
                return self._backward_bool(node, req, box)
            if node.op in ast.REL_OPS:
                return self._backward_rel(node, req, box)
            return self._backward_arith(node, req, box)
        if isinstance(node, Ite):
            cond = self._fwd(node.cond)
            if cond is not None and cond.definitely_true:
                return self._backward(node.then, req, box)
            if cond is not None and cond.definitely_false:
                return self._backward(node.orelse, req, box)
            return False
        return False

    def _fwd(self, node: Expr) -> Optional[Interval]:
        return self._forward.get(id(node))

    def _backward_unary(self, node: Unary, req: Interval, box: Box) -> bool:
        op = node.op
        if op == ast.NEG:
            return self._backward(node.arg, -req, box)
        if op == ast.NOT:
            if req.definitely_true:
                return self._backward(node.arg, BOOL_FALSE, box)
            if req.definitely_false:
                return self._backward(node.arg, BOOL_TRUE, box)
            return False
        if op == ast.ABS:
            if req.hi < 0:
                _empty_out(box)
                return True
            return self._backward(node.arg, Interval(-req.hi, req.hi), box)
        if op in (ast.FLOOR, ast.CEIL, ast.TO_INT):
            return self._backward(node.arg, Interval(req.lo - 1.0, req.hi + 1.0), box)
        if op == ast.TO_REAL:
            return self._backward(node.arg, req, box)
        if op == ast.TO_BOOL:
            if req.definitely_false:
                return self._backward(node.arg, Interval.point(0.0), box)
            return False
        return False

    def _backward_bool(self, node: Binary, req: Interval, box: Box) -> bool:
        op = node.op
        left_fwd = self._fwd(node.left)
        right_fwd = self._fwd(node.right)
        changed = False
        if req.definitely_true:
            if op == ast.AND:
                changed |= self._backward(node.left, BOOL_TRUE, box)
                changed |= self._backward(node.right, BOOL_TRUE, box)
            elif op == ast.OR:
                if left_fwd is not None and left_fwd.definitely_false:
                    changed |= self._backward(node.right, BOOL_TRUE, box)
                elif right_fwd is not None and right_fwd.definitely_false:
                    changed |= self._backward(node.left, BOOL_TRUE, box)
            elif op == ast.IMPLIES:
                if left_fwd is not None and left_fwd.definitely_true:
                    changed |= self._backward(node.right, BOOL_TRUE, box)
        elif req.definitely_false:
            if op == ast.OR:
                changed |= self._backward(node.left, BOOL_FALSE, box)
                changed |= self._backward(node.right, BOOL_FALSE, box)
            elif op == ast.AND:
                if left_fwd is not None and left_fwd.definitely_true:
                    changed |= self._backward(node.right, BOOL_FALSE, box)
                elif right_fwd is not None and right_fwd.definitely_true:
                    changed |= self._backward(node.left, BOOL_FALSE, box)
            elif op == ast.IMPLIES:
                changed |= self._backward(node.left, BOOL_TRUE, box)
                changed |= self._backward(node.right, BOOL_FALSE, box)
        return changed

    def _backward_rel(self, node: Binary, req: Interval, box: Box) -> bool:
        op = node.op
        if req.definitely_false:
            op = ast.REL_NEGATION[op]
        elif not req.definitely_true:
            return False
        left = self._fwd(node.left)
        right = self._fwd(node.right)
        if left is None or right is None or left.is_empty or right.is_empty:
            return False
        # Strict inequalities over integer-typed operands tighten by one.
        strict_gap = (
            1.0
            if node.left.ty.is_int and node.right.ty.is_int
            and op in (ast.LT, ast.GT)
            else 0.0
        )
        changed = False
        if op in (ast.LT, ast.LE):
            changed |= self._backward(
                node.left, Interval(-_inf(), right.hi - strict_gap), box
            )
            changed |= self._backward(
                node.right, Interval(left.lo + strict_gap, _inf()), box
            )
        elif op in (ast.GT, ast.GE):
            changed |= self._backward(
                node.left, Interval(right.lo + strict_gap, _inf()), box
            )
            changed |= self._backward(
                node.right, Interval(-_inf(), left.hi - strict_gap), box
            )
        elif op == ast.EQ:
            meet = left.intersect(right)
            if meet.is_empty:
                _empty_out(box)
                return True
            changed |= self._backward(node.left, meet, box)
            changed |= self._backward(node.right, meet, box)
        elif op == ast.NE:
            if left.is_point and right.is_point and left.lo == right.lo:
                _empty_out(box)
                return True
        return changed

    def _backward_arith(self, node: Binary, req: Interval, box: Box) -> bool:
        op = node.op
        left = self._fwd(node.left)
        right = self._fwd(node.right)
        if left is None or right is None:
            return False
        changed = False
        if op == ast.ADD:
            changed |= self._backward(node.left, req - right, box)
            changed |= self._backward(node.right, req - left, box)
        elif op == ast.SUB:
            changed |= self._backward(node.left, req + right, box)
            changed |= self._backward(node.right, left - req, box)
        elif op == ast.MUL:
            if not right.contains(0.0):
                changed |= self._backward(node.left, req.divide(right), box)
            if not left.contains(0.0):
                changed |= self._backward(node.right, req.divide(left), box)
        elif op == ast.DIV:
            changed |= self._backward(node.left, req * right, box)
            if not req.contains(0.0):
                changed |= self._backward(node.right, left.divide(req), box)
        elif op == ast.MIN:
            left_req = Interval(req.lo, _inf())
            right_req = Interval(req.lo, _inf())
            if right.lo > req.hi:
                left_req = req
            if left.lo > req.hi:
                right_req = req
            changed |= self._backward(node.left, left_req, box)
            changed |= self._backward(node.right, right_req, box)
        elif op == ast.MAX:
            left_req = Interval(-_inf(), req.hi)
            right_req = Interval(-_inf(), req.hi)
            if right.hi < req.lo:
                left_req = req
            if left.hi < req.lo:
                right_req = req
            changed |= self._backward(node.left, left_req, box)
            changed |= self._backward(node.right, right_req, box)
        # IDIV / MOD: no backward contraction (forward bounds only).
        return changed


def _forward_unary(op: str, arg: Interval) -> Interval:
    if op == ast.NEG:
        return -arg
    if op == ast.NOT:
        if arg.definitely_true:
            return BOOL_FALSE
        if arg.definitely_false:
            return BOOL_TRUE
        return BOOL_UNKNOWN
    if op == ast.ABS:
        return arg.absolute()
    if op == ast.FLOOR:
        return arg.floor()
    if op == ast.CEIL:
        return arg.ceil()
    if op == ast.TO_INT:
        return arg.trunc()
    if op == ast.TO_REAL:
        return arg
    if op == ast.TO_BOOL:
        if arg.is_point and arg.lo == 0.0:
            return BOOL_FALSE
        if not arg.contains(0.0):
            return BOOL_TRUE
        return BOOL_UNKNOWN
    return Interval.top()


def _forward_binary(op: str, left: Interval, right: Interval) -> Interval:
    if left.is_empty or right.is_empty:
        return Interval.empty()
    if op == ast.ADD:
        return left + right
    if op == ast.SUB:
        return left - right
    if op == ast.MUL:
        return left * right
    if op == ast.DIV:
        return left.divide(right)
    if op == ast.IDIV:
        return left.divide(right).trunc()
    if op == ast.MOD:
        bound = max(abs(right.lo), abs(right.hi))
        return Interval(-bound, bound)
    if op == ast.MIN:
        return left.minimum(right)
    if op == ast.MAX:
        return left.maximum(right)
    if op == ast.LT:
        if left.hi < right.lo:
            return BOOL_TRUE
        if left.lo >= right.hi:
            return BOOL_FALSE
        return BOOL_UNKNOWN
    if op == ast.LE:
        if left.hi <= right.lo:
            return BOOL_TRUE
        if left.lo > right.hi:
            return BOOL_FALSE
        return BOOL_UNKNOWN
    if op == ast.GT:
        if left.lo > right.hi:
            return BOOL_TRUE
        if left.hi <= right.lo:
            return BOOL_FALSE
        return BOOL_UNKNOWN
    if op == ast.GE:
        if left.lo >= right.hi:
            return BOOL_TRUE
        if left.hi < right.lo:
            return BOOL_FALSE
        return BOOL_UNKNOWN
    if op == ast.EQ:
        if left.is_point and right.is_point and left.lo == right.lo:
            return BOOL_TRUE
        if left.intersect(right).is_empty:
            return BOOL_FALSE
        return BOOL_UNKNOWN
    if op == ast.NE:
        if left.is_point and right.is_point and left.lo == right.lo:
            return BOOL_FALSE
        if left.intersect(right).is_empty:
            return BOOL_TRUE
        return BOOL_UNKNOWN
    if op == ast.AND:
        if left.definitely_false or right.definitely_false:
            return BOOL_FALSE
        if left.definitely_true and right.definitely_true:
            return BOOL_TRUE
        return BOOL_UNKNOWN
    if op == ast.OR:
        if left.definitely_true or right.definitely_true:
            return BOOL_TRUE
        if left.definitely_false and right.definitely_false:
            return BOOL_FALSE
        return BOOL_UNKNOWN
    if op == ast.XOR:
        if left.is_point and right.is_point:
            return BOOL_TRUE if (left.lo > 0) != (right.lo > 0) else BOOL_FALSE
        return BOOL_UNKNOWN
    if op == ast.IMPLIES:
        if left.definitely_false or right.definitely_true:
            return BOOL_TRUE
        if left.definitely_true and right.definitely_false:
            return BOOL_FALSE
        return BOOL_UNKNOWN
    return Interval.top()


def _empty_out(box: Box) -> None:
    """Mark the box empty by emptying one domain (used for proven conflicts)."""
    for name, _ in box:
        box.narrow(name, Interval.empty())
        break


def _inf() -> float:
    return float("inf")
