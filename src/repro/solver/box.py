"""Variable boxes: per-variable interval domains used by the contractor."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.expr.ast import Var
from repro.expr.types import BOOL, INT
from repro.solver.interval import Interval

#: Fallback domain for variables that declare no bounds.
DEFAULT_LO = -1.0e9
DEFAULT_HI = 1.0e9


class Box:
    """A mapping from variable name to interval, tracking the variable types.

    The box starts from each variable's declared ``lo``/``hi`` bounds (or a
    wide default) and is narrowed by contraction.  Booleans are clamped to
    ``[0, 1]`` and integers to whole numbers.
    """

    def __init__(self, variables: Iterable[Var]):
        self._vars: Dict[str, Var] = {}
        self._domains: Dict[str, Interval] = {}
        for var in variables:
            if var.name in self._vars:
                continue
            if not var.ty.is_scalar:
                raise ValueError(
                    f"solver box requires scalar variables, got {var.name!r}: {var.ty!r}"
                )
            self._vars[var.name] = var
            self._domains[var.name] = _initial_domain(var)

    # -- queries --------------------------------------------------------------

    @property
    def variables(self) -> Mapping[str, Var]:
        return self._vars

    def domain(self, name: str) -> Interval:
        return self._domains[name]

    def var(self, name: str) -> Var:
        return self._vars[name]

    @property
    def is_empty(self) -> bool:
        return any(domain.is_empty for domain in self._domains.values())

    def snapshot(self) -> Dict[str, Interval]:
        return dict(self._domains)

    def restore(self, snapshot: Mapping[str, Interval]) -> None:
        """Replace every domain with a previously captured snapshot.

        Intervals are immutable, so replaying a snapshot reproduces the
        exact box state (the solver kernel uses this to reuse a cached
        contraction result, which is a pure function of the constraint
        and the initial domains).
        """
        self._domains = dict(snapshot)

    def __iter__(self):
        return iter(self._domains.items())

    def __len__(self) -> int:
        return len(self._domains)

    # -- updates ----------------------------------------------------------------

    def narrow(self, name: str, interval: Interval) -> bool:
        """Intersect a variable's domain; returns True if it changed."""
        var = self._vars[name]
        current = self._domains[name]
        refined = current.intersect(interval)
        if var.ty is INT or var.ty is BOOL:
            refined = refined.round_to_int()
        if refined == current:
            return False
        self._domains[name] = refined
        return True

    def total_width(self) -> float:
        return sum(d.width for d in self._domains.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._domains.items()))
        return f"Box({inner})"


def _initial_domain(var: Var) -> Interval:
    if var.ty is BOOL:
        return Interval(0.0, 1.0)
    lo = DEFAULT_LO if var.lo is None else float(var.lo)
    hi = DEFAULT_HI if var.hi is None else float(var.hi)
    interval = Interval(lo, hi)
    if var.ty is INT:
        interval = interval.round_to_int()
    return interval
