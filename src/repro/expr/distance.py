"""Branch-distance fitness for search-based constraint solving.

Implements the classic Korel/Tracey objective: for a boolean constraint and a
candidate input, return 0.0 when the constraint is satisfied and otherwise a
positive value that shrinks monotonically as the candidate approaches
satisfaction.  The AVM search in :mod:`repro.solver.avm` minimizes this.

Distances for atoms (K is a small positive offset so that "just violated"
still costs something):

=============  =======================================
``a < b``      ``a - b + K`` when violated
``a <= b``     ``a - b`` when violated (plus K if equal impossible)
``a == b``     ``|a - b|``
``a != b``     ``K`` when violated
AND            sum of operand distances
OR             minimum of operand distances
=============  =======================================
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.expr import ast
from repro.expr.ast import Binary, Const, Expr
from repro.expr.evaluator import Evaluator
from repro.expr.nnf import to_nnf

#: Offset added to strict-inequality / disequality distances.
K = 1.0

#: Distance assigned when evaluation of an operand fails outright.
FAILURE_DISTANCE = 1e12


def normalize(distance: float) -> float:
    """Map a raw distance into [0, 1) monotonically (Arcuri's x/(x+1))."""
    if distance <= 0.0:
        return 0.0
    return distance / (distance + 1.0)


def branch_distance(constraint: Expr, env: Mapping[str, object]) -> float:
    """Distance of ``env`` from satisfying ``constraint`` (0.0 iff satisfied).

    ``constraint`` is converted to NNF once per call; callers that evaluate
    the same constraint many times should pre-convert with
    :func:`repro.expr.nnf.to_nnf` and use :class:`DistanceEvaluator`.
    """
    return DistanceEvaluator(to_nnf(constraint)).distance(env)


class DistanceEvaluator:
    """Reusable branch-distance evaluator for a fixed NNF constraint."""

    def __init__(self, nnf_constraint: Expr):
        self._constraint = nnf_constraint

    @property
    def constraint(self) -> Expr:
        return self._constraint

    def distance(self, env: Mapping[str, object]) -> float:
        evaluator = Evaluator(env)
        return self._distance(self._constraint, evaluator)

    def _distance(self, expr: Expr, evaluator: Evaluator) -> float:
        if isinstance(expr, Const):
            return 0.0 if expr.value else FAILURE_DISTANCE
        if isinstance(expr, Binary):
            op = expr.op
            if op == ast.AND:
                left = self._distance(expr.left, evaluator)
                right = self._distance(expr.right, evaluator)
                return left + right
            if op == ast.OR:
                left = self._distance(expr.left, evaluator)
                right = self._distance(expr.right, evaluator)
                return min(left, right)
            if op in ast.REL_OPS:
                return self._atom_distance(expr, evaluator)
        # Opaque atom (boolean var, !var, to_bool, select, xor left intact...)
        try:
            value = evaluator.evaluate(expr)
        except Exception:
            return FAILURE_DISTANCE
        return 0.0 if value else K

    def _atom_distance(self, expr: Binary, evaluator: Evaluator) -> float:
        try:
            a = evaluator.evaluate(expr.left)
            b = evaluator.evaluate(expr.right)
        except Exception:
            return FAILURE_DISTANCE
        op = expr.op
        if isinstance(a, bool) or isinstance(b, bool):
            a = float(bool(a))
            b = float(bool(b))
        if not (_finite(a) and _finite(b)):
            return FAILURE_DISTANCE
        if op == ast.LT:
            return 0.0 if a < b else normalize_raw(a - b + K)
        if op == ast.LE:
            return 0.0 if a <= b else normalize_raw(a - b)
        if op == ast.GT:
            return 0.0 if a > b else normalize_raw(b - a + K)
        if op == ast.GE:
            return 0.0 if a >= b else normalize_raw(b - a)
        if op == ast.EQ:
            return 0.0 if a == b else normalize_raw(abs(a - b))
        if op == ast.NE:
            return 0.0 if a != b else K
        return FAILURE_DISTANCE


def normalize_raw(distance: float) -> float:
    """Clamp a raw violated-atom distance to at least a small epsilon."""
    return max(float(distance), 1e-9)


def _finite(x) -> bool:
    try:
        return math.isfinite(float(x))
    except (TypeError, ValueError):
        return False
