"""Variable collection and substitution over expression DAGs."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.expr.ast import Binary, Const, Expr, Ite, Select, Store, Unary, Var
from repro.expr import ops


def free_variables(expr: Expr) -> Dict[str, Var]:
    """Return the free variables of ``expr`` as ``name -> Var`` (sorted keys)."""
    found: Dict[str, Var] = {}
    for node in expr.walk():
        if isinstance(node, Var) and node.name not in found:
            found[node.name] = node
    return dict(sorted(found.items()))


def free_variables_of(exprs: Iterable[Expr]) -> Dict[str, Var]:
    """Union of :func:`free_variables` over several expressions."""
    found: Dict[str, Var] = {}
    for expr in exprs:
        for name, var in free_variables(expr).items():
            found.setdefault(name, var)
    return dict(sorted(found.items()))


def substitute(expr: Expr, bindings: Mapping[str, Expr]) -> Expr:
    """Replace variables by expressions, rebuilding through smart constructors.

    Constant bindings therefore fold through the whole tree, which is how the
    solver specializes a one-step encoding to a concrete state snapshot.
    """
    memo: Dict[int, Expr] = {}

    def visit(node: Expr) -> Expr:
        key = id(node)
        if key in memo:
            return memo[key]
        result = _rebuild(node, visit, bindings)
        memo[key] = result
        return result

    return visit(expr)


def _rebuild(node: Expr, visit, bindings: Mapping[str, Expr]) -> Expr:
    if isinstance(node, Var):
        return bindings.get(node.name, node)
    if isinstance(node, Const):
        return node
    if isinstance(node, Unary):
        arg = visit(node.arg)
        if arg is node.arg:
            return node
        return _unary(node.op, arg)
    if isinstance(node, Binary):
        left = visit(node.left)
        right = visit(node.right)
        if left is node.left and right is node.right:
            return node
        return _binary(node.op, left, right)
    if isinstance(node, Ite):
        cond = visit(node.cond)
        then = visit(node.then)
        orelse = visit(node.orelse)
        if cond is node.cond and then is node.then and orelse is node.orelse:
            return node
        return ops.ite(cond, then, orelse)
    if isinstance(node, Select):
        array = visit(node.array)
        index = visit(node.index)
        if array is node.array and index is node.index:
            return node
        return ops.select(array, index)
    if isinstance(node, Store):
        array = visit(node.array)
        index = visit(node.index)
        value = visit(node.value)
        if array is node.array and index is node.index and value is node.value:
            return node
        return ops.store(array, index, value)
    return node


_UNARY_BUILDERS = {
    "neg": ops.neg,
    "not": ops.lnot,
    "abs": ops.absolute,
    "floor": ops.floor,
    "ceil": ops.ceil,
    "to_int": ops.to_int,
    "to_real": ops.to_real,
    "to_bool": ops.to_bool,
}

_BINARY_BUILDERS = {
    "add": ops.add,
    "sub": ops.sub,
    "mul": ops.mul,
    "div": ops.div,
    "idiv": ops.idiv,
    "mod": ops.mod,
    "min": ops.minimum,
    "max": ops.maximum,
    "lt": ops.lt,
    "le": ops.le,
    "gt": ops.gt,
    "ge": ops.ge,
    "eq": ops.eq,
    "ne": ops.ne,
    "and": ops.land,
    "or": ops.lor,
    "xor": ops.lxor,
    "implies": ops.implies,
}


def _unary(op: str, arg: Expr) -> Expr:
    return _UNARY_BUILDERS[op](arg)


def _binary(op: str, left: Expr, right: Expr) -> Expr:
    return _BINARY_BUILDERS[op](left, right)


def node_count(expr: Expr) -> int:
    """Number of nodes in the expression tree (DAG nodes counted once)."""
    seen = set()
    for node in expr.walk():
        seen.add(id(node))
    return len(seen)
