"""Concrete operator semantics shared by constant folding and evaluation.

All functions take canonical Python values (bool/int/float/tuple) and return
canonical values.  Integer division and modulo use C semantics (truncation
toward zero, remainder takes the dividend's sign) because that is what
generated embedded code — the target of the Simulink models we mimic — does.
"""

from __future__ import annotations

import math

from repro.errors import EvalError
from repro.expr import ast


def c_idiv(a: int, b: int) -> int:
    """Integer division truncating toward zero (C semantics).

    Division by zero yields 0, mirroring the guarded division idiom of the
    generated embedded code these expressions model (keeps every operator
    total, which the search-based solver relies on).
    """
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a: int, b: int) -> int:
    """Remainder with the sign of the dividend (C semantics); ``x % 0 == 0``."""
    if b == 0:
        return 0
    return a - c_idiv(a, b) * b


def real_div(a: float, b: float) -> float:
    """Real division; division by zero saturates like Simulink's Inf."""
    if b == 0:
        if a == 0:
            return 0.0
        return math.inf if a > 0 else -math.inf
    return a / b


def apply_unary(op: str, value):
    """Apply a unary operator to a concrete value."""
    if op == ast.NEG:
        return -value
    if op == ast.NOT:
        return not value
    if op == ast.ABS:
        return abs(value)
    if op == ast.FLOOR:
        return math.floor(value)
    if op == ast.CEIL:
        return math.ceil(value)
    if op == ast.TO_INT:
        return int(value)  # truncation toward zero
    if op == ast.TO_REAL:
        return float(value)
    if op == ast.TO_BOOL:
        return bool(value)
    raise EvalError(f"unknown unary operator {op!r}")


def apply_binary(op: str, a, b):
    """Apply a binary operator to concrete values."""
    if op == ast.ADD:
        return a + b
    if op == ast.SUB:
        return a - b
    if op == ast.MUL:
        return a * b
    if op == ast.DIV:
        return real_div(float(a), float(b))
    if op == ast.IDIV:
        return c_idiv(int(a), int(b))
    if op == ast.MOD:
        return c_mod(int(a), int(b))
    if op == ast.MIN:
        return min(a, b)
    if op == ast.MAX:
        return max(a, b)
    if op == ast.LT:
        return a < b
    if op == ast.LE:
        return a <= b
    if op == ast.GT:
        return a > b
    if op == ast.GE:
        return a >= b
    if op == ast.EQ:
        return a == b
    if op == ast.NE:
        return a != b
    if op == ast.AND:
        return bool(a) and bool(b)
    if op == ast.OR:
        return bool(a) or bool(b)
    if op == ast.XOR:
        return bool(a) != bool(b)
    if op == ast.IMPLIES:
        return (not a) or bool(b)
    raise EvalError(f"unknown binary operator {op!r}")
