"""Human-readable rendering of expressions (round-trips with the DSL parser)."""

from __future__ import annotations

from repro.expr import ast
from repro.expr.ast import Binary, Const, Expr, Ite, Select, Store, Unary, Var

_BINARY_SYMBOL = {
    ast.ADD: "+",
    ast.SUB: "-",
    ast.MUL: "*",
    ast.DIV: "/",
    ast.IDIV: "//",
    ast.MOD: "%",
    ast.LT: "<",
    ast.LE: "<=",
    ast.GT: ">",
    ast.GE: ">=",
    ast.EQ: "==",
    ast.NE: "!=",
    ast.AND: "&&",
    ast.OR: "||",
    ast.XOR: "^",
    ast.IMPLIES: "=>",
}

_FUNC_STYLE = {ast.MIN: "min", ast.MAX: "max"}

# Larger number binds tighter.
_PRECEDENCE = {
    ast.OR: 1,
    ast.IMPLIES: 1,
    ast.AND: 2,
    ast.XOR: 2,
    ast.EQ: 3,
    ast.NE: 3,
    ast.LT: 4,
    ast.LE: 4,
    ast.GT: 4,
    ast.GE: 4,
    ast.ADD: 5,
    ast.SUB: 5,
    ast.MUL: 6,
    ast.DIV: 6,
    ast.IDIV: 6,
    ast.MOD: 6,
}


def to_string(expr: Expr) -> str:
    """Render ``expr`` in the DSL's infix syntax."""
    return _render(expr, 0)


def _render(expr: Expr, parent_prec: int) -> str:
    if isinstance(expr, Const):
        return _render_const(expr)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Unary):
        return _render_unary(expr)
    if isinstance(expr, Binary):
        if expr.op in _FUNC_STYLE:
            name = _FUNC_STYLE[expr.op]
            return f"{name}({_render(expr.left, 0)}, {_render(expr.right, 0)})"
        prec = _PRECEDENCE[expr.op]
        symbol = _BINARY_SYMBOL[expr.op]
        text = f"{_render(expr.left, prec)} {symbol} {_render(expr.right, prec + 1)}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, Ite):
        text = (
            f"ite({_render(expr.cond, 0)}, {_render(expr.then, 0)}, "
            f"{_render(expr.orelse, 0)})"
        )
        return text
    if isinstance(expr, Select):
        return f"{_render(expr.array, 9)}[{_render(expr.index, 0)}]"
    if isinstance(expr, Store):
        return (
            f"store({_render(expr.array, 0)}, {_render(expr.index, 0)}, "
            f"{_render(expr.value, 0)})"
        )
    return f"<{type(expr).__name__}>"


def _render_const(expr: Const) -> str:
    value = expr.value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, tuple):
        return "[" + ", ".join(str(v) for v in value) + "]"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return str(value)


def _render_unary(expr: Unary) -> str:
    inner = _render(expr.arg, 8)
    if expr.op == ast.NEG:
        return f"-{inner}"
    if expr.op == ast.NOT:
        return f"!{inner}"
    return f"{expr.op}({_render(expr.arg, 0)})"
