"""Concrete evaluation of expressions under a variable environment."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import EvalError
from repro.expr import ast, semantics
from repro.expr.ast import Binary, Const, Expr, Ite, Select, Store, Unary, Var
from repro.expr.types import coerce_value


class Evaluator:
    """Evaluates expressions under an environment of variable values.

    Results are memoized per node identity, so shared sub-DAGs are evaluated
    once.  Boolean connectives and ITE are evaluated lazily: the unselected
    branch of an ITE is never computed, which mirrors the behaviour of the
    generated code the expressions model (no spurious division-by-zero).
    """

    def __init__(self, env: Mapping[str, object]):
        self._env = env
        self._memo: Dict[int, object] = {}

    def evaluate(self, expr: Expr):
        memo = self._memo
        key = id(expr)
        if key in memo:
            return memo[key]
        value = self._compute(expr)
        memo[key] = value
        return value

    def _compute(self, expr: Expr):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            try:
                raw = self._env[expr.name]
            except KeyError:
                raise EvalError(f"no value for variable {expr.name!r}") from None
            return coerce_value(raw, expr.ty)
        if isinstance(expr, Unary):
            return coerce_value(
                semantics.apply_unary(expr.op, self.evaluate(expr.arg)), expr.ty
            )
        if isinstance(expr, Binary):
            op = expr.op
            if op == ast.AND:
                if not self.evaluate(expr.left):
                    return False
                return bool(self.evaluate(expr.right))
            if op == ast.OR:
                if self.evaluate(expr.left):
                    return True
                return bool(self.evaluate(expr.right))
            if op == ast.IMPLIES:
                if not self.evaluate(expr.left):
                    return True
                return bool(self.evaluate(expr.right))
            value = semantics.apply_binary(
                op, self.evaluate(expr.left), self.evaluate(expr.right)
            )
            return coerce_value(value, expr.ty)
        if isinstance(expr, Ite):
            if self.evaluate(expr.cond):
                return coerce_value(self.evaluate(expr.then), expr.ty)
            return coerce_value(self.evaluate(expr.orelse), expr.ty)
        if isinstance(expr, Select):
            array = self.evaluate(expr.array)
            index = int(self.evaluate(expr.index))
            if not 0 <= index < len(array):
                raise EvalError(
                    f"array index {index} out of range 0..{len(array) - 1}"
                )
            return array[index]
        if isinstance(expr, Store):
            array = list(self.evaluate(expr.array))
            index = int(self.evaluate(expr.index))
            if not 0 <= index < len(array):
                raise EvalError(
                    f"array index {index} out of range 0..{len(array) - 1}"
                )
            array[index] = self.evaluate(expr.value)
            return tuple(array)
        raise EvalError(f"cannot evaluate node type {type(expr).__name__}")


def evaluate(expr: Expr, env: Mapping[str, object]):
    """Evaluate ``expr`` under ``env`` (variable name -> concrete value)."""
    return Evaluator(env).evaluate(expr)
