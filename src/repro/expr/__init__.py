"""Typed expression IR shared by the symbolic simulator and the solver.

Public surface:

* node classes and operator tags — :mod:`repro.expr.ast`
* smart constructors — :mod:`repro.expr.ops`
* types — :mod:`repro.expr.types`
* :func:`evaluate` — concrete evaluation under an environment
* :func:`parse_expr` — the guard/action text DSL
* :func:`to_string` — printer
* :func:`to_nnf`, :func:`branch_distance` — solver support
* :func:`free_variables`, :func:`substitute` — DAG utilities
"""

from repro.expr.ast import (
    Binary,
    Const,
    Expr,
    FALSE,
    Ite,
    Select,
    Store,
    TRUE,
    Unary,
    Var,
)
from repro.expr.distance import DistanceEvaluator, branch_distance
from repro.expr.evaluator import evaluate
from repro.expr.nnf import to_nnf
from repro.expr.parser import parse_expr
from repro.expr.printer import to_string
from repro.expr.types import ArrayType, BOOL, INT, REAL, Type, type_of_value
from repro.expr.variables import free_variables, free_variables_of, node_count, substitute

__all__ = [
    "ArrayType",
    "BOOL",
    "Binary",
    "Const",
    "DistanceEvaluator",
    "Expr",
    "FALSE",
    "INT",
    "Ite",
    "REAL",
    "Select",
    "Store",
    "TRUE",
    "Type",
    "Unary",
    "Var",
    "branch_distance",
    "evaluate",
    "free_variables",
    "free_variables_of",
    "node_count",
    "parse_expr",
    "substitute",
    "to_nnf",
    "to_string",
    "type_of_value",
]
