"""Scalar and array types for the expression IR.

The type system is intentionally small: booleans, integers, reals and
fixed-length arrays of scalars.  It matches what the Simulink-like block
library needs (``boolean``, ``int32``-ish integers, ``double`` reals and data
store arrays) without modelling bit widths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExprTypeError


class Type:
    """Base class for expression types.

    Concrete types are the singletons :data:`BOOL`, :data:`INT`, :data:`REAL`
    and instances of :class:`ArrayType`.
    """

    __slots__ = ()

    @property
    def is_bool(self) -> bool:
        return self is BOOL

    @property
    def is_int(self) -> bool:
        return self is INT

    @property
    def is_real(self) -> bool:
        return self is REAL

    @property
    def is_numeric(self) -> bool:
        return self is INT or self is REAL

    @property
    def is_scalar(self) -> bool:
        return not isinstance(self, ArrayType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)


class _ScalarType(Type):
    """A named scalar type singleton."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


BOOL = _ScalarType("bool")
INT = _ScalarType("int")
REAL = _ScalarType("real")


@dataclass(frozen=True)
class ArrayType(Type):
    """A fixed-length array of a scalar element type."""

    elem: Type
    length: int

    def __post_init__(self):
        if not self.elem.is_scalar:
            raise ExprTypeError("array element type must be scalar")
        if self.length <= 0:
            raise ExprTypeError(f"array length must be positive, got {self.length}")

    def __repr__(self) -> str:
        return f"{self.elem!r}[{self.length}]"


def join_numeric(a: Type, b: Type) -> Type:
    """Return the wider of two numeric types (int ∨ real = real)."""
    if not (a.is_numeric and b.is_numeric):
        raise ExprTypeError(f"expected numeric types, got {a!r} and {b!r}")
    if a.is_real or b.is_real:
        return REAL
    return INT


def type_of_value(value) -> Type:
    """Infer the IR type of a concrete Python value."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return REAL
    if isinstance(value, tuple):
        if not value:
            raise ExprTypeError("cannot type an empty array value")
        elem = type_of_value(value[0])
        return ArrayType(elem, len(value))
    raise ExprTypeError(f"unsupported constant value: {value!r}")


def coerce_value(value, ty: Type):
    """Coerce a concrete Python value to the canonical form for ``ty``.

    Booleans become :class:`bool`, integers :class:`int`, reals
    :class:`float` and arrays tuples of coerced elements.
    """
    if ty.is_bool:
        return bool(value)
    if ty.is_int:
        return int(value)
    if ty.is_real:
        return float(value)
    if ty.is_array:
        assert isinstance(ty, ArrayType)
        seq = tuple(value)
        if len(seq) != ty.length:
            raise ExprTypeError(
                f"array value of length {len(seq)} does not match type {ty!r}"
            )
        return tuple(coerce_value(v, ty.elem) for v in seq)
    raise ExprTypeError(f"cannot coerce to type {ty!r}")
