"""Smart constructors for expression nodes.

These are the public way to build expressions.  They:

* accept plain Python values wherever an expression is expected,
* type-check operands,
* fold constants eagerly, so that a symbolic simulation in which every
  operand happens to be concrete produces a :class:`~repro.expr.ast.Const`
  rather than a tree, and
* apply a handful of cheap local simplifications (identities, ITE with a
  constant condition) to keep one-step encodings small.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ExprTypeError
from repro.expr import ast, semantics
from repro.expr.ast import Binary, Const, Expr, Ite, Select, Store, Unary

# Re-exported: callers treat this module as the expression-building facade
# and reach the canonical constants through it (``ops.TRUE`` / ``ops.FALSE``).
from repro.expr.ast import FALSE as FALSE, TRUE as TRUE
from repro.expr.types import ArrayType, BOOL, INT, REAL, Type, join_numeric

ExprLike = Union[Expr, bool, int, float, tuple]


def lift(value: ExprLike) -> Expr:
    """Return ``value`` as an expression, wrapping plain values in Const."""
    if isinstance(value, Expr):
        return value
    return Const(value)


def _lift2(a: ExprLike, b: ExprLike):
    return lift(a), lift(b)


def _require_numeric(e: Expr, what: str) -> None:
    if not e.ty.is_numeric:
        raise ExprTypeError(f"{what} requires a numeric operand, got {e.ty!r}")


def _require_bool(e: Expr, what: str) -> None:
    if not e.ty.is_bool:
        raise ExprTypeError(f"{what} requires a boolean operand, got {e.ty!r}")


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def _arith(op: str, a: ExprLike, b: ExprLike) -> Expr:
    ea, eb = _lift2(a, b)
    _require_numeric(ea, op)
    _require_numeric(eb, op)
    ty = join_numeric(ea.ty, eb.ty)
    if op in (ast.DIV,):
        ty = REAL
    if op in (ast.IDIV, ast.MOD):
        ty = INT
    if ea.is_const and eb.is_const:
        value = semantics.apply_binary(op, ea.const_value(), eb.const_value())
        return Const(value, ty)
    return Binary(op, ea, eb, ty)


def add(a: ExprLike, b: ExprLike) -> Expr:
    ea, eb = _lift2(a, b)
    if ea.is_const and ea.const_value() == 0 and eb.ty.is_numeric:
        return eb
    if eb.is_const and eb.const_value() == 0 and ea.ty.is_numeric:
        return ea
    return _arith(ast.ADD, ea, eb)


def sub(a: ExprLike, b: ExprLike) -> Expr:
    ea, eb = _lift2(a, b)
    if eb.is_const and eb.const_value() == 0 and ea.ty.is_numeric:
        return ea
    return _arith(ast.SUB, ea, eb)


def mul(a: ExprLike, b: ExprLike) -> Expr:
    ea, eb = _lift2(a, b)
    for x, y in ((ea, eb), (eb, ea)):
        if x.is_const and x.ty.is_numeric:
            if x.const_value() == 1:
                return y
            if x.const_value() == 0 and y.ty.is_numeric:
                return Const(0, join_numeric(x.ty, y.ty))
    return _arith(ast.MUL, ea, eb)


def div(a: ExprLike, b: ExprLike) -> Expr:
    """Real division (result type REAL)."""
    return _arith(ast.DIV, a, b)


def idiv(a: ExprLike, b: ExprLike) -> Expr:
    """Integer division truncating toward zero (C semantics)."""
    return _arith(ast.IDIV, a, b)


def mod(a: ExprLike, b: ExprLike) -> Expr:
    """Remainder with the dividend's sign (C semantics)."""
    return _arith(ast.MOD, a, b)


def minimum(a: ExprLike, b: ExprLike) -> Expr:
    return _arith(ast.MIN, a, b)


def maximum(a: ExprLike, b: ExprLike) -> Expr:
    return _arith(ast.MAX, a, b)


def neg(a: ExprLike) -> Expr:
    ea = lift(a)
    _require_numeric(ea, "neg")
    if ea.is_const:
        return Const(-ea.const_value(), ea.ty)
    if isinstance(ea, Unary) and ea.op == ast.NEG:
        return ea.arg
    return Unary(ast.NEG, ea, ea.ty)


def absolute(a: ExprLike) -> Expr:
    ea = lift(a)
    _require_numeric(ea, "abs")
    if ea.is_const:
        return Const(abs(ea.const_value()), ea.ty)
    return Unary(ast.ABS, ea, ea.ty)


def floor(a: ExprLike) -> Expr:
    ea = lift(a)
    _require_numeric(ea, "floor")
    if ea.is_const:
        return Const(semantics.apply_unary(ast.FLOOR, ea.const_value()), INT)
    if ea.ty.is_int:
        return ea
    return Unary(ast.FLOOR, ea, INT)


def ceil(a: ExprLike) -> Expr:
    ea = lift(a)
    _require_numeric(ea, "ceil")
    if ea.is_const:
        return Const(semantics.apply_unary(ast.CEIL, ea.const_value()), INT)
    if ea.ty.is_int:
        return ea
    return Unary(ast.CEIL, ea, INT)


def saturate(value: ExprLike, lo: ExprLike, hi: ExprLike) -> Expr:
    """Clamp ``value`` into ``[lo, hi]`` (Simulink Saturation semantics)."""
    return minimum(maximum(value, lo), hi)


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------


def to_int(a: ExprLike) -> Expr:
    """C-style cast to integer (truncation toward zero)."""
    ea = lift(a)
    if ea.ty.is_int:
        return ea
    if ea.is_const:
        return Const(int(ea.const_value()), INT)
    return Unary(ast.TO_INT, ea, INT)


def to_real(a: ExprLike) -> Expr:
    ea = lift(a)
    if ea.ty.is_real:
        return ea
    if ea.is_const:
        return Const(float(ea.const_value()), REAL)
    return Unary(ast.TO_REAL, ea, REAL)


def to_bool(a: ExprLike) -> Expr:
    """Nonzero test, the Simulink boolean conversion."""
    ea = lift(a)
    if ea.ty.is_bool:
        return ea
    if ea.is_const:
        return Const(bool(ea.const_value()), BOOL)
    return Unary(ast.TO_BOOL, ea, BOOL)


# ---------------------------------------------------------------------------
# Relational
# ---------------------------------------------------------------------------


def _relational(op: str, a: ExprLike, b: ExprLike) -> Expr:
    ea, eb = _lift2(a, b)
    if op in (ast.EQ, ast.NE) and ea.ty.is_bool and eb.ty.is_bool:
        pass  # boolean (in)equality is fine
    else:
        _require_numeric(ea, op)
        _require_numeric(eb, op)
    if ea.is_const and eb.is_const:
        return Const(
            semantics.apply_binary(op, ea.const_value(), eb.const_value()), BOOL
        )
    if ea == eb:
        if op in (ast.LE, ast.GE, ast.EQ):
            return ast.TRUE
        if op in (ast.LT, ast.GT, ast.NE):
            return ast.FALSE
    return Binary(op, ea, eb, BOOL)


def lt(a: ExprLike, b: ExprLike) -> Expr:
    return _relational(ast.LT, a, b)


def le(a: ExprLike, b: ExprLike) -> Expr:
    return _relational(ast.LE, a, b)


def gt(a: ExprLike, b: ExprLike) -> Expr:
    return _relational(ast.GT, a, b)


def ge(a: ExprLike, b: ExprLike) -> Expr:
    return _relational(ast.GE, a, b)


def eq(a: ExprLike, b: ExprLike) -> Expr:
    return _relational(ast.EQ, a, b)


def ne(a: ExprLike, b: ExprLike) -> Expr:
    return _relational(ast.NE, a, b)


# ---------------------------------------------------------------------------
# Boolean
# ---------------------------------------------------------------------------


def land(a: ExprLike, b: ExprLike) -> Expr:
    ea, eb = _lift2(a, b)
    _require_bool(ea, "and")
    _require_bool(eb, "and")
    if ea.is_const:
        return eb if ea.const_value() else ast.FALSE
    if eb.is_const:
        return ea if eb.const_value() else ast.FALSE
    if ea == eb:
        return ea
    return Binary(ast.AND, ea, eb, BOOL)


def lor(a: ExprLike, b: ExprLike) -> Expr:
    ea, eb = _lift2(a, b)
    _require_bool(ea, "or")
    _require_bool(eb, "or")
    if ea.is_const:
        return ast.TRUE if ea.const_value() else eb
    if eb.is_const:
        return ast.TRUE if eb.const_value() else ea
    if ea == eb:
        return ea
    return Binary(ast.OR, ea, eb, BOOL)


def lxor(a: ExprLike, b: ExprLike) -> Expr:
    ea, eb = _lift2(a, b)
    _require_bool(ea, "xor")
    _require_bool(eb, "xor")
    if ea.is_const and eb.is_const:
        return Const(ea.const_value() != eb.const_value(), BOOL)
    return Binary(ast.XOR, ea, eb, BOOL)


def lnot(a: ExprLike) -> Expr:
    ea = lift(a)
    _require_bool(ea, "not")
    if ea.is_const:
        return Const(not ea.const_value(), BOOL)
    if isinstance(ea, Unary) and ea.op == ast.NOT:
        return ea.arg
    if isinstance(ea, Binary) and ea.op in ast.REL_OPS:
        return Binary(ast.REL_NEGATION[ea.op], ea.left, ea.right, BOOL)
    return Unary(ast.NOT, ea, BOOL)


def implies(a: ExprLike, b: ExprLike) -> Expr:
    return lor(lnot(a), b)


def conjoin(terms) -> Expr:
    """AND together an iterable of boolean expressions (TRUE when empty)."""
    result: Expr = ast.TRUE
    for term in terms:
        result = land(result, term)
    return result


def disjoin(terms) -> Expr:
    """OR together an iterable of boolean expressions (FALSE when empty)."""
    result: Expr = ast.FALSE
    for term in terms:
        result = lor(result, term)
    return result


# ---------------------------------------------------------------------------
# Conditional and arrays
# ---------------------------------------------------------------------------


def ite(cond: ExprLike, then: ExprLike, orelse: ExprLike) -> Expr:
    econd, ethen = _lift2(cond, then)
    eorelse = lift(orelse)
    _require_bool(econd, "ite condition")
    if econd.is_const:
        return ethen if econd.const_value() else eorelse
    if ethen == eorelse:
        return ethen
    if ethen.ty.is_bool and eorelse.ty.is_bool:
        ty: Type = BOOL
        # (c ? true : b) == c || b;  (c ? a : false) == c && a, etc.
        if ethen.is_const:
            return lor(econd, eorelse) if ethen.const_value() else land(
                lnot(econd), eorelse
            )
        if eorelse.is_const:
            return land(econd, ethen) if not eorelse.const_value() else lor(
                lnot(econd), ethen
            )
    elif ethen.ty.is_numeric and eorelse.ty.is_numeric:
        ty = join_numeric(ethen.ty, eorelse.ty)
    elif ethen.ty == eorelse.ty:
        ty = ethen.ty
    else:
        raise ExprTypeError(
            f"ite branches have incompatible types {ethen.ty!r} / {eorelse.ty!r}"
        )
    return Ite(econd, ethen, eorelse, ty)


def select(array: ExprLike, index: ExprLike) -> Expr:
    earr, eidx = _lift2(array, index)
    if not earr.ty.is_array:
        raise ExprTypeError(f"select requires an array, got {earr.ty!r}")
    _require_numeric(eidx, "select index")
    assert isinstance(earr.ty, ArrayType)
    elem_ty = earr.ty.elem
    if eidx.is_const:
        i = int(eidx.const_value())
        if not 0 <= i < earr.ty.length:
            raise ExprTypeError(
                f"constant index {i} out of range for {earr.ty!r}"
            )
        if earr.is_const:
            return Const(earr.const_value()[i], elem_ty)
        if isinstance(earr, Store) and earr.index.is_const:
            j = int(earr.index.const_value())
            if i == j:
                return earr.value
            return select(earr.array, eidx)
    return Select(earr, eidx, elem_ty)


def store(array: ExprLike, index: ExprLike, value: ExprLike) -> Expr:
    earr, eidx = _lift2(array, index)
    evalue = lift(value)
    if not earr.ty.is_array:
        raise ExprTypeError(f"store requires an array, got {earr.ty!r}")
    assert isinstance(earr.ty, ArrayType)
    if earr.is_const and eidx.is_const and evalue.is_const:
        i = int(eidx.const_value())
        if not 0 <= i < earr.ty.length:
            raise ExprTypeError(f"constant index {i} out of range for {earr.ty!r}")
        items = list(earr.const_value())
        items[i] = evalue.const_value()
        return Const(tuple(items), earr.ty)
    return Store(earr, eidx, evalue, earr.ty)
