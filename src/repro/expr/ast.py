"""Expression AST for symbolic one-step model encodings.

Nodes are immutable and structurally hashable.  The AST is shared between the
symbolic simulator (which builds expressions over the model's input variables
while treating the state snapshot as constants) and the constraint solver
(which evaluates, contracts and searches over them).

Construction normally goes through the smart constructors in
:mod:`repro.expr.ops`, which type-check operands and fold constants eagerly.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.errors import ExprError
from repro.expr.types import ArrayType, BOOL, INT, Type, coerce_value, type_of_value

# ---------------------------------------------------------------------------
# Operator name constants
# ---------------------------------------------------------------------------

# Unary operators.
NEG = "neg"
NOT = "not"
ABS = "abs"
FLOOR = "floor"
CEIL = "ceil"
TO_INT = "to_int"  # truncation toward zero, C-style cast
TO_REAL = "to_real"
TO_BOOL = "to_bool"  # nonzero test

UNARY_OPS = frozenset({NEG, NOT, ABS, FLOOR, CEIL, TO_INT, TO_REAL, TO_BOOL})

# Binary arithmetic operators.
ADD = "add"
SUB = "sub"
MUL = "mul"
DIV = "div"  # real division
IDIV = "idiv"  # integer division truncating toward zero
MOD = "mod"  # remainder with the sign of the dividend (C semantics)
MIN = "min"
MAX = "max"

ARITH_OPS = frozenset({ADD, SUB, MUL, DIV, IDIV, MOD, MIN, MAX})

# Binary relational operators.
LT = "lt"
LE = "le"
GT = "gt"
GE = "ge"
EQ = "eq"
NE = "ne"

REL_OPS = frozenset({LT, LE, GT, GE, EQ, NE})

# Binary boolean operators.
AND = "and"
OR = "or"
XOR = "xor"
IMPLIES = "implies"

BOOL_OPS = frozenset({AND, OR, XOR, IMPLIES})

BINARY_OPS = ARITH_OPS | REL_OPS | BOOL_OPS

#: Negated counterpart of each relational operator, used by NNF conversion.
REL_NEGATION = {LT: GE, LE: GT, GT: LE, GE: LT, EQ: NE, NE: EQ}

#: Mirrored counterpart (a op b == b mirror(op) a).
REL_MIRROR = {LT: GT, LE: GE, GT: LT, GE: LE, EQ: EQ, NE: NE}


class Expr:
    """Base class for all expression nodes.

    Subclasses define ``children`` and a structural identity key.  Equality
    and hashing are structural; hashes are cached per node.
    """

    __slots__ = ("ty", "_hash")

    ty: Type

    def __init__(self, ty: Type):
        self.ty = ty
        self._hash: Optional[int] = None

    # -- structural identity ------------------------------------------------

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((type(self).__name__,) + self._key())
        return self._hash

    # -- traversal ----------------------------------------------------------

    @property
    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order, without recursion."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    # -- convenience --------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return isinstance(self, Const)

    def const_value(self):
        """Return the constant value, or raise if this is not a constant."""
        if isinstance(self, Const):
            return self.value
        raise ExprError(f"expression is not a constant: {self!r}")

    def __repr__(self) -> str:
        from repro.expr.printer import to_string

        return f"<Expr {to_string(self)}>"


class Const(Expr):
    """A literal constant of any type (including arrays, stored as tuples)."""

    __slots__ = ("value",)

    def __init__(self, value, ty: Optional[Type] = None):
        if ty is None:
            ty = type_of_value(value)
        super().__init__(ty)
        self.value = coerce_value(value, ty)

    def _key(self) -> tuple:
        return (self.ty.is_bool, self.value, repr(self.ty))


class Var(Expr):
    """A free variable, optionally bounded to a closed domain.

    Bounds are advisory: the solver uses them as the initial interval box and
    the sampling range.  ``lo``/``hi`` may be ``None`` for unbounded sides.
    Array-typed variables are allowed as substitution placeholders (Fcn
    templates, guard atoms) but may not reach the solver box, which is
    scalar-only.
    """

    __slots__ = ("name", "lo", "hi")

    def __init__(self, name: str, ty: Type, lo=None, hi=None):
        super().__init__(ty)
        self.name = name
        self.lo = lo
        self.hi = hi

    def _key(self) -> tuple:
        return (self.name, repr(self.ty))


class Unary(Expr):
    """A unary operator application."""

    __slots__ = ("op", "arg")

    def __init__(self, op: str, arg: Expr, ty: Type):
        if op not in UNARY_OPS:
            raise ExprError(f"unknown unary operator {op!r}")
        super().__init__(ty)
        self.op = op
        self.arg = arg

    def _key(self) -> tuple:
        return (self.op, self.arg)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,)


class Binary(Expr):
    """A binary operator application."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, ty: Type):
        if op not in BINARY_OPS:
            raise ExprError(f"unknown binary operator {op!r}")
        super().__init__(ty)
        self.op = op
        self.left = left
        self.right = right

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


class Ite(Expr):
    """If-then-else: ``cond ? then : orelse``."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond: Expr, then: Expr, orelse: Expr, ty: Type):
        super().__init__(ty)
        self.cond = cond
        self.then = then
        self.orelse = orelse

    def _key(self) -> tuple:
        return (self.cond, self.then, self.orelse)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)


class Select(Expr):
    """Array element read: ``array[index]``."""

    __slots__ = ("array", "index")

    def __init__(self, array: Expr, index: Expr, ty: Type):
        super().__init__(ty)
        self.array = array
        self.index = index

    def _key(self) -> tuple:
        return (self.array, self.index)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.array, self.index)


class Store(Expr):
    """Functional array update: a copy of ``array`` with ``array[index] = value``."""

    __slots__ = ("array", "index", "value")

    def __init__(self, array: Expr, index: Expr, value: Expr, ty: ArrayType):
        super().__init__(ty)
        self.array = array
        self.index = index
        self.value = value

    def _key(self) -> tuple:
        return (self.array, self.index, self.value)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.array, self.index, self.value)


#: Shared boolean constants.
TRUE = Const(True, BOOL)
FALSE = Const(False, BOOL)
ZERO = Const(0, INT)
ONE = Const(1, INT)
