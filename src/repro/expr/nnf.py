"""Negation normal form for boolean expressions.

Branch-distance computation and interval contraction both want negations
pushed down to the relational atoms.  ``to_nnf`` rewrites a boolean
expression so that NOT only appears directly above atoms that cannot be
negated structurally (boolean variables, TO_BOOL casts, selects).
"""

from __future__ import annotations

from repro.errors import ExprTypeError
from repro.expr import ast, ops
from repro.expr.ast import Binary, Const, Expr, Ite, Unary


def to_nnf(expr: Expr) -> Expr:
    """Return an equivalent boolean expression in negation normal form.

    ITE over booleans is expanded into ``(c && t) || (!c && e)``; XOR into
    its disjunctive form.  The result contains only AND/OR over (possibly
    negated) atoms.
    """
    if not expr.ty.is_bool:
        raise ExprTypeError(f"to_nnf expects a boolean expression, got {expr.ty!r}")
    return _nnf(expr, negate=False)


def _nnf(expr: Expr, negate: bool) -> Expr:
    if isinstance(expr, Const):
        value = expr.value if not negate else not expr.value
        return ast.TRUE if value else ast.FALSE
    if isinstance(expr, Unary) and expr.op == ast.NOT:
        return _nnf(expr.arg, not negate)
    if isinstance(expr, Binary):
        op = expr.op
        if op == ast.AND:
            left = _nnf(expr.left, negate)
            right = _nnf(expr.right, negate)
            return ops.lor(left, right) if negate else ops.land(left, right)
        if op == ast.OR:
            left = _nnf(expr.left, negate)
            right = _nnf(expr.right, negate)
            return ops.land(left, right) if negate else ops.lor(left, right)
        if op == ast.IMPLIES:
            rewritten = ops.lor(ops.lnot(expr.left), expr.right)
            return _nnf(rewritten, negate)
        if op == ast.XOR:
            a, b = expr.left, expr.right
            # a ^ b  ==  (a && !b) || (!a && b); negation is equivalence.
            if negate:
                rewritten = ops.lor(
                    ops.land(a, b), ops.land(ops.lnot(a), ops.lnot(b))
                )
            else:
                rewritten = ops.lor(
                    ops.land(a, ops.lnot(b)), ops.land(ops.lnot(a), b)
                )
            return _nnf(rewritten, False)
        if op in ast.REL_OPS:
            if negate:
                return Binary(ast.REL_NEGATION[op], expr.left, expr.right, expr.ty)
            return expr
    if isinstance(expr, Ite) and expr.ty.is_bool:
        rewritten = ops.lor(
            ops.land(expr.cond, expr.then),
            ops.land(ops.lnot(expr.cond), expr.orelse),
        )
        return _nnf(rewritten, negate)
    # Opaque boolean atom (variable, to_bool cast, select, ...).
    return ops.lnot(expr) if negate else expr
