"""A small infix DSL for writing guard and action expressions.

Charts and models can describe conditions as text, e.g.::

    parse_expr("op == 1 && count < 8", symbols)

``symbols`` maps identifier names to expressions (input ports, chart locals,
data stores).  Unknown identifiers raise :class:`ExprParseError` so typos in
model definitions fail loudly at build time.

Grammar (standard precedence, C-like operators)::

    expr     := or ( '?' expr ':' expr )?
    or       := and ( ('||' | '=>') and )*
    and      := xor ( '&&' xor )*
    xor      := not ( '^' not )*
    not      := '!' not | cmp
    cmp      := sum ( ('<'|'<='|'>'|'>='|'=='|'!=') sum )?
    sum      := term ( ('+'|'-') term )*
    term     := unary ( ('*'|'/'|'//'|'%') unary )*
    unary    := '-' unary | postfix
    postfix  := primary ( '[' expr ']' )*
    primary  := NUMBER | 'true' | 'false' | IDENT | IDENT '(' args ')'
              | '(' expr ')'

Recognized functions: ``min max abs ite floor ceil int real bool sat store``.
"""

from __future__ import annotations

import re
from typing import Callable, List, Mapping, Optional, Tuple, Union

from repro.errors import ExprParseError
from repro.expr import ops
from repro.expr.ast import Const, Expr

SymbolSource = Union[Mapping[str, Expr], Callable[[str], Optional[Expr]]]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<num>\d+\.\d*|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op><=|>=|==|!=|&&|\|\||=>|//|[-+*/%<>!^?:()\[\],])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ExprParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append((match.lastgroup, match.group()))
    tokens.append(("end", ""))
    return tokens


class _Parser:
    def __init__(self, text: str, symbols: SymbolSource):
        self._text = text
        self._tokens = _tokenize(text)
        self._pos = 0
        self._symbols = symbols

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._pos]

    def _advance(self) -> Tuple[str, str]:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _accept(self, value: str) -> bool:
        kind, text = self._peek()
        if kind == "op" and text == value:
            self._pos += 1
            return True
        return False

    def _expect(self, value: str) -> None:
        if not self._accept(value):
            kind, text = self._peek()
            raise ExprParseError(
                f"expected {value!r} but found {text or kind!r} in {self._text!r}"
            )

    def _lookup(self, name: str) -> Expr:
        if callable(self._symbols):
            result = self._symbols(name)
        else:
            result = self._symbols.get(name)
        if result is None:
            raise ExprParseError(f"unknown identifier {name!r} in {self._text!r}")
        return result

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Expr:
        expr = self._ternary()
        kind, text = self._peek()
        if kind != "end":
            raise ExprParseError(
                f"trailing input {text!r} in {self._text!r}"
            )
        return expr

    def _ternary(self) -> Expr:
        cond = self._or()
        if self._accept("?"):
            then = self._ternary()
            self._expect(":")
            orelse = self._ternary()
            return ops.ite(cond, then, orelse)
        return cond

    def _or(self) -> Expr:
        expr = self._and()
        while True:
            if self._accept("||"):
                expr = ops.lor(expr, self._and())
            elif self._accept("=>"):
                expr = ops.implies(expr, self._and())
            else:
                return expr

    def _and(self) -> Expr:
        expr = self._xor()
        while self._accept("&&"):
            expr = ops.land(expr, self._xor())
        return expr

    def _xor(self) -> Expr:
        expr = self._not()
        while self._accept("^"):
            expr = ops.lxor(expr, self._not())
        return expr

    def _not(self) -> Expr:
        if self._accept("!"):
            return ops.lnot(self._not())
        return self._cmp()

    def _cmp(self) -> Expr:
        left = self._sum()
        kind, text = self._peek()
        if kind == "op" and text in ("<", "<=", ">", ">=", "==", "!="):
            self._advance()
            right = self._sum()
            builder = {
                "<": ops.lt,
                "<=": ops.le,
                ">": ops.gt,
                ">=": ops.ge,
                "==": ops.eq,
                "!=": ops.ne,
            }[text]
            return builder(left, right)
        return left

    def _sum(self) -> Expr:
        expr = self._term()
        while True:
            if self._accept("+"):
                expr = ops.add(expr, self._term())
            elif self._accept("-"):
                expr = ops.sub(expr, self._term())
            else:
                return expr

    def _term(self) -> Expr:
        expr = self._unary()
        while True:
            if self._accept("*"):
                expr = ops.mul(expr, self._unary())
            elif self._accept("//"):
                expr = ops.idiv(expr, self._unary())
            elif self._accept("/"):
                expr = ops.div(expr, self._unary())
            elif self._accept("%"):
                expr = ops.mod(expr, self._unary())
            else:
                return expr

    def _unary(self) -> Expr:
        if self._accept("-"):
            return ops.neg(self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while self._accept("["):
            index = self._ternary()
            self._expect("]")
            expr = ops.select(expr, index)
        return expr

    def _primary(self) -> Expr:
        kind, text = self._advance()
        if kind == "num":
            if "." in text:
                return Const(float(text))
            return Const(int(text))
        if kind == "ident":
            if text == "true":
                return Const(True)
            if text == "false":
                return Const(False)
            if self._accept("("):
                return self._call(text)
            return self._lookup(text)
        if kind == "op" and text == "(":
            expr = self._ternary()
            self._expect(")")
            return expr
        raise ExprParseError(f"unexpected token {text or kind!r} in {self._text!r}")

    def _call(self, name: str) -> Expr:
        args: List[Expr] = []
        if not self._accept(")"):
            args.append(self._ternary())
            while self._accept(","):
                args.append(self._ternary())
            self._expect(")")
        return _apply_function(name, args, self._text)


_FUNCTIONS = {
    "min": (2, ops.minimum),
    "max": (2, ops.maximum),
    "abs": (1, ops.absolute),
    "ite": (3, ops.ite),
    "floor": (1, ops.floor),
    "ceil": (1, ops.ceil),
    "int": (1, ops.to_int),
    "real": (1, ops.to_real),
    "bool": (1, ops.to_bool),
    "sat": (3, ops.saturate),
    "store": (3, ops.store),
}


def _apply_function(name: str, args: List[Expr], text: str) -> Expr:
    try:
        arity, builder = _FUNCTIONS[name]
    except KeyError:
        raise ExprParseError(f"unknown function {name!r} in {text!r}") from None
    if len(args) != arity:
        raise ExprParseError(
            f"function {name!r} expects {arity} arguments, got {len(args)}"
        )
    return builder(*args)


def parse_expr(text: str, symbols: SymbolSource) -> Expr:
    """Parse DSL ``text`` into an expression, resolving names via ``symbols``."""
    return _Parser(text, symbols).parse()
