"""A lock-free progress probe generators publish into, heartbeats read from.

One :data:`PROBE` lives per process.  Instrumented code (the generator
loop) *writes* plain attributes — a few reference assignments per outer
iteration, gated on :attr:`ProgressProbe.enabled` so the cost is one
attribute read when heartbeats are off.  The heartbeat thread *reads* the
attributes asynchronously and serializes them into beat lines; slightly
stale values are fine (a beat is a liveness sample, not a ledger).

The probe deliberately never calls back into the generator, touches its
RNG, or mutates anything the algorithm reads: publishing progress cannot
perturb a fixed-seed run, which the equivalence suite pins (bit-identical
suites with heartbeats on or off).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

__all__ = ["PROBE", "ProgressProbe"]


class ProgressProbe:
    """Mutable cell-progress fields, written by workers, read by beats."""

    __slots__ = (
        "enabled",
        "active",
        "cell",
        "model",
        "tool",
        "repetition",
        "phase",
        "tree_nodes",
        "solver_calls",
        "coverage_fn",
        "started_at",
    )

    def __init__(self):
        self.enabled = False
        self._reset()

    def _reset(self) -> None:
        self.active = False
        self.cell: Optional[int] = None
        self.model = ""
        self.tool = ""
        self.repetition = 0
        self.phase = "idle"
        self.tree_nodes = 0
        self.solver_calls = 0
        self.coverage_fn: Optional[Callable[[], float]] = None
        self.started_at = 0.0

    # -- worker side ---------------------------------------------------

    def activate(
        self,
        *,
        cell: Optional[int] = None,
        model: str = "",
        tool: str = "",
        repetition: int = 0,
    ) -> None:
        """Begin publishing progress for one cell."""
        self._reset()
        self.cell = cell
        self.model = model
        self.tool = tool
        self.repetition = repetition
        self.phase = "start"
        self.started_at = time.monotonic()
        self.active = True

    def deactivate(self) -> None:
        """The cell finished; beats stop carrying it."""
        self._reset()

    def note(
        self,
        phase: Optional[str] = None,
        tree_nodes: Optional[int] = None,
        solver_calls: Optional[int] = None,
        coverage_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        """Publish progress: plain attribute writes, nothing else."""
        if phase is not None:
            self.phase = phase
        if tree_nodes is not None:
            self.tree_nodes = tree_nodes
        if solver_calls is not None:
            self.solver_calls = solver_calls
        if coverage_fn is not None:
            self.coverage_fn = coverage_fn

    # -- heartbeat side ------------------------------------------------

    def sample(self) -> Optional[Dict[str, object]]:
        """One beat's worth of progress, or ``None`` between cells.

        Called from the heartbeat thread; reads are unsynchronized by
        design (every field is a single reference, and a beat one write
        behind reality is still a correct liveness signal).
        """
        if not self.active:
            return None
        coverage_fn = self.coverage_fn
        try:
            coverage = float(coverage_fn()) if coverage_fn is not None else None
        except Exception:
            coverage = None  # torn read during a state swap: skip the field
        return {
            "cell": self.cell,
            "model": self.model,
            "tool": self.tool,
            "repetition": self.repetition,
            "phase": self.phase,
            "cell_elapsed_s": round(time.monotonic() - self.started_at, 3),
            "tree_nodes": self.tree_nodes,
            "solver_calls": self.solver_calls,
            "coverage": coverage,
        }


#: The per-process probe instance.
PROBE = ProgressProbe()
