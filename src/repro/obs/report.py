"""Render a ``repro.events/1`` + ``repro.trace/1`` stream as a text report.

The ``repro report`` subcommand reads an events JSONL file (written by
``repro generate/compare/table3/fig4 --events-out ... [--trace]``) and
prints:

* run summary (cells, failures, wall-clock),
* per-cell phase-time breakdown (where the generator's time went),
* solver-stage win rates (which pipeline stage actually closes targets),
* solve-cache traffic (encoding hits/misses/evictions, verdict skips),
* simulation-kernel specialization (specialized/fallback blocks, steps),
* solver-kernel traffic (compiled constraints, batched vs scalar
  candidate scoring, contraction-snapshot replays, fallbacks),
* state-tree growth curves,
* coverage-vs-time curves (from the ``timeline_point`` events),
* the top-N slowest solver targets.

Everything degrades gracefully: an untraced stream still renders the
summary and coverage sections, and every section whose event kind is
absent prints an explicit ``(no events of kind <kind> ...)`` line rather
than a zero-filled table, so a reader can tell "not recorded" from
"recorded as zero".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_report", "trace_missing_kinds", "trace_phase_totals"]

_SPARK = " .:-=+*#%@"


def _spark(values: Sequence[float], width: int = 40) -> str:
    """A fixed-width ASCII sparkline over ``values`` (last sample wins)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    # Resample onto `width` columns.
    columns: List[float] = []
    for i in range(width):
        index = min(len(values) - 1, i * len(values) // width)
        columns.append(values[index])
    scale = len(_SPARK) - 1
    return "".join(
        _SPARK[int(round((v - lo) / span * scale))] for v in columns
    )


def _of_kind(events, kind: str) -> List[Dict[str, object]]:
    return [e for e in events if e.get("event") == kind]


def _cell_key(event: Dict[str, object]) -> Tuple:
    return (
        event.get("model", "?"),
        event.get("tool", "?"),
        event.get("repetition", 0),
    )


def _cell_label(key: Tuple) -> str:
    model, tool, repetition = key
    return f"{model}/{tool} rep{repetition}"


def trace_missing_kinds(events) -> List[str]:
    """The ``repro.trace/1`` kinds with no events in the stream.

    Ordered like :data:`~repro.telemetry.events.TRACE_KINDS` so error
    messages are stable.  ``repro report --require-trace`` uses this to
    *name* what is missing instead of a bare "not traced".
    """
    from repro.telemetry.events import TRACE_KINDS

    present = {e.get("event") for e in events}
    return [kind for kind in TRACE_KINDS if kind not in present]


def trace_phase_totals(events) -> Dict[str, float]:
    """Total traced seconds per phase across the whole stream."""
    totals: Dict[str, float] = {}
    for event in _of_kind(events, "phase_totals"):
        for phase, stat in (event.get("phases") or {}).items():
            totals[phase] = (
                totals.get(phase, 0.0) + float((stat or {}).get("seconds", 0.0))
            )
    return totals


def render_report(events, top_n: int = 10) -> str:
    """The full text report over one parsed event stream."""
    lines: List[str] = []
    lines += _section_summary(events)
    lines += _section_metrics(events)
    lines += _section_phases(events)
    lines += _section_stages(events)
    lines += _section_cache(events)
    lines += _section_kernel(events)
    lines += _section_solverc(events)
    lines += _section_tree_growth(events)
    lines += _section_store(events)
    lines += _section_fuzz(events)
    lines += _section_coverage(events)
    lines += _section_provenance(events)
    lines += _section_targets(events, top_n)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# sections
# ----------------------------------------------------------------------


def _section_summary(events) -> List[str]:
    finished = _of_kind(events, "matrix_finished")
    ok = len(_of_kind(events, "cell_finished")) + len(
        _of_kind(events, "run_finished")
    )
    failed = len(_of_kind(events, "cell_failed"))
    wall = (
        float(finished[-1].get("wall_s", 0.0)) if finished
        else (float(events[-1].get("t", 0.0)) if events else 0.0)
    )
    lines = [
        "run report",
        "==========",
        f"  events: {len(events)}   cells ok: {ok}   failed: {failed}   "
        f"wall: {wall:.2f}s",
    ]
    for failure in _of_kind(events, "cell_failed"):
        lines.append(
            f"  [failed] {_cell_label(_cell_key(failure))}: "
            f"{failure.get('kind')}: {failure.get('message')}"
        )
    for stall in _of_kind(events, "cell_stalled"):
        lines.append(
            f"  [stalled] {_cell_label(_cell_key(stall))}: quiet "
            f"{float(stall.get('quiet_s', 0.0)):.1f}s in phase "
            f"{stall.get('phase')!r} "
            f"(tree={stall.get('last_tree_nodes')}, "
            f"solver={stall.get('last_solver_calls')})"
        )
    lines.append("")
    return lines


def _section_metrics(events) -> List[str]:
    lines = ["unified metrics (repro.metrics/1)",
             "---------------------------------"]
    metric_events = _of_kind(events, "metrics")
    if not metric_events:
        lines += ["  (no events of kind metrics — re-run with --trace)", ""]
        return lines
    from repro.metrics import empty_snapshot, fold_snapshots

    folded = fold_snapshots([
        (_cell_key(event), event.get("snapshot") or empty_snapshot())
        for event in metric_events
    ])
    lines.append(f"  (folded over {len(metric_events)} cell snapshot(s))")
    counters = folded.get("counters") or {}
    nonzero = {k: v for k, v in counters.items() if v}
    for name in sorted(nonzero):
        lines.append(f"  {name:<32s} {int(nonzero[name]):>12d}")
    zeros = len(counters) - len(nonzero)
    if zeros:
        lines.append(f"  ({zeros} zero counter(s) omitted)")
    for name, hist in sorted((folded.get("histograms") or {}).items()):
        lines.append(
            f"  {name}: count={int(hist.get('count', 0))} "
            f"sum={float(hist.get('sum', 0.0)):.1f} "
            f"buckets{list(hist.get('counts') or [])}"
        )
    lines.append("")
    return lines


def _section_phases(events) -> List[str]:
    lines = ["phase-time breakdown (repro.trace/1)",
             "------------------------------------"]
    phase_events = _of_kind(events, "phase_totals")
    if not phase_events:
        lines += ["  (no events of kind phase_totals — re-run with --trace)",
                  ""]
        return lines
    for event in phase_events:
        phases = event.get("phases") or {}
        total = sum(
            float((stat or {}).get("seconds", 0.0)) for stat in phases.values()
        )
        lines.append(f"  {_cell_label(_cell_key(event))}  "
                     f"(traced {total:.3f}s)")
        for phase, stat in sorted(
            phases.items(),
            key=lambda item: -float((item[1] or {}).get("seconds", 0.0)),
        ):
            seconds = float((stat or {}).get("seconds", 0.0))
            count = int((stat or {}).get("count", 0))
            share = (seconds / total * 100.0) if total else 0.0
            lines.append(
                f"    {phase:<12s} {seconds:>9.3f}s  {share:5.1f}%"
                f"  x{count}"
            )
        counters = event.get("counters") or {}
        if counters:
            rendered = ", ".join(
                f"{name}={counters[name]}" for name in sorted(counters)
            )
            lines.append(f"    counters: {rendered}")
    lines.append("")
    return lines


def _section_stages(events) -> List[str]:
    lines = ["solver-stage win rates", "----------------------"]
    stage_events = _of_kind(events, "solver_stages")
    merged: Dict[str, Dict[str, float]] = {}
    from repro.obs.stages import SOLVER_STAGES, merge_stage_dicts

    for event in stage_events:
        merge_stage_dicts(merged, event.get("stages") or {})
    if not merged:
        lines += ["  (no events of kind solver_stages — re-run with --trace)",
                  ""]
        return lines
    lines.append(
        f"  {'stage':<10s} {'attempts':>8s} {'finished':>8s} "
        f"{'wins':>6s} {'win%':>6s} {'seconds':>9s}"
    )
    ordered = [s for s in SOLVER_STAGES if s in merged]
    ordered += [s for s in sorted(merged) if s not in SOLVER_STAGES]
    for stage in ordered:
        stat = merged[stage]
        finished = int(stat.get("finished", 0))
        wins = int(stat.get("wins", 0))
        rate = (wins / finished * 100.0) if finished else 0.0
        lines.append(
            f"  {stage:<10s} {int(stat.get('attempts', 0)):>8d} "
            f"{finished:>8d} {wins:>6d} {rate:>5.1f}% "
            f"{float(stat.get('seconds', 0.0)):>8.3f}s"
        )
    lines.append("")
    return lines


def _section_cache(events) -> List[str]:
    lines = ["solve-cache traffic", "-------------------"]
    cache_events = _of_kind(events, "cache_stats")
    if not cache_events:
        lines += ["  (no events of kind cache_stats — re-run with --trace)",
                  ""]
        return lines
    lines.append(
        f"  {'cell':<28s} {'enc hit':>8s} {'enc miss':>8s} "
        f"{'evict':>6s} {'hit%':>6s} {'vskips':>7s} {'dedup':>6s}"
    )
    for event in cache_events:
        hits = int(event.get("encoding_hits", 0))
        misses = int(event.get("encoding_misses", 0))
        lookups = hits + misses
        rate = (hits / lookups * 100.0) if lookups else 0.0
        lines.append(
            f"  {_cell_label(_cell_key(event)):<28s} {hits:>8d} "
            f"{misses:>8d} {int(event.get('encoding_evictions', 0)):>6d} "
            f"{rate:>5.1f}% {int(event.get('verdict_skips', 0)):>7d} "
            f"{int(event.get('dedup_links', 0)):>6d}"
        )
    lines.append("")
    return lines


def _section_kernel(events) -> List[str]:
    lines = ["simulation kernel", "-----------------"]
    kernel_events = _of_kind(events, "kernel_stats")
    if not kernel_events:
        lines += ["  (no events of kind kernel_stats — STCG cells only, "
                  "with --trace)", ""]
        return lines
    lines.append(
        f"  {'cell':<28s} {'state':>8s} {'special':>8s} "
        f"{'fallback':>8s} {'steps':>9s}"
    )
    for event in kernel_events:
        enabled = bool(event.get("enabled"))
        lines.append(
            f"  {_cell_label(_cell_key(event)):<28s} "
            f"{'on' if enabled else 'off':>8s} "
            f"{int(event.get('specialized_blocks', 0)):>8d} "
            f"{int(event.get('fallback_blocks', 0)):>8d} "
            f"{int(event.get('kernel_steps', 0)):>9d}"
        )
        fallback_classes = event.get("fallback_classes") or []
        if fallback_classes:
            lines.append(
                "    fallback classes: " + ", ".join(map(str, fallback_classes))
            )
    lines.append("")
    return lines


def _section_solverc(events) -> List[str]:
    lines = ["solver kernel", "-------------"]
    solverc_events = _of_kind(events, "solverc_stats")
    if not solverc_events:
        lines += ["  (no events of kind solverc_stats — STCG cells only, "
                  "with --trace)", ""]
        return lines
    lines.append(
        f"  {'cell':<28s} {'state':>8s} {'compiled':>8s} "
        f"{'batched':>8s} {'scalar':>7s} {'cached':>7s}"
    )
    for event in solverc_events:
        enabled = bool(event.get("enabled"))
        batched = (
            int(event.get("candidates_batched", 0))
            + int(event.get("case_batched", 0))
        )
        scalar = (
            int(event.get("candidates_scalar", 0))
            + int(event.get("case_interpreted", 0))
        )
        lines.append(
            f"  {_cell_label(_cell_key(event)):<28s} "
            f"{'on' if enabled else 'off':>8s} "
            f"{int(event.get('constraints_compiled', 0)):>8d} "
            f"{batched:>8d} {scalar:>7d} "
            f"{int(event.get('contract_cached', 0)):>7d}"
        )
        fallbacks = {
            name: int(event.get(name, 0))
            for name in ("contract_compile_fallbacks", "batch_fallbacks",
                         "scalar_fallbacks")
            if int(event.get(name, 0))
        }
        if fallbacks:
            lines.append(
                "    fallbacks: "
                + ", ".join(f"{k}={v}" for k, v in sorted(fallbacks.items()))
            )
    lines.append("")
    return lines


def _section_tree_growth(events) -> List[str]:
    lines = ["state-tree growth", "-----------------"]
    growth_events = _of_kind(events, "tree_growth")
    if not growth_events:
        lines += ["  (no events of kind tree_growth — STCG cells only, "
                  "with --trace)", ""]
        return lines
    for event in growth_events:
        points = event.get("points") or []
        values = [float(p[1]) for p in points]
        final = int(values[-1]) if values else 0
        lines.append(
            f"  {_cell_label(_cell_key(event)):<28s} "
            f"|{_spark(values)}| {final} nodes"
        )
    lines.append("")
    return lines


def _section_store(events) -> List[str]:
    lines = ["warm-start store (repro.store/1)",
             "--------------------------------"]
    store_events = _of_kind(events, "store_stats")
    if not store_events:
        lines += ["  (no events of kind store_stats — run with --store DIR)",
                  ""]
        return lines
    lines.append(
        f"  {'cell':<28s} {'reads':>6s} {'hits':>5s} {'rej':>4s} "
        f"{'writes':>6s} {'verd':>6s} {'mark':>5s} {'snap':>5s} "
        f"{'enc':>5s} {'seeds':>6s}"
    )
    for event in store_events:
        lines.append(
            f"  {_cell_label(_cell_key(event)):<28s} "
            f"{int(event.get('reads', 0)):>6d} "
            f"{int(event.get('hits', 0)):>5d} "
            f"{int(event.get('rejected', 0)):>4d} "
            f"{int(event.get('writes', 0)):>6d} "
            f"{int(event.get('restored_verdicts', 0)):>6d} "
            f"{int(event.get('restored_markers', 0)):>5d} "
            f"{int(event.get('restored_snapshots', 0)):>5d} "
            f"{int(event.get('restored_encodings', 0)):>5d} "
            f"{int(event.get('corpus_seeds', 0)):>6d}"
        )
    lines.append("")
    return lines


def _section_fuzz(events) -> List[str]:
    lines = ["fuzz campaigns", "--------------"]
    fuzz_events = _of_kind(events, "fuzz_stats")
    if not fuzz_events:
        lines += ["  (no events of kind fuzz_stats — Fuzz/Hybrid cells only)",
                  ""]
        return lines
    lines.append(
        f"  {'cell':<28s} {'execs':>7s} {'ex/s':>7s} {'corpus':>7s} "
        f"{'seeds':>6s} {'targets':>8s} {'fed':>5s}"
    )
    for event in fuzz_events:
        targets = event.get("targets")
        target_cell = (
            f"{event.get('targets_covered', 0)}/{targets}"
            if targets is not None else "-"
        )
        lines.append(
            f"  {_cell_label(_cell_key(event)):<28s} "
            f"{int(event.get('executions', 0)):>7d} "
            f"{float(event.get('execs_per_s', 0.0)):>7.0f} "
            f"{int(event.get('corpus_size', 0)):>7d} "
            f"{int(event.get('seed_entries', 0)):>6d} "
            f"{target_cell:>8s} "
            f"{int(event.get('tree_nodes', 0)):>5d}"
        )
    lines.append("")
    return lines


def _section_coverage(events) -> List[str]:
    lines = ["coverage vs time", "----------------"]
    points = _of_kind(events, "timeline_point")
    if not points:
        lines += ["  (no events of kind timeline_point in this stream)", ""]
        return lines
    # Matrix streams key points by cell index; single runs carry none.
    cell_names = {
        e.get("cell"): _cell_label(_cell_key(e))
        for e in _of_kind(events, "cell_started")
    }
    by_cell: Dict[object, List[Tuple[float, float]]] = {}
    for point in points:
        by_cell.setdefault(point.get("cell"), []).append(
            (float(point.get("t", 0.0)), float(point.get("decision", 0.0)))
        )
    for cell, series in sorted(
        by_cell.items(), key=lambda item: str(item[0])
    ):
        series.sort()
        values = [v for _, v in series]
        label = cell_names.get(cell) or _single_run_label(events) or "run"
        lines.append(
            f"  {label:<28s} |{_spark(values)}| "
            f"{values[-1]:.1%} in {series[-1][0]:.2f}s"
        )
    lines.append("")
    return lines


def _section_provenance(events) -> List[str]:
    lines = ["objective provenance (repro.provenance/1)",
             "-----------------------------------------"]
    prov_events = _of_kind(events, "provenance")
    if not prov_events:
        lines += ["  (no events of kind provenance — the ledger was off)", ""]
        return lines
    for event in prov_events:
        snapshot = event.get("provenance") or {}
        totals = snapshot.get("totals") or {}
        objectives = snapshot.get("objectives") or {}
        uncovered = [
            oid for oid, entry in objectives.items()
            if entry.get("status") == "uncovered"
        ]
        label = _cell_label(_cell_key(event))
        lines.append(
            f"  {label:<28s} {totals.get('covered', 0)}/"
            f"{totals.get('objectives', 0)} covered"
        )
        for oid in uncovered[:5]:
            entry = objectives[oid]
            attempts = sum((entry.get("attempts") or {}).values())
            skips = sum((entry.get("skips") or {}).values())
            lines.append(
                f"    [uncovered] {oid} "
                f"({attempts} attempt(s), {skips} skip(s))"
            )
        if len(uncovered) > 5:
            lines.append(
                f"    ... and {len(uncovered) - 5} more "
                "(see repro explain --uncovered)"
            )
    lines.append("")
    return lines


def _single_run_label(events) -> Optional[str]:
    started = _of_kind(events, "run_started")
    if not started:
        return None
    event = started[-1]
    return f"{event.get('model', '?')}/{event.get('tool', '?')}"


def _section_targets(events, top_n: int) -> List[str]:
    lines = [f"slowest solver targets (top {top_n})",
             "-----------------------------------"]
    spans = [e for e in _of_kind(events, "span") if e.get("target")]
    if not spans:
        lines += ["  (no events of kind span — re-run with --trace)", ""]
        return lines
    targets: Dict[str, List[float]] = {}
    for span in spans:
        agg = targets.setdefault(str(span["target"]), [0, 0.0])
        agg[0] += int(span.get("calls", 0))
        agg[1] += float(span.get("seconds", 0.0))
    ranked = sorted(targets.items(), key=lambda item: -item[1][1])[:top_n]
    width = max(len(name) for name, _ in ranked)
    for name, (calls, seconds) in ranked:
        lines.append(f"  {name:<{width}s}  {seconds:>9.3f}s  x{calls}")
    lines.append("")
    return lines
