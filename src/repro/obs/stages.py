"""Per-stage accounting for the solver pipeline.

:class:`~repro.solver.engine.SolverEngine` finishes every call with a fine
``stage`` tag (``"corner"``, ``"split-sample"``, ``"sample-timeout"``, ...)
and per-stage wall-clock segments.  This module folds those tags onto the
five canonical pipeline stages and accumulates, per stage:

* ``attempts`` — calls that *entered* the stage (spent time in it),
* ``finished`` — calls whose verdict was produced by the stage,
* ``wins``     — calls the stage finished with SAT,
* ``seconds``  — total wall-clock spent in the stage.

``sum(finished) == calls`` and ``sum(wins) == sat`` by construction, which
the test suite pins down.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["CACHE_COUNTERS", "SOLVER_STAGES", "SolverStageMetrics",
           "canonical_stage", "merge_stage_dicts"]

#: The canonical pipeline stages, in execution order.
SOLVER_STAGES = ("fold", "contract", "sample", "split", "avm")

#: Canonical names of the solve-cache counters, as reported by
#: :meth:`repro.cache.solve.SolveCache.stats` and mirrored into trace
#: counters, ``cache_stats`` telemetry events and the report's cache
#: section.
CACHE_COUNTERS = (
    "encoding_hits",
    "encoding_misses",
    "encoding_evictions",
    "compiled_hits",
    "compiled_misses",
    "compiled_evictions",
    "verdict_hits",
    "verdict_entries",
)

_CANONICAL = {
    "fold": "fold",
    "contract": "contract",
    "corner": "sample",
    "sample": "sample",
    "sample-timeout": "sample",
    "split": "split",
    "split-corner": "split",
    "split-sample": "split",
    "avm": "avm",
}


def canonical_stage(tag: str) -> str:
    """Map a fine ``SolveStats.stage`` tag onto its pipeline stage."""
    return _CANONICAL.get(tag, tag or "unknown")


class SolverStageMetrics:
    """Accumulates stage counters over the lifetime of one engine."""

    __slots__ = ("stages", "calls", "by_status", "skips")

    def __init__(self):
        self.stages: Dict[str, Dict[str, float]] = {}
        self.calls = 0
        self.by_status: Dict[str, int] = {}
        #: Solver calls avoided entirely, by skip kind (e.g. ``"verdict"``
        #: for verdict-cache hits).  Kept out of :meth:`as_dict` so the
        #: per-stage shape stays mergeable by :func:`merge_stage_dicts`.
        self.skips: Dict[str, int] = {}

    def _stage(self, name: str) -> Dict[str, float]:
        stat = self.stages.get(name)
        if stat is None:
            stat = self.stages[name] = {
                "attempts": 0, "finished": 0, "wins": 0, "seconds": 0.0,
            }
        return stat

    def note_skip(self, kind: str) -> None:
        """Count a solver call that a cache made unnecessary."""
        self.skips[kind] = self.skips.get(kind, 0) + 1

    def record(self, stats) -> None:
        """Fold one finished :class:`~repro.solver.engine.SolveStats` in."""
        self.calls += 1
        status = stats.status.value
        self.by_status[status] = self.by_status.get(status, 0) + 1
        for tag, seconds in stats.stage_times.items():
            stat = self._stage(canonical_stage(tag))
            stat["attempts"] += 1
            stat["seconds"] += seconds
        terminal = self._stage(canonical_stage(stats.stage))
        terminal["finished"] += 1
        if status == "sat":
            terminal["wins"] += 1

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready snapshot, seconds rounded, stages in pipeline order."""
        ordered = [s for s in SOLVER_STAGES if s in self.stages]
        ordered += [s for s in sorted(self.stages) if s not in SOLVER_STAGES]
        return {
            name: {
                "attempts": int(self.stages[name]["attempts"]),
                "finished": int(self.stages[name]["finished"]),
                "wins": int(self.stages[name]["wins"]),
                "seconds": round(self.stages[name]["seconds"], 6),
            }
            for name in ordered
        }


def merge_stage_dicts(
    into: Dict[str, Dict[str, float]],
    other: Optional[Dict[str, Dict[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Sum one ``as_dict()``-shaped mapping into another (in place)."""
    for stage, stat in (other or {}).items():
        agg = into.setdefault(
            stage, {"attempts": 0, "finished": 0, "wins": 0, "seconds": 0.0}
        )
        for key in ("attempts", "finished", "wins"):
            agg[key] = int(agg[key]) + int(stat.get(key, 0))
        agg["seconds"] = round(
            float(agg["seconds"]) + float(stat.get("seconds", 0.0)), 6
        )
    return into
