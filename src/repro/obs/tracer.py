"""Tracing primitives: the :class:`Tracer` protocol and its implementations.

Three hooks cover everything the generators need:

* ``span(name, **tags)`` — a context manager timing one phase of work
  (solve scan, one solver call, one simulation step, ...);
* ``count(name, n)``     — a named monotone counter;
* ``sample(series, t, value)`` — one point of a time series (state-tree
  growth, queue depths, ...).

:data:`NULL_TRACER` implements all three as no-ops sharing a single
stateless context manager, so instrumented code pays only an attribute
lookup and a call when tracing is off — the overhead budget for a fully
disabled tracer is <3% of generator wall-clock.  :class:`SpanTracer` keeps
every raw span (unbounded; tests, short runs).  :class:`PhaseProfiler`
aggregates into per-phase totals and decimated series, so its memory stays
bounded no matter how long the run is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Dict, List, Protocol, Tuple

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PhaseProfiler",
    "Span",
    "SpanTracer",
    "Tracer",
]


@dataclass
class Span:
    """One finished timed section: name, monotonic start/end, tags."""

    name: str
    start: float
    end: float = 0.0
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)


class Tracer(Protocol):
    """What instrumented code sees; see module docstring for the contract.

    ``enabled`` lets hot paths skip even the cheap no-op call::

        if tracer.enabled:
            with tracer.span("sim_step"):
                ...
    """

    enabled: bool

    def span(self, name: str, **tags: object) -> ContextManager: ...

    def count(self, name: str, n: int = 1) -> None: ...

    def sample(self, series: str, t: float, value: float) -> None: ...


class _NullSpan:
    """A single shared, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every hook is a no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **tags: object) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def sample(self, series: str, t: float, value: float) -> None:
        pass


#: Shared no-op instance; instrumented classes default to this.
NULL_TRACER = NullTracer()


class _RecordingSpan:
    """Context manager that reports its duration back to its tracer."""

    __slots__ = ("_tracer", "name", "tags", "_t0")

    def __init__(self, tracer, name: str, tags: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.tags = tags

    def __enter__(self) -> "_RecordingSpan":
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._tracer._finish(self.name, self.tags, self._t0,
                             self._tracer._clock())
        return False


class SpanTracer:
    """Records every span verbatim (plus counters and series).

    Unbounded memory — meant for tests and short diagnostic runs; long
    runs should use :class:`PhaseProfiler`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self.spans: List[Span] = []
        self.counters: Dict[str, int] = {}
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    def span(self, name: str, **tags: object) -> _RecordingSpan:
        return _RecordingSpan(self, name, tags)

    def _finish(self, name, tags, start, end) -> None:
        self.spans.append(Span(name, start, end, tags))

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def sample(self, series: str, t: float, value: float) -> None:
        self.series.setdefault(series, []).append((t, value))

    # -- summaries -----------------------------------------------------

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            agg = totals.setdefault(span.name, {"count": 0, "seconds": 0.0})
            agg["count"] += 1
            agg["seconds"] += span.seconds
        return {
            name: {"count": agg["count"],
                   "seconds": round(agg["seconds"], 6)}
            for name, agg in totals.items()
        }

    def target_totals(self) -> List[Dict[str, object]]:
        """Per-``target``-tag time aggregation, slowest first."""
        targets: Dict[str, List[float]] = {}
        for span in self.spans:
            target = span.tags.get("target")
            if target is None:
                continue
            agg = targets.setdefault(str(target), [0, 0.0])
            agg[0] += 1
            agg[1] += span.seconds
        return _sorted_targets(targets)

    def summary(self) -> Dict[str, object]:
        return _summary(self)


class PhaseProfiler:
    """Aggregating tracer with bounded memory.

    Spans collapse into per-phase ``{count, seconds}`` totals; spans
    carrying a ``target`` tag additionally accumulate per-target time (the
    "slowest solver targets" table).  Series are decimated in place once
    they exceed ``max_series_points``, halving their resolution instead of
    growing without bound — sampling-friendly for arbitrarily long runs.
    ``sample_every > 0`` additionally keeps every Nth raw span in
    ``samples`` for spot-checking latency distributions.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        sample_every: int = 0,
        max_series_points: int = 512,
    ):
        self._clock = clock
        self.sample_every = sample_every
        self.max_series_points = max(8, max_series_points)
        self._totals: Dict[str, List[float]] = {}  # name -> [count, seconds]
        self._targets: Dict[str, List[float]] = {}  # target -> [count, seconds]
        self._span_seen = 0
        self.samples: List[Span] = []
        self.counters: Dict[str, int] = {}
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    def span(self, name: str, **tags: object) -> _RecordingSpan:
        return _RecordingSpan(self, name, tags)

    def _finish(self, name, tags, start, end) -> None:
        seconds = max(0.0, end - start)
        agg = self._totals.get(name)
        if agg is None:
            agg = self._totals[name] = [0, 0.0]
        agg[0] += 1
        agg[1] += seconds
        target = tags.get("target")
        if target is not None:
            tagg = self._targets.get(str(target))
            if tagg is None:
                tagg = self._targets[str(target)] = [0, 0.0]
            tagg[0] += 1
            tagg[1] += seconds
        self._span_seen += 1
        if self.sample_every and self._span_seen % self.sample_every == 0:
            self.samples.append(Span(name, start, end, dict(tags)))

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def sample(self, series: str, t: float, value: float) -> None:
        points = self.series.setdefault(series, [])
        points.append((t, value))
        if len(points) > self.max_series_points:
            # Keep the first and last point, halve the middle.
            points[:] = points[::2] + points[-1:]

    # -- summaries -----------------------------------------------------

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"count": int(count), "seconds": round(seconds, 6)}
            for name, (count, seconds) in sorted(self._totals.items())
        }

    def target_totals(self) -> List[Dict[str, object]]:
        return _sorted_targets(self._targets)

    def summary(self) -> Dict[str, object]:
        return _summary(self)


def _sorted_targets(targets: Dict[str, List[float]]) -> List[Dict[str, object]]:
    return [
        {"target": name, "calls": int(count), "seconds": round(seconds, 6)}
        for name, (count, seconds) in sorted(
            targets.items(), key=lambda item: -item[1][1]
        )
    ]


def _summary(tracer) -> Dict[str, object]:
    """The common ``{phase_totals, targets, counters, series}`` digest."""
    return {
        "phase_totals": tracer.phase_totals(),
        "targets": tracer.target_totals(),
        "counters": dict(tracer.counters),
        "series": {
            name: [[round(t, 6), value] for t, value in points]
            for name, points in tracer.series.items()
        },
    }
