"""Observability: low-overhead tracing, phase profiling, solver-stage metrics.

The generator loop is instrumented against the :class:`Tracer` protocol.
The default :data:`NULL_TRACER` makes every hook a no-op (sub-microsecond,
so tracing costs nothing when disabled); :class:`SpanTracer` records every
span for tests and debugging; :class:`PhaseProfiler` aggregates spans into
bounded per-phase totals suitable for long runs.

Aggregates flow into the telemetry event stream as ``repro.trace/1`` event
kinds (``span``, ``phase_totals``, ``solver_stages``, ``tree_growth``) and
are rendered by :func:`render_report` (the ``repro report`` subcommand).
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    PhaseProfiler,
    Span,
    SpanTracer,
    Tracer,
)
from repro.obs.stages import (
    SOLVER_STAGES,
    SolverStageMetrics,
    canonical_stage,
    merge_stage_dicts,
)
from repro.obs.report import render_report, trace_phase_totals

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PhaseProfiler",
    "SOLVER_STAGES",
    "SolverStageMetrics",
    "Span",
    "SpanTracer",
    "Tracer",
    "canonical_stage",
    "merge_stage_dicts",
    "render_report",
    "trace_phase_totals",
]
