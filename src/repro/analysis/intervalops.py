"""Interval-domain value operations: abstract interpretation of models.

A third :class:`~repro.model.valueops.ValueOps` implementation where scalar
values are :class:`~repro.solver.interval.Interval` (booleans as the
``[0,1]`` lattice) and arrays are tuples of intervals.  Executing a model
step with these operations computes a sound over-approximation of one
concrete step; iterating to a fixpoint yields an invariant envelope of all
reachable states (:mod:`repro.analysis.envelope`).

The table reports ``symbolic = True`` so blocks take their merge-style
code path (build ITE → here: hull) instead of branching on concrete
truth values.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.solver.contractor import _forward_binary, _forward_unary
from repro.solver.interval import BOOL_FALSE, BOOL_TRUE, Interval

Abstract = Union[Interval, Tuple[Interval, ...]]


def lift(value) -> Abstract:
    """Lift a concrete value (or pass an abstract one through)."""
    if isinstance(value, Interval):
        return value
    if isinstance(value, tuple):
        return tuple(lift(element) for element in value)
    if isinstance(value, bool):
        return BOOL_TRUE if value else BOOL_FALSE
    return Interval.point(float(value))


def hull(a: Abstract, b: Abstract) -> Abstract:
    """Join two abstract values."""
    if isinstance(a, tuple) or isinstance(b, tuple):
        ta = a if isinstance(a, tuple) else tuple()
        tb = b if isinstance(b, tuple) else tuple()
        if len(ta) != len(tb):
            raise ValueError("array length mismatch in abstract hull")
        return tuple(x.hull(y) for x, y in zip(ta, tb))
    return a.hull(b)


def _binary(op: str):
    def apply(a, b):
        return _forward_binary(op, lift(a), lift(b))

    return staticmethod(apply)


def _unary(op: str):
    def apply(a):
        return _forward_unary(op, lift(a))

    return staticmethod(apply)


class _AbstractOps:
    """Interval-lattice operation table (duck-typed ValueOps)."""

    symbolic = True  # blocks must take the merge path, not concrete branches
    abstract = True

    add = _binary("add")
    sub = _binary("sub")
    mul = _binary("mul")
    div = _binary("div")
    idiv = _binary("idiv")
    mod = _binary("mod")
    minimum = _binary("min")
    maximum = _binary("max")
    lt = _binary("lt")
    le = _binary("le")
    gt = _binary("gt")
    ge = _binary("ge")
    eq = _binary("eq")
    ne = _binary("ne")
    land = _binary("and")
    lor = _binary("or")
    lxor = _binary("xor")
    neg = _unary("neg")
    absolute = _unary("abs")
    lnot = _unary("not")
    to_int = _unary("to_int")
    to_real = _unary("to_real")
    to_bool = _unary("to_bool")

    @staticmethod
    def saturate(value, lo, hi):
        clamped = _forward_binary("max", lift(value), lift(lo))
        return _forward_binary("min", clamped, lift(hi))

    @staticmethod
    def ite(condition, then, orelse):
        condition = lift(condition)
        if condition is True or (
            isinstance(condition, Interval) and condition.definitely_true
        ):
            return lift(then)
        if isinstance(condition, Interval) and condition.definitely_false:
            return lift(orelse)
        return hull(lift(then), lift(orelse))

    @staticmethod
    def select(array, index):
        array = lift(array)
        index = lift(index)
        assert isinstance(array, tuple)
        if index.is_empty:
            return Interval.empty()
        lo = max(0, int(index.lo))
        hi = min(len(array) - 1, int(index.hi))
        if lo > hi:
            return Interval.empty()
        result = array[lo]
        for element in array[lo + 1 : hi + 1]:
            result = result.hull(element)
        return result

    @staticmethod
    def store(array, index, value):
        array = lift(array)
        index = lift(index)
        value = lift(value)
        assert isinstance(array, tuple)
        if index.is_point:
            position = int(index.lo)
            if 0 <= position < len(array):
                items = list(array)
                items[position] = value
                return tuple(items)
        # Unknown position: weak update — every slot may receive the value.
        lo = max(0, int(index.lo)) if not index.is_empty else 0
        hi = min(len(array) - 1, int(index.hi)) if not index.is_empty else -1
        items = list(array)
        for position in range(lo, hi + 1):
            items[position] = items[position].hull(value)
        return tuple(items)

    @staticmethod
    def is_true(value) -> bool:
        value = lift(value)
        if value.definitely_true:
            return True
        if value.definitely_false:
            return False
        raise ValueError("abstract boolean is undecided")

    @staticmethod
    def is_concrete(value) -> bool:
        value = lift(value)
        return isinstance(value, Interval) and value.is_point


ABSTRACT = _AbstractOps()
