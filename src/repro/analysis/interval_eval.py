"""Interval evaluation of expression trees (for chart guards/actions)."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import EvalError
from repro.expr.ast import Binary, Const, Expr, Ite, Select, Store, Unary, Var
from repro.analysis.intervalops import ABSTRACT, Abstract, lift
from repro.solver.contractor import _forward_binary, _forward_unary


def interval_eval(expr: Expr, env: Mapping[str, Abstract]) -> Abstract:
    """Evaluate ``expr`` over interval-valued variables (sound hull)."""
    memo: Dict[int, Abstract] = {}

    def visit(node: Expr) -> Abstract:
        key = id(node)
        if key in memo:
            return memo[key]
        result = _compute(node, visit, env)
        memo[key] = result
        return result

    return visit(expr)


def _compute(node: Expr, visit, env: Mapping[str, Abstract]) -> Abstract:
    if isinstance(node, Const):
        return lift(node.value)
    if isinstance(node, Var):
        try:
            return lift(env[node.name])
        except KeyError:
            raise EvalError(f"no abstract value for {node.name!r}") from None
    if isinstance(node, Unary):
        return _forward_unary(node.op, visit(node.arg))
    if isinstance(node, Binary):
        return _forward_binary(node.op, visit(node.left), visit(node.right))
    if isinstance(node, Ite):
        return ABSTRACT.ite(visit(node.cond), visit(node.then), visit(node.orelse))
    if isinstance(node, Select):
        return ABSTRACT.select(visit(node.array), visit(node.index))
    if isinstance(node, Store):
        return ABSTRACT.store(
            visit(node.array), visit(node.index), visit(node.value)
        )
    raise EvalError(f"cannot abstractly evaluate {type(node).__name__}")
