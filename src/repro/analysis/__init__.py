"""Abstract interpretation over the interval domain.

Implements the paper's proposed dead-logic verification: a reachable-state
envelope (interval fixpoint with widening) and per-branch unreachability
proofs (:func:`find_dead_branches`).
"""

from repro.analysis.envelope import (
    abstract_context,
    find_dead_branches,
    input_envelope,
    state_envelope,
)
from repro.analysis.interval_eval import interval_eval
from repro.analysis.intervalops import ABSTRACT, hull, lift

__all__ = [
    "ABSTRACT",
    "abstract_context",
    "find_dead_branches",
    "hull",
    "input_envelope",
    "interval_eval",
    "lift",
    "state_envelope",
]
