"""Reachable-state envelopes and dead-branch proofs.

The paper's Discussion proposes verifying perpetually-false branches "using
the formal method" so STCG stops re-solving them.  This module implements
that verification by abstract interpretation over the interval domain:

1. :func:`state_envelope` iterates the model's abstract step (all inputs at
   their declared ranges, state joined with its successors, widening after
   a warm-up) to a fixpoint — a sound invariant containing every reachable
   state,
2. :func:`find_dead_branches` executes one abstract step from the envelope
   and reports every branch whose recorded outcome condition is
   *definitely false* — a proof that no reachable state and no input can
   ever cover it.

Proofs are conservative: a reported branch is guaranteed dead; an
unreported branch may still be dead (the LEDLC default port, for example,
needs a relational domain to prove).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.coverage.registry import Branch
from repro.model.context import StepContext
from repro.model.executor import execute_step
from repro.model.graph import CompiledModel
from repro.analysis.intervalops import ABSTRACT, Abstract, hull, lift
from repro.solver.interval import BOOL_UNKNOWN, Interval

#: Iteration caps for the fixpoint loop.
MAX_ITERATIONS = 64
WIDEN_AFTER = 12


def input_envelope(compiled: CompiledModel) -> Dict[str, Abstract]:
    """Every input at its full declared range (booleans unknown)."""
    envelope: Dict[str, Abstract] = {}
    for spec in compiled.inports:
        if spec.ty.is_bool:
            envelope[spec.name] = BOOL_UNKNOWN
        else:
            lo = spec.lo if spec.lo is not None else -1.0e9
            hi = spec.hi if spec.hi is not None else 1.0e9
            envelope[spec.name] = Interval(float(lo), float(hi))
    return envelope


def abstract_context(
    compiled: CompiledModel, state_env: Dict[str, Abstract]
) -> StepContext:
    """A step context running the model over the interval domain."""
    return StepContext(ABSTRACT, input_envelope(compiled), state_env, {})


def _widen(old: Interval, new: Interval) -> Interval:
    lo = -math.inf if new.lo < old.lo else old.lo
    hi = math.inf if new.hi > old.hi else old.hi
    return Interval(lo, hi)


def _widen_value(old: Abstract, new: Abstract) -> Abstract:
    if isinstance(old, tuple):
        return tuple(_widen(o, n) for o, n in zip(old, new))
    return _widen(old, new)


def state_envelope(
    compiled: CompiledModel,
    max_iterations: int = MAX_ITERATIONS,
    widen_after: int = WIDEN_AFTER,
) -> Dict[str, Abstract]:
    """Fixpoint invariant over all reachable states (sound, conservative)."""
    envelope: Dict[str, Abstract] = {
        path: lift(element.init)
        for path, element in compiled.state_elements.items()
    }
    for iteration in range(max_iterations):
        ctx = abstract_context(compiled, dict(envelope))
        execute_step(compiled, ctx)
        changed = False
        for path, value in ctx.next_state.items():
            joined = hull(envelope[path], lift(value))
            if joined != envelope[path]:
                if iteration >= widen_after:
                    joined = _widen_value(envelope[path], joined)
                envelope[path] = joined
                changed = True
        if not changed:
            break
    return envelope


def find_dead_branches(
    compiled: CompiledModel,
    envelope: Optional[Dict[str, Abstract]] = None,
) -> List[Branch]:
    """Branches provably unreachable from any reachable state and input."""
    if envelope is None:
        envelope = state_envelope(compiled)
    ctx = abstract_context(compiled, dict(envelope))
    execute_step(compiled, ctx)
    dead: List[Branch] = []
    for decision in compiled.registry.decisions:
        conditions = ctx.outcome_conditions.get(decision.decision_id)
        if conditions is None:
            continue
        for branch in decision.branches:
            condition = lift(conditions[branch.outcome])
            if isinstance(condition, Interval) and condition.definitely_false:
                dead.append(branch)
    return dead
