"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so callers
can catch one base class at API boundaries.  Sub-hierarchies mirror the major
subsystems (expressions, model construction, simulation, solving, coverage).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ExprError(ReproError):
    """Malformed expression construction or evaluation failure."""


class ExprTypeError(ExprError):
    """An expression was built from operands of incompatible types."""


class ExprParseError(ExprError):
    """The expression DSL text could not be parsed."""


class EvalError(ExprError):
    """An expression could not be evaluated (missing variable, bad value)."""


class ModelError(ReproError):
    """Invalid model construction (bad wiring, duplicate names, ...)."""


class CompileError(ModelError):
    """The model could not be compiled into an execution order."""


class SimulationError(ReproError):
    """A runtime failure while stepping a model."""


class StateError(SimulationError):
    """A model-state snapshot could not be captured or restored."""


class ChartError(ModelError):
    """Invalid Stateflow-like chart construction."""


class SolverError(ReproError):
    """The constraint solver was misused or hit an internal failure."""


class CoverageError(ReproError):
    """Invalid coverage registration or query."""


class HarnessError(ReproError):
    """Experiment-harness configuration problems."""


class ConfigError(ReproError):
    """A configuration dataclass was constructed with nonsensical values."""


class MetricsError(ReproError):
    """A metrics instrument was declared or merged inconsistently."""


class ExecutorError(ReproError):
    """The parallel experiment executor was misused or failed internally."""


class CellTimeout(ExecutorError):
    """One matrix cell exceeded its wall-clock timeout (recorded, not fatal)."""
