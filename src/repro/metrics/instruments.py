"""Canonical instrument names + views mapping snapshots onto legacy shapes.

PRs 2-6 each grew an ad-hoc counter bundle: per-stage
:class:`~repro.obs.stages.SolverStageMetrics`, the solve-cache counters
(:data:`~repro.obs.stages.CACHE_COUNTERS`), the sim-kernel specialization
stats and the solver-kernel :class:`~repro.solverc.compiler.SolvercStats`.
This module is where those four shapes meet one namespace:

* ``stcg.*``     — the generator's own counters (``stats`` dict) plus the
  ``stcg.case_length`` histogram over synthesized test cases;
* ``solver.stage.<stage>.*`` — attempts/finished/wins counters and a
  ``seconds`` sum-gauge per canonical pipeline stage;
* ``cache.*``    — the solve-cache counters, verdict skips, dedup links
  (counters) and ``cache.unique_states`` (max-gauge);
* ``kernel.*`` / ``solverc.*`` — compiled-vs-fallback traffic, with an
  ``enabled`` max-gauge (0/1) per kernel.

:func:`populate_registry` projects one finished run's legacy accumulators
into a registry; the ``*_view`` functions go the other way, rebuilding the
exact payload shapes of the pre-registry telemetry kinds
(``solver_stages``, ``cache_stats``, ``kernel_stats``, ``solverc_stats``)
from a snapshot — the old event kinds are now *views over the registry*,
not independently maintained counter sets.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.registry import MetricsRegistry
from repro.obs.stages import CACHE_COUNTERS, SOLVER_STAGES
from repro.solverc.compiler import SolvercStats

__all__ = [
    "CASE_LENGTH_BOUNDS",
    "FUZZ_COUNTERS",
    "STAT_COUNTERS",
    "cache_view",
    "kernel_view",
    "populate_registry",
    "declare_instruments",
    "solver_stages_view",
    "solverc_view",
]

#: Fixed bucket bounds of the ``stcg.case_length`` histogram (steps per
#: synthesized test case).  Declared here so every worker shares them and
#: merges stay well-defined.
CASE_LENGTH_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: Generator ``stats`` keys mirrored as ``stcg.*`` counters.
STAT_COUNTERS = (
    "solver_calls",
    "sat",
    "unsat",
    "unknown",
    "steps_executed",
    "random_sequences",
    "const_false_skips",
    "verdict_skips",
    "warmup_steps",
)

#: Generator ``stats`` keys mirrored as ``fuzz.*`` counters when a run
#: carried a fuzz campaign (``Fuzz``/``Hybrid`` tools); executions/sec is
#: wall-clock derived and deliberately not a registry instrument.
FUZZ_COUNTERS = (
    "executions",
    "retained",
    "rejected",
    "seed_entries",
    "steps",
    "tree_nodes",
)

#: Per-stage fields kept as counters (``seconds`` is a sum-gauge).
_STAGE_COUNTER_FIELDS = ("attempts", "finished", "wins")


def declare_instruments(registry: MetricsRegistry) -> MetricsRegistry:
    """Declare every canonical instrument up front (schema stability).

    A run that never touches a subsystem still snapshots the same key set
    as one that does — zeros, not absences.
    """
    for key in STAT_COUNTERS:
        registry.counter(f"stcg.{key}")
    registry.gauge("stcg.tree_nodes", mode="max")
    registry.histogram("stcg.case_length", CASE_LENGTH_BOUNDS)
    for stage in SOLVER_STAGES:
        for field in _STAGE_COUNTER_FIELDS:
            registry.counter(f"solver.stage.{stage}.{field}")
        registry.gauge(f"solver.stage.{stage}.seconds", mode="sum")
    for key in CACHE_COUNTERS:
        registry.counter(f"cache.{key}")
    registry.counter("cache.verdict_skips")
    registry.counter("cache.dedup_links")
    registry.gauge("cache.unique_states", mode="max")
    registry.gauge("kernel.enabled", mode="max")
    registry.counter("kernel.specialized_blocks")
    registry.counter("kernel.fallback_blocks")
    registry.counter("kernel.steps")
    registry.gauge("solverc.enabled", mode="max")
    for key in SolvercStats.KEYS:
        registry.counter(f"solverc.{key}")
    for key in FUZZ_COUNTERS:
        registry.counter(f"fuzz.{key}")
    registry.gauge("fuzz.corpus_size", mode="max")
    return registry


def populate_registry(
    registry: MetricsRegistry,
    *,
    stats: Dict[str, int],
    solver_stages: Dict[str, Dict[str, float]],
    cache: Dict[str, int],
    kernel: Optional[Dict[str, object]],
    solverc: Dict[str, object],
    tree_nodes: int,
    dedup_links: int,
    verdict_skips: int,
    unique_states: int,
) -> MetricsRegistry:
    """Fold one finished run's legacy accumulators into ``registry``.

    The arguments are exactly the shapes the pre-registry code produced
    (``SolverStageMetrics.as_dict()``, ``SolveCache.stats()``,
    ``Simulator.kernel_stats()``, ``SolvercStats.as_dict()`` with an
    ``enabled`` key) — this is the migration seam, not a new format.
    """
    declare_instruments(registry)
    for key in STAT_COUNTERS:
        registry.counter(f"stcg.{key}").inc(int(stats.get(key, 0)))
    registry.gauge("stcg.tree_nodes", mode="max").record(float(tree_nodes))
    for stage, stat in solver_stages.items():
        for field in _STAGE_COUNTER_FIELDS:
            registry.counter(f"solver.stage.{stage}.{field}").inc(
                int(stat.get(field, 0))
            )
        registry.gauge(f"solver.stage.{stage}.seconds", mode="sum").record(
            float(stat.get("seconds", 0.0))
        )
    for key in CACHE_COUNTERS:
        registry.counter(f"cache.{key}").inc(int(cache.get(key, 0)))
    registry.counter("cache.verdict_skips").inc(int(verdict_skips))
    registry.counter("cache.dedup_links").inc(int(dedup_links))
    registry.gauge("cache.unique_states", mode="max").record(
        float(unique_states)
    )
    if kernel is not None:
        registry.gauge("kernel.enabled", mode="max").record(1.0)
        registry.counter("kernel.specialized_blocks").inc(
            int(kernel.get("specialized_blocks", 0))
        )
        registry.counter("kernel.fallback_blocks").inc(
            int(kernel.get("fallback_blocks", 0))
        )
        registry.counter("kernel.steps").inc(int(kernel.get("kernel_steps", 0)))
    else:
        registry.gauge("kernel.enabled", mode="max").record(0.0)
    registry.gauge("solverc.enabled", mode="max").record(
        1.0 if solverc.get("enabled") else 0.0
    )
    for key in SolvercStats.KEYS:
        registry.counter(f"solverc.{key}").inc(int(solverc.get(key, 0)))
    # Fuzz campaign counters ride along in the same stats dict (the
    # ``fuzz_*`` keys); absent on pure STCG/baseline runs, where the
    # declared instruments stay at zero.
    for key in FUZZ_COUNTERS:
        registry.counter(f"fuzz.{key}").inc(int(stats.get(f"fuzz_{key}", 0)))
    registry.gauge("fuzz.corpus_size", mode="max").record(
        float(stats.get("fuzz_corpus_size", 0))
    )
    return registry


# ----------------------------------------------------------------------
# views: snapshot -> legacy telemetry payload shapes
# ----------------------------------------------------------------------


def solver_stages_view(
    snapshot: Dict[str, object]
) -> Dict[str, Dict[str, float]]:
    """The legacy ``solver_stages`` event payload: per-stage stat dicts.

    Stages with all-zero counters are omitted, matching
    ``SolverStageMetrics.as_dict()`` (which only lists stages that ran);
    pipeline order is preserved.
    """
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    # Stage names come from the snapshot itself (any counter named
    # ``solver.stage.<stage>.<field>``), not just the canonical list, so
    # a non-canonical stage tag survives the registry round-trip.
    named = set()
    for key in counters:
        if key.startswith("solver.stage.") and key.count(".") >= 3:
            named.add(key[len("solver.stage."):].rsplit(".", 1)[0])
    ordered = [s for s in SOLVER_STAGES if s in named]
    ordered += [s for s in sorted(named) if s not in SOLVER_STAGES]
    stages: Dict[str, Dict[str, float]] = {}
    for stage in ordered:
        stat = {
            field: int(counters.get(f"solver.stage.{stage}.{field}", 0))
            for field in _STAGE_COUNTER_FIELDS
        }
        seconds = (gauges.get(f"solver.stage.{stage}.seconds") or {}).get(
            "value"
        )
        stat["seconds"] = round(float(seconds or 0.0), 6)
        if any(stat.values()):
            stages[stage] = stat
    return stages


def cache_view(snapshot: Dict[str, object]) -> Dict[str, int]:
    """The legacy ``cache_stats`` payload (plus ``unique_states``)."""
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    view = {key: int(counters.get(f"cache.{key}", 0))
            for key in CACHE_COUNTERS}
    view["verdict_skips"] = int(counters.get("cache.verdict_skips", 0))
    view["dedup_links"] = int(counters.get("cache.dedup_links", 0))
    unique = (gauges.get("cache.unique_states") or {}).get("value")
    view["unique_states"] = int(unique or 0)
    return view


def kernel_view(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The legacy ``kernel_stats`` payload (minus ``fallback_classes``,
    which is a label list, not a metric — callers carry it separately)."""
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    enabled = bool((gauges.get("kernel.enabled") or {}).get("value"))
    view: Dict[str, object] = {"enabled": enabled}
    if enabled:
        view["specialized_blocks"] = int(
            counters.get("kernel.specialized_blocks", 0)
        )
        view["fallback_blocks"] = int(
            counters.get("kernel.fallback_blocks", 0)
        )
        view["kernel_steps"] = int(counters.get("kernel.steps", 0))
    return view


def solverc_view(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The legacy ``solverc_stats`` payload."""
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    enabled = bool((gauges.get("solverc.enabled") or {}).get("value"))
    view: Dict[str, object] = {"enabled": enabled}
    if enabled:
        view.update({
            key: int(counters.get(f"solverc.{key}", 0))
            for key in SolvercStats.KEYS
        })
    return view
