"""A deterministic, schema-stable metrics registry.

Three instrument kinds cover every counter the reproduction tracks:

* :class:`Counter` — a monotone integer.  Counters are the *deterministic*
  part of the registry: at a fixed seed, every counter is a pure function
  of (model, config), so workers=1 and workers=N runs merge to identical
  totals and the equivalence suite pins them bit-for-bit.
* :class:`Gauge` — a float with a declared combine mode (``sum`` / ``max``
  / ``min``).  Wall-clock totals and peak sizes live here; gauges may
  carry timing and are therefore *excluded* from determinism pins.
* :class:`Histogram` — integer bucket counts over **fixed bounds declared
  at registration**.  Bucket ``i`` counts observations ``<= bounds[i]``;
  the final implicit bucket counts the overflow.  Bucket counts share the
  counters' determinism contract; only ``sum`` is a float.

Snapshots are plain JSON documents tagged :data:`METRICS_SCHEMA` whose key
set is fixed by the declared instruments — a zero counter and an absent
counter must never look different run-to-run.  :func:`merge_snapshots` is
commutative (integer sums, IEEE float addition is commutative, min/max are
symmetric), so per-worker registries can be folded together in any pairing;
aggregators that need *bit*-stable float sums additionally sort their
inputs into a canonical order before folding (see
:func:`repro.telemetry.events.build_manifest`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MetricsError

__all__ = [
    "Counter",
    "Gauge",
    "GAUGE_MODES",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "delta_snapshots",
    "empty_snapshot",
    "merge_snapshots",
]

#: Version tag embedded in every snapshot.
METRICS_SCHEMA = "repro.metrics/1"

#: Commutative combine modes a gauge may declare.
GAUGE_MODES = ("sum", "max", "min")


class Counter:
    """A monotone integer instrument."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        n = int(n)
        if n < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc({n}))"
            )
        self.value += n


class Gauge:
    """A float instrument with a declared commutative combine mode.

    ``value`` is ``None`` until the first :meth:`record`, so ``min``-mode
    gauges need no sentinel and empty registries stay schema-stable.
    """

    __slots__ = ("name", "mode", "value")
    kind = "gauge"

    def __init__(self, name: str, mode: str = "sum"):
        if mode not in GAUGE_MODES:
            raise MetricsError(
                f"gauge {name!r}: mode must be one of {GAUGE_MODES}, "
                f"got {mode!r}"
            )
        self.name = name
        self.mode = mode
        self.value: Optional[float] = None

    def record(self, v: float) -> None:
        v = float(v)
        self.value = _combine_gauge(self.mode, self.value, v)


class Histogram:
    """Integer bucket counts over fixed, declared bounds.

    ``bounds`` must be strictly increasing; observation ``v`` lands in the
    first bucket with ``v <= bound``, or the implicit overflow bucket, so
    ``len(counts) == len(bounds) + 1`` always.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float]):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise MetricsError(f"histogram {name!r} needs at least one bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram {name!r}: bounds must be strictly increasing, "
                f"got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, v: float) -> None:
        v = float(v)
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.sum += v


class MetricsRegistry:
    """A named collection of instruments with a schema-stable snapshot.

    Instruments are get-or-create: asking twice for the same name returns
    the same object, while re-declaring a name as a different kind (or
    with different gauge mode / histogram bounds) raises
    :class:`~repro.errors.MetricsError` — the schema is part of the
    instrument's identity, never silently widened.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- declaration / lookup ------------------------------------------

    def counter(self, name: str) -> Counter:
        self._check_name(name, "counter")
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str, mode: str = "sum") -> Gauge:
        self._check_name(name, "gauge")
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, mode)
        elif instrument.mode != mode:
            raise MetricsError(
                f"gauge {name!r} already declared with mode "
                f"{instrument.mode!r}, not {mode!r}"
            )
        return instrument

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        self._check_name(name, "histogram")
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise MetricsError(
                f"histogram {name!r} already declared with bounds "
                f"{instrument.bounds}, not {tuple(bounds)}"
            )
        return instrument

    def _check_name(self, name: str, kind: str) -> None:
        if not name or not isinstance(name, str):
            raise MetricsError(f"instrument name must be a non-empty string, "
                               f"got {name!r}")
        for registered, existing in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if registered != kind and name in existing:
                raise MetricsError(
                    f"{name!r} is already a {registered}, cannot "
                    f"re-declare it as a {kind}"
                )

    # -- snapshot ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready document over every declared instrument.

        Deterministic: names are sorted, every declared instrument appears
        (zeros included), floats are rounded to 9 decimals so repr noise
        never leaks into stream comparisons.
        """
        return {
            "schema": METRICS_SCHEMA,
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: {
                    "mode": g.mode,
                    "value": _round(g.value),
                }
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": _round(h.sum),
                }
                for name, h in sorted(self._histograms.items())
            },
        }


def empty_snapshot() -> Dict[str, object]:
    """The snapshot of a registry with no instruments."""
    return MetricsRegistry().snapshot()


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), 9)


def _combine_gauge(
    mode: str, a: Optional[float], b: Optional[float]
) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    if mode == "sum":
        return a + b
    if mode == "max":
        return max(a, b)
    return min(a, b)


def merge_snapshots(
    a: Dict[str, object], b: Dict[str, object]
) -> Dict[str, object]:
    """Commutatively merge two snapshots into a new one.

    ``merge(a, b) == merge(b, a)`` by construction: counters and histogram
    bucket counts are integer sums, gauges combine through their declared
    symmetric mode, and instruments present on only one side pass through
    unchanged.  Conflicting declarations (same name, different gauge mode
    or histogram bounds) raise :class:`~repro.errors.MetricsError`.
    """
    _check_schema(a)
    _check_schema(b)
    counters: Dict[str, int] = dict(a.get("counters") or {})
    for name, value in (b.get("counters") or {}).items():
        counters[name] = int(counters.get(name, 0)) + int(value)
    gauges: Dict[str, Dict[str, object]] = {
        name: dict(stat) for name, stat in (a.get("gauges") or {}).items()
    }
    for name, stat in (b.get("gauges") or {}).items():
        mine = gauges.get(name)
        if mine is None:
            gauges[name] = dict(stat)
            continue
        if mine.get("mode") != stat.get("mode"):
            raise MetricsError(
                f"gauge {name!r}: cannot merge mode {mine.get('mode')!r} "
                f"with {stat.get('mode')!r}"
            )
        mine["value"] = _round(_combine_gauge(
            str(mine["mode"]), _opt_float(mine.get("value")),
            _opt_float(stat.get("value")),
        ))
    histograms: Dict[str, Dict[str, object]] = {
        name: {**stat, "bounds": list(stat["bounds"]),
               "counts": list(stat["counts"])}
        for name, stat in (a.get("histograms") or {}).items()
    }
    for name, stat in (b.get("histograms") or {}).items():
        mine = histograms.get(name)
        if mine is None:
            histograms[name] = {**stat, "bounds": list(stat["bounds"]),
                                "counts": list(stat["counts"])}
            continue
        if list(mine["bounds"]) != list(stat["bounds"]):
            raise MetricsError(
                f"histogram {name!r}: cannot merge bounds "
                f"{mine['bounds']} with {stat['bounds']}"
            )
        mine["counts"] = [
            int(x) + int(y) for x, y in zip(mine["counts"], stat["counts"])
        ]
        mine["count"] = int(mine["count"]) + int(stat["count"])
        mine["sum"] = _round(float(mine["sum"]) + float(stat["sum"]))
    return {
        "schema": METRICS_SCHEMA,
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
    }


def delta_snapshots(
    new: Dict[str, object], old: Dict[str, object]
) -> Dict[str, object]:
    """What happened between ``old`` and ``new`` (same-registry snapshots).

    Counters and histogram counts subtract (never below zero is *not*
    enforced — a negative delta is a real signal that the streams were not
    successive snapshots of one registry); ``sum``-mode gauges subtract,
    ``max``/``min`` gauges pass the newer value through (a peak has no
    meaningful difference).
    """
    _check_schema(new)
    _check_schema(old)
    old_counters = old.get("counters") or {}
    counters = {
        name: int(value) - int(old_counters.get(name, 0))
        for name, value in (new.get("counters") or {}).items()
    }
    gauges: Dict[str, Dict[str, object]] = {}
    old_gauges = old.get("gauges") or {}
    for name, stat in (new.get("gauges") or {}).items():
        prior = old_gauges.get(name) or {}
        if stat.get("mode") == "sum" and _opt_float(prior.get("value")) is not None:
            value = _round(
                (_opt_float(stat.get("value")) or 0.0)
                - (_opt_float(prior.get("value")) or 0.0)
            )
        else:
            value = stat.get("value")
        gauges[name] = {"mode": stat.get("mode"), "value": value}
    histograms: Dict[str, Dict[str, object]] = {}
    old_histograms = old.get("histograms") or {}
    for name, stat in (new.get("histograms") or {}).items():
        prior = old_histograms.get(name)
        if prior is None or list(prior["bounds"]) != list(stat["bounds"]):
            histograms[name] = {**stat, "bounds": list(stat["bounds"]),
                                "counts": list(stat["counts"])}
            continue
        histograms[name] = {
            "bounds": list(stat["bounds"]),
            "counts": [
                int(x) - int(y)
                for x, y in zip(stat["counts"], prior["counts"])
            ],
            "count": int(stat["count"]) - int(prior["count"]),
            "sum": _round(float(stat["sum"]) - float(prior["sum"])),
        }
    return {
        "schema": METRICS_SCHEMA,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def _opt_float(value) -> Optional[float]:
    return None if value is None else float(value)


def _check_schema(snapshot: Dict[str, object]) -> None:
    schema = snapshot.get("schema")
    if schema != METRICS_SCHEMA:
        raise MetricsError(
            f"expected a {METRICS_SCHEMA} snapshot, got schema {schema!r}"
        )


def fold_snapshots(
    snapshots: List[Tuple[object, Dict[str, object]]]
) -> Dict[str, object]:
    """Merge ``(sort_key, snapshot)`` pairs in canonical key order.

    The canonical order makes float sums *bit*-stable no matter what order
    the snapshots arrived in (completion order differs between workers=1
    and workers=N; sorted order does not).
    """
    merged = empty_snapshot()
    for _, snapshot in sorted(snapshots, key=lambda item: repr(item[0])):
        merged = merge_snapshots(merged, snapshot)
    return merged
