"""Unified experiment metrics: a deterministic, schema-stable registry.

The registry (:class:`MetricsRegistry`) is the single namespace the
formerly ad-hoc subsystem counter bundles — solver stages, solve caches,
sim kernel, solver kernel — now live in.  Snapshots are JSON documents
tagged ``repro.metrics/1``; :func:`merge_snapshots` folds per-worker
registries together commutatively so workers=1 and workers=N aggregate
identically, and :func:`delta_snapshots` supports before/after analysis.
The old telemetry event kinds (``solver_stages``, ``cache_stats``,
``kernel_stats``, ``solverc_stats``) are derived as *views* over
snapshots by :mod:`repro.metrics.instruments`.
"""

from repro.metrics.instruments import (
    CASE_LENGTH_BOUNDS,
    FUZZ_COUNTERS,
    cache_view,
    declare_instruments,
    kernel_view,
    populate_registry,
    solver_stages_view,
    solverc_view,
)
from repro.metrics.registry import (
    Counter,
    Gauge,
    GAUGE_MODES,
    Histogram,
    METRICS_SCHEMA,
    MetricsRegistry,
    delta_snapshots,
    empty_snapshot,
    fold_snapshots,
    merge_snapshots,
)

__all__ = [
    "CASE_LENGTH_BOUNDS",
    "Counter",
    "FUZZ_COUNTERS",
    "GAUGE_MODES",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "cache_view",
    "declare_instruments",
    "delta_snapshots",
    "empty_snapshot",
    "fold_snapshots",
    "kernel_view",
    "merge_snapshots",
    "populate_registry",
    "solver_stages_view",
    "solverc_view",
]
