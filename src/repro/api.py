"""The stable public facade of the reproduction: ``repro.api``.

Downstream code (the CLI, the examples, the benchmark suite) talks to this
module instead of reaching into ``repro.harness`` / ``repro.exec``
internals.  Two entry points cover the whole workflow, both keyword-only:

* :func:`generate` — one generation run of one tool on one model,
* :func:`run_experiment` — the paper's (tool × model × repetition) matrix,
  fanned out over worker processes with crash isolation, per-cell
  timeouts, and structured JSONL telemetry.

The paper-artifact renderers (``table1`` … ``fig4``) are re-exported here
so a facade import is all an application needs::

    from repro import api

    result = api.generate("CPUTask", tool="STCG", budget_s=10.0, seed=0)
    experiment = api.run_experiment(
        models=["CPUTask", "TCP"], budget_s=5.0, repetitions=3,
        workers=4, cell_timeout=60.0, events_out="run.jsonl",
    )
    print(api.table3(experiment.outcomes))
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Union

from repro.core.config import (
    CacheConfig,
    FuzzConfig,
    KernelConfig,
    StcgConfig,
    StoreConfig,
)
from repro.core.result import GenerationResult
from repro.core.stcg import StcgGenerator
from repro.errors import HarnessError
from repro.fuzz.engine import FuzzGenerator, HybridGenerator
from repro.exec.cells import CellFailure, derive_seed
from repro.exec.executor import (
    ALL_TOOLS,
    ExperimentResult,
    TOOLS,
    ToolOutcome,
    _CellAlarm,
    execute_matrix,
    run_single,
)
from repro.harness.figures import figure3, figure4, figure4_model
from repro.harness.runner import MatrixConfig
from repro.harness.tables import table1, table2, table3
from repro.model.graph import CompiledModel
from repro.models.registry import (
    BENCHMARKS,
    BenchmarkModel,
    benchmark_names,
    get_benchmark,
)
from repro.obs.report import render_report
from repro.provenance import PROVENANCE_SCHEMA
from repro.solverc.compiler import SolvercStats
from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.events import (
    EventLog,
    emit_trace_events,
    fuzz_stats_payload,
    read_events,
    store_stats_payload,
)
from repro.telemetry.explain import load_provenance, render_explain

__all__ = [
    "ALL_TOOLS",
    "CacheConfig",
    "CellFailure",
    "FuzzConfig",
    "EventLog",
    "ExperimentResult",
    "GenerationResult",
    "KernelConfig",
    "MatrixConfig",
    "PROVENANCE_SCHEMA",
    "SolvercStats",
    "StcgConfig",
    "StoreConfig",
    "TOOLS",
    "ToolOutcome",
    "derive_seed",
    "figure3",
    "figure4",
    "figure4_model",
    "generate",
    "list_models",
    "load_provenance",
    "read_events",
    "render_dashboard",
    "render_explain",
    "render_report",
    "run_experiment",
    "table1",
    "table2",
    "table3",
]

ModelLike = Union[str, BenchmarkModel, CompiledModel]


def list_models() -> List[str]:
    """Names of the registered benchmark models."""
    return benchmark_names()


def _as_benchmark(model: ModelLike) -> BenchmarkModel:
    """Accept a benchmark name, a registry entry, or a compiled model."""
    if isinstance(model, BenchmarkModel):
        return model
    if isinstance(model, str):
        return get_benchmark(model)
    if isinstance(model, CompiledModel):
        # Ad-hoc wrapper for user-built models; the lambda builder is not
        # picklable, which is fine — single runs stay in-process.
        return BenchmarkModel(
            name=model.name,
            functionality="ad-hoc model",
            builder=lambda compiled=model: compiled,
            paper_branches=0,
            paper_blocks=0,
        )
    raise HarnessError(
        "model must be a name, BenchmarkModel or CompiledModel, "
        f"got {type(model).__name__}"
    )


def generate(
    model: ModelLike,
    *,
    tool: str = "STCG",
    budget_s: float = 10.0,
    seed: int = 0,
    sldv_max_depth: int = 6,
    config: Optional[StcgConfig] = None,
    cell_timeout: Optional[float] = None,
    events_out: Optional[str] = None,
    trace: bool = False,
    provenance: bool = True,
    stcg_overrides: Optional[dict] = None,
    store_dir: str = "",
) -> GenerationResult:
    """One generation run of one tool on one model.

    ``model`` may be a benchmark name (``"CPUTask"``), a
    :class:`BenchmarkModel`, or a user-built :class:`CompiledModel`.
    ``config`` (STCG/Fuzz/Hybrid only) overrides ``budget_s``/``seed``
    with a full :class:`StcgConfig`; ``stcg_overrides`` (same tools,
    exclusive with
    ``config``) applies extra :class:`StcgConfig` fields on top of
    ``budget_s``/``seed`` — e.g. ``kernels=KernelConfig(solver=False)``
    or ``caches=CacheConfig(encoding_size=0)`` — matching the
    ``run_experiment`` knob of the same name.  ``cell_timeout`` bounds
    the run's wall clock (raising :class:`~repro.errors.CellTimeout`);
    ``events_out`` streams run telemetry to a JSONL file and writes a
    manifest next to it.  ``trace`` turns on deep generator tracing:
    phase/solver-stage aggregates land in ``result.trace_data`` and —
    with ``events_out`` — as ``repro.trace/1`` events in the stream (see
    ``repro report``).  ``provenance`` controls the objective-level
    coverage ledger (``repro.provenance/1``): the snapshot lands in
    ``result.provenance`` and — with ``events_out`` — as a
    ``provenance`` event folded into the manifest (see ``repro explain``
    and ``repro dashboard``).  ``store_dir`` (STCG/Fuzz/Hybrid only)
    enables the persistent warm-start store (:mod:`repro.store`) rooted
    at that directory: verdicts, compiled-bundle markers, contraction
    snapshots, encodings, and fuzz corpora persist across runs, and
    ``store_stats`` telemetry lands in the event stream.
    """
    if tool not in ALL_TOOLS:
        raise HarnessError(
            f"unknown tool {tool!r}; available: {', '.join(ALL_TOOLS)}"
        )
    stcg_family = tool in ("STCG", "Fuzz", "Hybrid")
    if budget_s <= 0:
        raise HarnessError(f"budget_s must be positive, got {budget_s!r}")
    if config is not None and not stcg_family:
        raise HarnessError("config= applies to STCG/Fuzz/Hybrid only")
    if stcg_overrides:
        if not stcg_family:
            raise HarnessError(
                "stcg_overrides= applies to STCG/Fuzz/Hybrid only"
            )
        if config is not None:
            raise HarnessError(
                "pass either config= or stcg_overrides=, not both"
            )
        overrides = dict(stcg_overrides)
        overrides.setdefault("provenance", provenance)
        config = StcgConfig(budget_s=budget_s, seed=seed, **overrides)
    if store_dir:
        if not stcg_family:
            raise HarnessError("store_dir= applies to STCG/Fuzz/Hybrid only")
        if config is None:
            config = StcgConfig(
                budget_s=budget_s, seed=seed, provenance=provenance
            )
        if config.store is None:
            config = replace(config, store=StoreConfig(path=store_dir))
    if config is not None and trace and not config.trace:
        config = replace(config, trace=True)
    bench = _as_benchmark(model)
    events = EventLog(events_out) if events_out else None
    try:
        if events is not None:
            events.emit(
                "run_started",
                model=bench.name,
                tool=tool,
                budget_s=(config.budget_s if config else budget_s),
                seed=(config.seed if config else seed),
            )
        started = time.monotonic()
        with _CellAlarm(cell_timeout):
            if config is not None:
                if tool == "Fuzz":
                    result = FuzzGenerator(bench.build(), config).run()
                elif tool == "Hybrid":
                    result = HybridGenerator(bench.build(), config).run()
                else:
                    result = StcgGenerator(bench.build(), config).run()
            else:
                result = run_single(
                    tool, bench, budget_s, seed, sldv_max_depth, trace,
                    provenance=provenance,
                )
        if events is not None:
            events.emit(
                "run_finished",
                model=bench.name,
                tool=tool,
                duration_s=round(time.monotonic() - started, 6),
                decision=result.decision,
                condition=result.condition,
                mcdc=result.mcdc,
                cases=len(result.suite),
                stats=dict(result.stats),
            )
            for point in result.timeline:
                events.emit(
                    "timeline_point",
                    t=round(point.t, 6),
                    decision=point.decision_coverage,
                    origin=point.origin,
                    new_branches=point.new_branches,
                )
            emit_trace_events(
                events, {"model": bench.name, "tool": tool}, result.trace_data
            )
            if "fuzz_executions" in result.stats:
                events.emit(
                    "fuzz_stats",
                    model=bench.name,
                    tool=tool,
                    **fuzz_stats_payload(result.stats),
                )
            if "store_reads" in result.stats:
                events.emit(
                    "store_stats",
                    model=bench.name,
                    tool=tool,
                    **store_stats_payload(result.stats),
                )
            if result.provenance:
                events.emit(
                    "provenance",
                    model=bench.name,
                    tool=tool,
                    schema=PROVENANCE_SCHEMA,
                    provenance=result.provenance,
                )
            events.write_manifest(_manifest_path(events_out))
        return result
    finally:
        if events is not None:
            events.close()


def run_experiment(
    models: Optional[Sequence[ModelLike]] = None,
    *,
    tools: Sequence[str] = TOOLS,
    budget_s: float = 10.0,
    repetitions: int = 3,
    sldv_repetitions: int = 1,
    seed: int = 0,
    sldv_max_depth: int = 6,
    workers: int = 1,
    cell_timeout: Optional[float] = None,
    events_out: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    trace: bool = False,
    provenance: bool = True,
    stcg_overrides: Optional[dict] = None,
    heartbeat_s: Optional[float] = None,
    stall_fraction: float = 0.5,
    heartbeat_dir: Optional[str] = None,
    store_dir: str = "",
) -> ExperimentResult:
    """Run the (tool × model × repetition) matrix, possibly in parallel.

    ``models=None`` runs all registered benchmarks.  ``workers`` fans the
    cells out over that many processes; ``workers=1`` and ``workers=N``
    aggregate to identical coverage numbers.  A cell that crashes or
    exceeds ``cell_timeout`` is recorded in ``result.failures`` instead of
    aborting the matrix.  ``events_out`` streams one JSON line per event
    and writes a ``*.manifest.json`` summary when the matrix finishes.
    ``trace`` enables deep generator tracing per cell; the aggregates are
    forwarded into the event stream as ``repro.trace/1`` events.
    ``stcg_overrides`` applies extra :class:`StcgConfig` fields
    (``kernels=``, ``caches=``, ablation flags) to every STCG cell.
    ``provenance`` controls every cell's objective-level coverage ledger
    (``repro.provenance/1``); the per-cell snapshots are emitted as
    ``provenance`` events and folded into the manifest's ``provenance``
    section.
    ``heartbeat_s`` streams per-worker liveness beats to JSONL sidecars
    (in ``heartbeat_dir``, default ``<events_out>.hb``) and arms the
    parent's stall watchdog, which emits ``cell_stalled`` events when a
    running cell goes quiet for ``stall_fraction`` of its timeout.
    ``store_dir`` enables the persistent warm-start store
    (:mod:`repro.store`) for every STCG-family cell; store keys are
    scoped per cell, so parallel workers never contend on one document.
    """
    for name in tools:
        if name not in ALL_TOOLS:
            raise HarnessError(
                f"unknown tool {name!r}; available: {', '.join(ALL_TOOLS)}"
            )
    # MatrixConfig is the single source of truth for matrix validation.
    config = MatrixConfig(
        budget_s=budget_s,
        repetitions=repetitions,
        sldv_repetitions=sldv_repetitions,
        seed=seed,
        sldv_max_depth=sldv_max_depth,
    )
    benches = [
        _as_benchmark(model)
        for model in (models if models is not None else BENCHMARKS)
    ]
    if not benches:
        raise HarnessError("run_experiment needs at least one model")
    events = EventLog(events_out) if events_out else None
    try:
        result = execute_matrix(
            benches,
            tools,
            budget_s=config.budget_s,
            repetitions=config.repetitions,
            sldv_repetitions=config.sldv_repetitions,
            seed=config.seed,
            sldv_max_depth=config.sldv_max_depth,
            workers=workers,
            cell_timeout=cell_timeout,
            progress=progress,
            events=events,
            trace=trace,
            provenance=provenance,
            stcg_overrides=stcg_overrides,
            heartbeat_s=heartbeat_s,
            stall_fraction=stall_fraction,
            heartbeat_dir=heartbeat_dir,
            store_dir=store_dir,
        )
        if events is not None:
            events.write_manifest(_manifest_path(events_out))
        return result
    finally:
        if events is not None:
            events.close()


def _manifest_path(events_out: str) -> str:
    """``run.jsonl`` → ``run.manifest.json`` (or append the suffix)."""
    if events_out.endswith(".jsonl"):
        return events_out[: -len(".jsonl")] + ".manifest.json"
    return events_out + ".manifest.json"
