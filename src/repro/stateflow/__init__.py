"""Stateflow-like hierarchical state machines embedded as chart blocks."""

from repro.stateflow.chart import ChartBlock
from repro.stateflow.spec import ChartSpec, StateDef, TransitionDef, extract_atoms

__all__ = ["ChartBlock", "ChartSpec", "StateDef", "TransitionDef", "extract_atoms"]
