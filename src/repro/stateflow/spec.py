"""Chart specifications: states, transitions, guards and actions.

A :class:`ChartSpec` declares a Stateflow-like state machine:

* typed inputs, outputs and local variables (outputs and locals are chart
  state — the paper's M/ML category — and persist between steps),
* states, optionally nested one or more levels under parent states; only
  leaf states are *locations* the chart can occupy,
* prioritized transitions with guard expressions and assignment actions in
  the text DSL (:mod:`repro.expr.parser`),
* entry actions per state and during actions executed when no transition
  fires.

Step semantics (documented simplification of Stateflow):

1. candidate transitions are the active leaf's outgoing transitions in
   priority order, then its ancestors' (outer transitions yield to inner),
2. the first transition whose guard holds fires: its actions run, then the
   target's entry actions (entering a composite state descends into its
   initial child, running entry actions along the way),
3. if none fires, the active leaf's during actions run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ChartError
from repro.expr import ops as x
from repro.expr.ast import Binary, Const, Expr, Ite, Unary, Var
from repro.expr import ast as east
from repro.expr.parser import parse_expr
from repro.expr.types import BOOL, Type


@dataclass
class ChartVariable:
    """A declared chart input/output/local."""

    name: str
    ty: Type
    init: object = None
    lo: Optional[float] = None
    hi: Optional[float] = None
    role: str = "local"  # input | output | local

    def var(self) -> Var:
        return Var(self.name, self.ty, self.lo, self.hi)


@dataclass
class Assignment:
    """One ``target = expression`` action."""

    target: str
    expr: Expr
    text: str


@dataclass
class StateDef:
    """A chart state; ``parent`` nests it inside a composite state."""

    name: str
    index: int
    parent: Optional["StateDef"] = None
    children: List["StateDef"] = field(default_factory=list)
    initial_child: Optional["StateDef"] = None
    entry: List[Assignment] = field(default_factory=list)
    during: List[Assignment] = field(default_factory=list)
    #: leaf location index; -1 for composite states.
    location: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def depth(self) -> int:
        level = 0
        node = self.parent
        while node is not None:
            level += 1
            node = node.parent
        return level

    def ancestors(self) -> List["StateDef"]:
        chain = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def __repr__(self) -> str:
        return f"StateDef({self.name!r})"


@dataclass
class TransitionDef:
    """A guarded transition between states."""

    index: int
    source: StateDef
    target: StateDef
    guard: Expr
    guard_text: str
    actions: List[Assignment]
    priority: int

    def __repr__(self) -> str:
        return (
            f"Transition({self.source.name}->{self.target.name}, "
            f"[{self.guard_text}])"
        )


class ChartSpec:
    """Builder/spec for one chart."""

    def __init__(self, name: str):
        self.name = name
        self.variables: Dict[str, ChartVariable] = {}
        self.states: Dict[str, StateDef] = {}
        self.transitions: List[TransitionDef] = []
        self._root_initial: Optional[StateDef] = None
        self._state_count = 0
        self._leaves: List[StateDef] = []

    # -- variables -----------------------------------------------------------

    def input(self, name: str, ty: Type, lo=None, hi=None) -> None:
        self._declare(ChartVariable(name, ty, None, lo, hi, "input"))

    def output(self, name: str, ty: Type, init) -> None:
        self._declare(ChartVariable(name, ty, init, role="output"))

    def local(self, name: str, ty: Type, init) -> None:
        self._declare(ChartVariable(name, ty, init, role="local"))

    def _declare(self, variable: ChartVariable) -> None:
        if variable.name in self.variables:
            raise ChartError(f"chart variable {variable.name!r} declared twice")
        self.variables[variable.name] = variable

    @property
    def input_names(self) -> List[str]:
        return [v.name for v in self.variables.values() if v.role == "input"]

    @property
    def output_names(self) -> List[str]:
        return [v.name for v in self.variables.values() if v.role == "output"]

    @property
    def local_names(self) -> List[str]:
        return [v.name for v in self.variables.values() if v.role == "local"]

    # -- states -----------------------------------------------------------------

    def state(
        self,
        name: str,
        parent: Optional[StateDef] = None,
        entry: Sequence[str] = (),
        during: Sequence[str] = (),
    ) -> StateDef:
        if name in self.states:
            raise ChartError(f"state {name!r} declared twice")
        state = StateDef(name, self._state_count, parent)
        self._state_count += 1
        self.states[name] = state
        if parent is not None:
            parent.children.append(state)
        state.entry = [self._assignment(text) for text in entry]
        state.during = [self._assignment(text) for text in during]
        return state

    def initial(self, state: StateDef, of: Optional[StateDef] = None) -> None:
        """Mark the initial (sub)state of the chart or of a composite state."""
        if of is None:
            if state.parent is not None:
                raise ChartError("chart initial state must be top-level")
            self._root_initial = state
        else:
            if state.parent is not of:
                raise ChartError(
                    f"{state.name!r} is not a child of {of.name!r}"
                )
            of.initial_child = state

    # -- transitions ----------------------------------------------------------------

    def transition(
        self,
        source: StateDef,
        target: StateDef,
        guard: str = "true",
        actions: Sequence[str] = (),
        priority: int = 0,
    ) -> TransitionDef:
        guard_expr = parse_expr(guard, self._symbols())
        if not guard_expr.ty.is_bool:
            raise ChartError(f"guard {guard!r} is not boolean")
        transition = TransitionDef(
            index=len(self.transitions),
            source=source,
            target=target,
            guard=guard_expr,
            guard_text=guard,
            actions=[self._assignment(text) for text in actions],
            priority=priority,
        )
        self.transitions.append(transition)
        return transition

    # -- finalize -----------------------------------------------------------------

    def finalize(self) -> None:
        """Validate and assign leaf location indices (idempotent)."""
        if self._leaves:
            return
        if self._root_initial is None:
            raise ChartError(f"chart {self.name!r} has no initial state")
        for state in self.states.values():
            if not state.is_leaf and state.initial_child is None:
                raise ChartError(
                    f"composite state {state.name!r} has no initial child"
                )
        for state in self.states.values():
            if state.is_leaf:
                state.location = len(self._leaves)
                self._leaves.append(state)

    @property
    def leaves(self) -> List[StateDef]:
        self.finalize()
        return list(self._leaves)

    def initial_leaf(self) -> StateDef:
        self.finalize()
        return self.enter_target(self._root_initial)

    def enter_target(self, state: StateDef) -> StateDef:
        """Resolve a transition target to the leaf actually entered."""
        node = state
        while not node.is_leaf:
            node = node.initial_child
        return node

    def entry_chain(self, state: StateDef) -> List[StateDef]:
        """States whose entry actions run when transitioning into ``state``."""
        chain = [state]
        node = state
        while not node.is_leaf:
            node = node.initial_child
            chain.append(node)
        return chain

    def candidates_for(self, leaf: StateDef) -> List[TransitionDef]:
        """Transitions evaluated while ``leaf`` is active: own first
        (priority order), then each ancestor's."""
        self.finalize()
        ordered: List[TransitionDef] = []
        for scope in [leaf] + leaf.ancestors():
            scoped = [t for t in self.transitions if t.source is scope]
            scoped.sort(key=lambda t: (t.priority, t.index))
            ordered.extend(scoped)
        return ordered

    # -- helpers -----------------------------------------------------------------

    def _symbols(self) -> Dict[str, Var]:
        return {name: var.var() for name, var in self.variables.items()}

    def _assignment(self, text: str) -> Assignment:
        if "=" not in text:
            raise ChartError(f"action {text!r} is not an assignment")
        target, _, rhs = text.partition("=")
        target = target.strip()
        if target not in self.variables:
            raise ChartError(f"assignment to unknown variable {target!r}")
        if self.variables[target].role == "input":
            raise ChartError(f"cannot assign to input {target!r}")
        expr = parse_expr(rhs.strip(), self._symbols())
        return Assignment(target, expr, text)


def extract_atoms(guard: Expr) -> Tuple[List[Expr], Expr]:
    """Split a guard into condition atoms and a structure expression.

    Returns ``(atoms, structure)`` where ``structure`` is the guard with
    each atom replaced by a placeholder variable ``c{i}``.  Atoms are the
    maximal boolean subexpressions that are not AND/OR/NOT/XOR combinations
    (relational comparisons, boolean variables, casts).
    """
    atoms: List[Expr] = []
    seen: Dict[Expr, int] = {}

    def placeholder(atom: Expr) -> Expr:
        index = seen.get(atom)
        if index is None:
            index = len(atoms)
            seen[atom] = index
            atoms.append(atom)
        return Var(f"c{index}", BOOL)

    def visit(node: Expr) -> Expr:
        if isinstance(node, Const):
            return node
        if isinstance(node, Binary) and node.op in (
            east.AND,
            east.OR,
            east.XOR,
            east.IMPLIES,
        ):
            return Binary(node.op, visit(node.left), visit(node.right), node.ty)
        if isinstance(node, Unary) and node.op == east.NOT:
            return Unary(east.NOT, visit(node.arg), node.ty)
        if isinstance(node, Ite) and node.ty.is_bool and node.cond.ty.is_bool:
            return x.ite(visit(node.cond), visit(node.then), visit(node.orelse))
        return placeholder(node)

    structure = visit(guard)
    return atoms, structure
