"""Chart block: embeds a :class:`ChartSpec` into a model.

The chart's location, locals and outputs are state elements in the
``chart`` category (the paper's M/ML).  Concrete steps run the transition
logic procedurally and feed the coverage collector; symbolic steps build a
merged one-step encoding — with a *constant* location (STCG's state-aware
solving) the encoding collapses to the active state's transitions, while a
*symbolic* location (the SLDV-like unroller) expands into an ITE merge over
every leaf state, which is precisely the blow-up the paper attributes to
whole-model constraint solving.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ChartError
from repro.coverage.registry import Branch, CoverageRegistry, DecisionKind
from repro.expr import ops as x
from repro.expr.ast import Expr
from repro.expr.evaluator import evaluate
from repro.expr.types import INT
from repro.expr.variables import substitute
from repro.model.block import Block, STATE_CHART, StateElement
from repro.stateflow.spec import ChartSpec, StateDef, TransitionDef, extract_atoms

Frame = Dict[str, object]


class ChartBlock(Block):
    """Executable embedding of a chart spec."""

    def __init__(self, name: str, spec: ChartSpec):
        spec.finalize()
        super().__init__(name, len(spec.input_names), len(spec.output_names))
        self.spec = spec
        self._decisions: Dict[int, object] = {}  # transition index -> Decision
        self._points: Dict[int, Tuple[object, List[Expr]]] = {}
        self._pending: Dict[int, Frame] = {}

    # -- state ----------------------------------------------------------------

    def state_spec(self) -> Sequence[StateElement]:
        elements = [
            StateElement("loc", INT, self.spec.initial_leaf().location, STATE_CHART)
        ]
        for variable in self.spec.variables.values():
            if variable.role == "input":
                continue
            elements.append(
                StateElement(variable.name, variable.ty, variable.init, STATE_CHART)
            )
        return tuple(elements)

    # -- coverage ----------------------------------------------------------------

    def register_coverage(
        self, registry: CoverageRegistry, parent: Optional[Branch]
    ) -> None:
        for transition in self.spec.transitions:
            label = (
                f"{self.path}/t{transition.index}:"
                f"{transition.source.name}->{transition.target.name}"
            )
            decision = registry.register_decision(
                label,
                DecisionKind.TRANSITION,
                ("taken", "not_taken"),
                parent,
                extra_depth=transition.source.depth(),
            )
            self._decisions[transition.index] = decision
            atoms, structure = extract_atoms(transition.guard)
            if atoms:
                labels = [f"atom{i}" for i in range(len(atoms))]
                point = registry.register_condition_point(label, labels, structure)
                self._points[transition.index] = (point, atoms)

    # -- execution ---------------------------------------------------------------

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        frame: Frame = dict(zip(self.spec.input_names, inputs))
        for name in self.spec.local_names + self.spec.output_names:
            frame[name] = ctx.read_state(self, name)
        loc = ctx.read_state(self, "loc")
        if getattr(ctx.vo, "abstract", False):
            result = self._step_abstract(ctx, frame, loc)
        elif ctx.vo.symbolic:
            result = self._step_symbolic(ctx, frame, loc)
        else:
            result = self._step_concrete(ctx, frame, int(loc))
        self._pending[id(ctx)] = result
        return [result[name] for name in self.spec.output_names]

    def update(self, ctx, inputs, outputs) -> None:
        result = self._pending.pop(id(ctx), None)
        if result is None:
            raise ChartError(f"chart {self.path!r} update without compute")
        ctx.write_state(self, "loc", result["__loc"])
        for name in self.spec.local_names + self.spec.output_names:
            ctx.write_state(self, name, result[name])

    # -- concrete step ---------------------------------------------------------

    def _step_concrete(self, ctx, frame: Frame, loc: int) -> Frame:
        leaf = self.spec.leaves[loc]
        candidates = self.spec.candidates_for(leaf)
        fired: Optional[TransitionDef] = None
        for transition in candidates:
            taken = self._eval_guard_concrete(ctx, transition, frame)
            decision = self._decisions[transition.index]
            ctx.on_decision(decision, 0 if taken else 1)
            if taken:
                fired = transition
                break
        result = dict(frame)
        if fired is not None:
            for assignment in fired.actions:
                result[assignment.target] = evaluate(assignment.expr, result)
            target_leaf = self.spec.enter_target(fired.target)
            for state in self.spec.entry_chain(fired.target):
                for assignment in state.entry:
                    result[assignment.target] = evaluate(assignment.expr, result)
            result["__loc"] = target_leaf.location
        else:
            for assignment in leaf.during:
                result[assignment.target] = evaluate(assignment.expr, result)
            result["__loc"] = loc
        return result

    def _eval_guard_concrete(self, ctx, transition: TransitionDef, frame: Frame) -> bool:
        instrumented = self._points.get(transition.index)
        if instrumented is not None:
            point, atoms = instrumented
            vector = tuple(bool(evaluate(atom, frame)) for atom in atoms)
            ctx.on_condition_vector(point, vector)
        return bool(evaluate(transition.guard, frame))

    # -- symbolic step ---------------------------------------------------------

    def _step_symbolic(self, ctx, frame: Frame, loc) -> Frame:
        lifted: Frame = {k: x.lift(v) for k, v in frame.items()}
        loc_expr = x.lift(loc)
        #: transition index -> OR of taken / evaluated-but-not-taken
        #: conditions across leaves.  "Not taken" only counts where the
        #: guard is actually evaluated (source active, no higher-priority
        #: transition fired) — matching the concrete coverage semantics.
        taken_conditions: Dict[int, Expr] = {
            t.index: x.FALSE for t in self.spec.transitions
        }
        not_taken_conditions: Dict[int, Expr] = {
            t.index: x.FALSE for t in self.spec.transitions
        }
        if loc_expr.is_const:
            leaves = [self.spec.leaves[int(loc_expr.const_value())]]
        else:
            leaves = self.spec.leaves
        merged: Optional[Frame] = None
        for leaf in leaves:
            leaf_frame, leaf_taken, leaf_contexts = self._leaf_step_symbolic(
                lifted, leaf
            )
            active = x.eq(loc_expr, leaf.location)
            for index, condition in leaf_taken.items():
                taken_conditions[index] = x.lor(
                    taken_conditions[index], x.land(active, condition)
                )
                evaluated = leaf_contexts[index]
                not_taken = x.land(evaluated, x.lnot(condition))
                not_taken_conditions[index] = x.lor(
                    not_taken_conditions[index], x.land(active, not_taken)
                )
            if loc_expr.is_const:
                # Record condition atoms for obligation solving (single-leaf
                # encodings only: STCG always has a concrete location).
                for index, evaluated in leaf_contexts.items():
                    instrumented = self._points.get(index)
                    if instrumented is None:
                        continue
                    point, atoms = instrumented
                    atom_exprs = [self._subst(atom, frame) for atom in atoms]
                    ctx.record_condition_atoms(point, atom_exprs, evaluated)
            if merged is None:
                merged = leaf_frame
            else:
                merged = {
                    key: x.ite(active, leaf_frame[key], merged[key])
                    for key in leaf_frame
                }
        assert merged is not None
        for transition in self.spec.transitions:
            decision = self._decisions[transition.index]
            ctx.record_outcome_conditions(
                decision,
                [
                    taken_conditions[transition.index],
                    not_taken_conditions[transition.index],
                ],
            )
        return merged

    def _leaf_step_symbolic(
        self, frame: Frame, leaf: StateDef
    ) -> Tuple[Frame, Dict[int, Expr], Dict[int, Expr]]:
        """One-leaf encoding: merged frame, per-transition take conditions,
        and per-transition *evaluation* conditions (a guard is only evaluated
        when every higher-priority guard was false)."""
        candidates = self.spec.candidates_for(leaf)
        # During (no transition) result first; transitions merge in reverse.
        during_frame = dict(frame)
        for assignment in leaf.during:
            during_frame[assignment.target] = self._subst(
                assignment.expr, during_frame
            )
        during_frame["__loc"] = x.lift(leaf.location)

        guards = [self._subst(t.guard, frame) for t in candidates]
        taken: Dict[int, Expr] = {}
        contexts: Dict[int, Expr] = {}
        none_before: Expr = x.TRUE
        take_exprs: List[Expr] = []
        for transition, guard in zip(candidates, guards):
            contexts[transition.index] = none_before
            take_exprs.append(x.land(none_before, guard))
            none_before = x.land(none_before, x.lnot(guard))
        for transition, take in zip(candidates, take_exprs):
            taken[transition.index] = take

        merged = during_frame
        for transition, take in zip(reversed(candidates), reversed(take_exprs)):
            branch_frame = dict(frame)
            for assignment in transition.actions:
                branch_frame[assignment.target] = self._subst(
                    assignment.expr, branch_frame
                )
            for state in self.spec.entry_chain(transition.target):
                for assignment in state.entry:
                    branch_frame[assignment.target] = self._subst(
                        assignment.expr, branch_frame
                    )
            branch_frame["__loc"] = x.lift(
                self.spec.enter_target(transition.target).location
            )
            merged = {
                key: x.ite(take, branch_frame[key], merged[key]) for key in merged
            }
        return merged, taken, contexts

    # -- abstract (interval) step -----------------------------------------------

    def _step_abstract(self, ctx, frame: Frame, loc) -> Frame:
        """One sound over-approximating step over the interval domain.

        The location may be an interval covering several leaves; every leaf
        in range contributes its feasible transitions (guards evaluated over
        intervals), and the results are hulled.  Per transition the recorded
        "taken" condition is the hull of its guard over the active leaves —
        ``definitely_false`` there is a proof the transition can never fire
        from any state inside the envelope.
        """
        from repro.analysis.interval_eval import interval_eval
        from repro.analysis.intervalops import hull as a_hull, lift as a_lift
        from repro.solver.interval import (
            BOOL_FALSE,
            BOOL_UNKNOWN,
            Interval,
        )

        frame = {name: a_lift(value) for name, value in frame.items()}
        loc = a_lift(loc)
        lo = max(0, int(loc.lo))
        hi = min(len(self.spec.leaves) - 1, int(loc.hi))
        # Bottom element: the empty interval (so joining the first real
        # guard keeps definite truth/falsity intact).
        taken: Dict[int, object] = {
            t.index: Interval.empty() for t in self.spec.transitions
        }
        evaluated_any = set()
        merged: Optional[Frame] = None

        def apply_actions(base: Frame, assignments) -> Frame:
            updated = dict(base)
            for assignment in assignments:
                updated[assignment.target] = interval_eval(
                    assignment.expr, updated
                )
            return updated

        for leaf in self.spec.leaves[lo : hi + 1]:
            # "No transition" outcome: during actions, location unchanged.
            leaf_frame = apply_actions(frame, leaf.during)
            leaf_frame["__loc"] = Interval.point(leaf.location)
            for transition in self.spec.candidates_for(leaf):
                guard = interval_eval(transition.guard, frame)
                evaluated_any.add(transition.index)
                taken[transition.index] = a_hull(
                    taken[transition.index], guard
                )
                if guard.definitely_false:
                    continue
                branch_frame = apply_actions(frame, transition.actions)
                for state in self.spec.entry_chain(transition.target):
                    branch_frame = apply_actions(branch_frame, state.entry)
                branch_frame["__loc"] = Interval.point(
                    self.spec.enter_target(transition.target).location
                )
                leaf_frame = {
                    key: a_hull(leaf_frame[key], branch_frame[key])
                    for key in leaf_frame
                }
            merged = leaf_frame if merged is None else {
                key: a_hull(merged[key], leaf_frame[key]) for key in merged
            }
        if merged is None:  # empty location interval: state unchanged
            merged = dict(frame)
            merged["__loc"] = loc
        for transition in self.spec.transitions:
            decision = self._decisions[transition.index]
            taken_itv = taken[transition.index]
            if transition.index not in evaluated_any:
                # Source state unreachable inside this envelope: both
                # outcomes are provably dead.
                taken_itv = BOOL_FALSE
                not_taken = BOOL_FALSE
            elif taken_itv.definitely_true:
                # Guard constantly true whenever evaluated: the not-taken
                # outcome can never be observed.
                not_taken = BOOL_FALSE
            else:
                not_taken = BOOL_UNKNOWN
            ctx.record_outcome_conditions(decision, [taken_itv, not_taken])
        return merged

    @staticmethod
    def _subst(expr: Expr, frame: Frame) -> Expr:
        bindings = {
            name: x.lift(value)
            for name, value in frame.items()
            if name != "__loc"
        }
        return substitute(expr, bindings)
