"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the benchmark models and their sizes,
* ``info MODEL`` — a model's ports, state elements and decisions,
* ``generate MODEL`` — run a tool, print coverage, optionally export the
  suite, a coverage report and a minimized suite,
* ``fuzz MODEL`` — coverage-guided mutational fuzzing (``--hybrid`` runs
  the STCG → targeted-fuzz → STCG pipeline; ``--corpus-out`` exports the
  retained corpus),
* ``compare MODEL`` — SLDV vs SimCoTest vs STCG with the Figure-4 plot,
* ``table1 | table2 | table3 | fig3 | fig4`` — the paper's artefacts,
* ``report FILE.jsonl`` — analyze a telemetry stream: phase times,
  solver-stage win rates, tree growth, coverage-vs-time, slow targets,
* ``tail FILE.jsonl`` — live status board for a matrix run (per-cell
  status, progress, stall flags; ``--follow`` polls until it finishes),
* ``diff OLD NEW`` — run-regression analysis between two manifests or
  event logs (``--fail-on-regression`` gates CI; names regressed
  objectives when both runs carry provenance),
* ``explain FILE`` — objective-level coverage provenance: who covered
  each objective, and the solver-audit chain for each uncovered one,
* ``dashboard FILE`` — render a run into a self-contained static HTML
  dashboard (no external assets; opens offline),
* ``ablation KIND MODEL`` — the Discussion-section ablations.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import api
from repro.coverage.report import full_report
from repro.core.minimize import minimize_suite
from repro.harness import figure3, figure4, figure4_model, table1, table2, table3
from repro.harness.ablation import (
    dead_logic_waste,
    hybrid_warmup,
    library_vs_fresh,
    render,
)
from repro.errors import ReproError
from repro.models import BENCHMARKS, get_benchmark


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    """Executor knobs shared by generate / compare / table3 / fig4."""
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the run matrix (default 1 = serial)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock timeout per run; a timed-out cell is recorded "
             "as a failure instead of aborting",
    )
    parser.add_argument(
        "--events-out", default=None, metavar="FILE.jsonl",
        help="stream structured run telemetry (JSONL) here; a "
             "*.manifest.json summary is written next to it",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="deep generator tracing: phase spans, solver-stage metrics "
             "and tree growth as repro.trace/1 events (analyze with "
             "'repro report')",
    )
    parser.add_argument(
        "--no-provenance", action="store_true",
        help="turn off the objective-level coverage provenance ledger "
             "(repro.provenance/1; on by default, observation only — "
             "analyze with 'repro explain' / 'repro dashboard')",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="matrix runs only: stream per-worker liveness beats to "
             "JSONL sidecars every SECONDS and arm the stall watchdog "
             "(watch with 'repro tail')",
    )
    parser.add_argument(
        "--stall-fraction", type=float, default=0.5, metavar="FRACTION",
        help="fraction of the cell timeout a running cell may stay "
             "quiet before a cell_stalled event (default 0.5)",
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STCG reproduction: state-aware test generation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark models")

    info = sub.add_parser("info", help="describe one model")
    info.add_argument("model")

    gen = sub.add_parser("generate", help="generate tests for one model")
    gen.add_argument("model")
    gen.add_argument("--tool", default="STCG",
                     choices=["STCG", "SLDV", "SimCoTest", "Fuzz", "Hybrid"])
    gen.add_argument("--budget", type=float, default=20.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", help="write the suite text export here")
    gen.add_argument("--report", action="store_true",
                     help="print the full coverage report")
    gen.add_argument("--minimize", action="store_true",
                     help="greedy set-cover suite reduction")
    gen.add_argument(
        "--encoding-cache-size", type=int, default=None, metavar="N",
        help="STCG only: entries in the one-step-encoding LRU "
             "(0 disables it; default 512)",
    )
    gen.add_argument(
        "--no-verdict-cache", action="store_true",
        help="STCG only: disable the cached-UNSAT verdict skip",
    )
    gen.add_argument(
        "--no-sim-kernel", action="store_true",
        help="STCG only: force the generic step interpreter instead of "
             "the compiled plan kernel (reference semantics)",
    )
    gen.add_argument(
        "--no-solver-kernel", action="store_true",
        help="STCG only: force the reference solver pipeline instead of "
             "the compiled/batched solver kernel (repro.solverc)",
    )
    gen.add_argument(
        "--store", default="", metavar="DIR",
        help="STCG-family only: persistent warm-start store directory "
             "(repro.store/1); verdicts, compiled-bundle markers, "
             "contraction snapshots and encodings persist across runs",
    )
    _add_exec_flags(gen)

    fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided mutational fuzzing on one model "
             "(--hybrid for the STCG → targeted-fuzz → STCG pipeline)",
    )
    fuzz.add_argument("model")
    fuzz.add_argument(
        "--hybrid", action="store_true",
        help="run the hybrid pipeline: a pure-STCG pass, then fuzz the "
             "objectives it left uncovered, then a second solver pass "
             "over the fuzz-fed state tree",
    )
    fuzz.add_argument("--budget", type=float, default=10.0)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--executions", type=int, default=None, metavar="N",
        help="count-based campaign budget (default 512); the wall-clock "
             "--budget only bounds it from above",
    )
    fuzz.add_argument(
        "--corpus-out", default=None, metavar="FILE.json",
        help="write the retained corpus (repro.fuzz.corpus/1 JSON) here",
    )
    fuzz.add_argument(
        "--corpus-in", default=None, metavar="FILE.json",
        help="seed the campaign from a previously exported corpus "
             "(repro.fuzz.corpus/1 JSON, e.g. a --corpus-out file)",
    )
    fuzz.add_argument(
        "--store", default="", metavar="DIR",
        help="persistent warm-start store directory (repro.store/1); "
             "solver state and the retained corpus persist across runs",
    )
    fuzz.add_argument("--out", help="write the suite text export here")
    _add_exec_flags(fuzz)

    cmp_ = sub.add_parser("compare", help="three-tool comparison on a model")
    cmp_.add_argument("model")
    cmp_.add_argument("--budget", type=float, default=15.0)
    cmp_.add_argument("--seed", type=int, default=0)
    _add_exec_flags(cmp_)

    for name, help_text in [
        ("table1", "Table I: state-tree construction log"),
        ("fig3", "Figure 3: branch structure + state tree"),
    ]:
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--budget", type=float, default=10.0)
        cmd.add_argument("--seed", type=int, default=0)

    sub.add_parser("table2", help="Table II: model inventory")

    t3 = sub.add_parser("table3", help="Table III: coverage comparison")
    t3.add_argument("--budget", type=float, default=10.0)
    t3.add_argument("--reps", type=int, default=2)
    t3.add_argument("--seed", type=int, default=0)
    t3.add_argument("--models", nargs="*", default=None)
    t3.add_argument(
        "--tools", nargs="*", default=None, metavar="TOOL",
        choices=list(api.ALL_TOOLS),
        help="tool columns to run (default: the paper's SLDV SimCoTest "
             "STCG; add Fuzz and/or Hybrid for the fuzzing columns)",
    )
    t3.add_argument(
        "--store", default="", metavar="DIR",
        help="persistent warm-start store directory (repro.store/1) for "
             "every STCG-family cell; keys are scoped per cell, so "
             "parallel workers never contend",
    )
    _add_exec_flags(t3)

    f4 = sub.add_parser("fig4", help="Figure 4: coverage vs time plots")
    f4.add_argument("--budget", type=float, default=10.0)
    f4.add_argument("--seed", type=int, default=0)
    f4.add_argument("--models", nargs="*", default=["CPUTask", "TCP"])
    _add_exec_flags(f4)

    rep = sub.add_parser(
        "report", help="analyze a telemetry JSONL stream (phase times, "
                       "solver stages, coverage curves)"
    )
    rep.add_argument("events", metavar="FILE.jsonl")
    rep.add_argument("--top", type=int, default=10,
                     help="slowest solver targets to list (default 10)")
    rep.add_argument(
        "--require-trace", action="store_true",
        help="exit non-zero unless the stream carries repro.trace/1 "
             "events; the error names every missing kind (for CI gates)",
    )

    tail = sub.add_parser(
        "tail", help="live status board for a running (or finished) "
                     "matrix: per-cell status, progress, stall flags"
    )
    tail.add_argument("events", metavar="FILE.jsonl")
    tail.add_argument(
        "--heartbeat-dir", default=None, metavar="DIR",
        help="heartbeat sidecar directory (default: FILE.jsonl.hb)",
    )
    tail.add_argument(
        "--follow", action="store_true",
        help="re-render until the matrix finishes",
    )
    tail.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="polling interval with --follow (default 2.0)",
    )

    diff = sub.add_parser(
        "diff", help="compare two runs (manifests or event logs): "
                     "coverage, phase-time, cache/kernel rate deltas"
    )
    diff.add_argument("baseline", metavar="OLD.manifest.json|OLD.jsonl")
    diff.add_argument("candidate", metavar="NEW.manifest.json|NEW.jsonl")
    diff.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero when a regression rule trips (for CI gates)",
    )
    diff.add_argument(
        "--coverage-drop", type=float, default=0.0, metavar="FRACTION",
        help="tolerated coverage drop before it counts as a regression "
             "(default 0 = any drop fails)",
    )
    diff.add_argument(
        "--cache-hit-drop", type=float, default=0.05, metavar="FRACTION",
        help="tolerated cache hit-rate drop (default 0.05)",
    )
    diff.add_argument(
        "--fallback-increase", type=float, default=0.05, metavar="FRACTION",
        help="tolerated kernel/solverc fallback-rate increase "
             "(default 0.05)",
    )
    diff.add_argument(
        "--phase-slowdown", type=float, default=0.5, metavar="FRACTION",
        help="tolerated relative phase-time growth (default 0.5 = +50%%)",
    )

    explain = sub.add_parser(
        "explain", help="objective-level coverage provenance: cover "
                        "attribution and uncovered-objective audit chains"
    )
    explain.add_argument("source", metavar="FILE.manifest.json|FILE.jsonl")
    explain.add_argument(
        "--objective", default=None, metavar="ID",
        help="narrow to one objective id, e.g. 'D:SwitchCase1:case_1' "
             "or 'M:Relop1:c0=T'",
    )
    explain.add_argument(
        "--uncovered", action="store_true",
        help="list only uncovered objectives with their audit chains",
    )

    dash = sub.add_parser(
        "dashboard", help="render a run into a self-contained static "
                          "HTML dashboard (no external assets)"
    )
    dash.add_argument("source", metavar="FILE.manifest.json|FILE.jsonl")
    dash.add_argument(
        "--out", default="dashboard.html", metavar="FILE.html",
        help="output path (default dashboard.html)",
    )
    dash.add_argument(
        "--title", default="repro run dashboard",
        help="page title (default 'repro run dashboard')",
    )

    prove = sub.add_parser(
        "prove", help="prove dead branches by abstract interpretation"
    )
    prove.add_argument("model")

    abl = sub.add_parser("ablation", help="Discussion-section ablations")
    abl.add_argument(
        "kind", choices=["dead-logic", "hybrid", "library", "proofs"]
    )
    abl.add_argument("model")
    abl.add_argument("--budget", type=float, default=10.0)
    abl.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_list() -> None:
    print(f"{'model':12s} {'#branch':>8s} {'#block':>7s}  functionality")
    for model in BENCHMARKS:
        compiled = model.build()
        print(
            f"{model.name:12s} {compiled.registry.n_branches:>8d} "
            f"{compiled.n_blocks:>7d}  {model.functionality}"
        )


def _cmd_info(name: str) -> None:
    model = get_benchmark(name)
    compiled = model.build()
    print(f"{model.name}: {model.functionality}")
    print(f"  blocks: {compiled.n_blocks}")
    print(f"  branches: {compiled.registry.n_branches} "
          f"(paper reported {model.paper_branches})")
    print(f"  condition atoms: {compiled.registry.n_condition_atoms}")
    if model.dead_branches:
        print(f"  documented dead branches: {model.dead_branches}")
    print("  inputs:")
    for spec in compiled.inports:
        bounds = f" in [{spec.lo}, {spec.hi}]" if spec.lo is not None else ""
        print(f"    {spec.name}: {spec.ty!r}{bounds}")
    print(f"  state elements: {len(compiled.state_elements)}")
    for path, element in sorted(compiled.state_elements.items()):
        print(f"    {path} ({element.category}, init={element.init})")


def _cmd_generate(args) -> None:
    model = get_benchmark(args.model)
    cache_kwargs = {}
    if args.encoding_cache_size is not None:
        cache_kwargs["encoding_size"] = args.encoding_cache_size
    if args.no_verdict_cache:
        cache_kwargs["verdicts"] = False
    kernel_kwargs = {}
    if args.no_sim_kernel:
        kernel_kwargs["sim"] = False
    if args.no_solver_kernel:
        kernel_kwargs["solver"] = False
    stcg_overrides = {}
    if cache_kwargs:
        stcg_overrides["caches"] = api.CacheConfig(**cache_kwargs)
    if kernel_kwargs:
        stcg_overrides["kernels"] = api.KernelConfig(**kernel_kwargs)
    if stcg_overrides and args.tool not in ("STCG", "Fuzz", "Hybrid"):
        raise ReproError(
            "cache and kernel flags apply to STCG-family tools only"
        )
    if args.heartbeat is not None:
        raise ReproError(
            "--heartbeat applies to matrix commands "
            "(compare / table3 / fig4) only"
        )
    config = (
        api.StcgConfig(
            budget_s=args.budget, seed=args.seed, trace=args.trace,
            provenance=not args.no_provenance,
            **stcg_overrides,
        )
        if stcg_overrides else None
    )
    result = api.generate(
        model,
        tool=args.tool,
        budget_s=args.budget,
        seed=args.seed,
        config=config,
        cell_timeout=args.cell_timeout,
        events_out=args.events_out,
        trace=args.trace,
        provenance=not args.no_provenance,
        store_dir=args.store,
    )
    print(
        f"{args.tool} on {model.name}: decision={result.decision:.1%} "
        f"condition={result.condition:.1%} mcdc={result.mcdc:.1%} "
        f"cases={len(result.suite)}"
    )
    _print_store_line(result.stats)
    if args.minimize:
        compiled = model.build()
        reduced = minimize_suite(compiled, result.suite)
        print(
            f"minimized: {reduced.kept_cases}/{reduced.original_cases} cases "
            f"({reduced.reduction:.0%} reduction, "
            f"{reduced.goals_total} goals preserved)"
        )
        suite = reduced.suite
    else:
        suite = result.suite
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(suite.to_text())
        print(f"suite written to {args.out}")
    if args.report:
        compiled = model.build()
        collector = suite.replay(compiled)
        print()
        print(full_report(collector))


def _print_store_line(stats) -> None:
    if "store_reads" not in stats:
        return
    restored = (
        int(stats.get("restored_verdicts", 0))
        + int(stats.get("restored_markers", 0))
        + int(stats.get("restored_snapshots", 0))
        + int(stats.get("restored_encodings", 0))
    )
    print(
        f"store: hits={stats.get('store_hits', 0)} "
        f"misses={stats.get('store_misses', 0)} "
        f"rejected={stats.get('store_rejected', 0)} "
        f"writes={stats.get('store_writes', 0)} "
        f"restored={restored} corpus_seeds={stats.get('corpus_seeds', 0)}"
    )


def _print_failures(experiment) -> None:
    for failure in experiment.failures:
        print(
            f"  [failed] {failure.label}: {failure.kind}: {failure.message}",
            file=sys.stderr,
        )


def _cmd_compare(args) -> None:
    model = get_benchmark(args.model)
    experiment = api.run_experiment(
        models=[model],
        budget_s=args.budget,
        repetitions=1,
        seed=args.seed,
        workers=args.workers,
        cell_timeout=args.cell_timeout,
        events_out=args.events_out,
        trace=args.trace,
        provenance=not args.no_provenance,
        heartbeat_s=args.heartbeat,
        stall_fraction=args.stall_fraction,
    )
    _print_failures(experiment)
    results = {}
    for tool in ("SLDV", "SimCoTest", "STCG"):
        outcome = experiment.outcomes[model.name][tool]
        if not outcome.ok:
            continue
        result = outcome.representative
        results[tool] = result
        print(
            f"{tool:10s} decision={result.decision:5.1%} "
            f"condition={result.condition:5.1%} mcdc={result.mcdc:5.1%} "
            f"cases={len(result.suite):3d}"
        )
    print()
    print(figure4_model(results, args.budget))


def _cmd_fuzz(args) -> None:
    model = get_benchmark(args.model)
    if args.heartbeat is not None:
        raise ReproError(
            "--heartbeat applies to matrix commands "
            "(compare / table3 / fig4) only"
        )
    fuzz_kwargs = {}
    if args.executions is not None:
        fuzz_kwargs["executions"] = args.executions
    if args.corpus_out:
        fuzz_kwargs["corpus_out"] = args.corpus_out
    if args.corpus_in:
        fuzz_kwargs["corpus_in"] = args.corpus_in
    tool = "Hybrid" if args.hybrid else "Fuzz"
    config = api.StcgConfig(
        budget_s=args.budget,
        seed=args.seed,
        trace=args.trace,
        provenance=not args.no_provenance,
        fuzz=api.FuzzConfig(**fuzz_kwargs),
    )
    result = api.generate(
        model,
        tool=tool,
        budget_s=args.budget,
        seed=args.seed,
        config=config,
        cell_timeout=args.cell_timeout,
        events_out=args.events_out,
        trace=args.trace,
        provenance=not args.no_provenance,
        store_dir=args.store,
    )
    stats = result.stats
    wall = float(stats.get("fuzz_wall_s") or 0.0)
    executions = int(stats.get("fuzz_executions", 0))
    rate = executions / wall if wall > 0 else 0.0
    print(
        f"{tool} on {model.name}: decision={result.decision:.1%} "
        f"condition={result.condition:.1%} mcdc={result.mcdc:.1%} "
        f"cases={len(result.suite)}"
    )
    print(
        f"fuzz: {executions} executions ({rate:.0f}/s), "
        f"corpus={stats.get('fuzz_corpus_size', 0)} "
        f"(retained {stats.get('fuzz_retained', 0)}, "
        f"seeds {stats.get('fuzz_seed_entries', 0)})"
    )
    _print_store_line(stats)
    if args.hybrid:
        print(
            f"hybrid: {stats.get('fuzz_targets', 0)} fuzz targets, "
            f"{stats.get('fuzz_targets_covered', 0)} covered by fuzzing, "
            f"{stats.get('fuzz_tree_nodes', 0)} states fed back"
        )
    if args.corpus_out:
        print(f"corpus written to {args.corpus_out}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(result.suite.to_text())
        print(f"suite written to {args.out}")


def _cmd_table3(args) -> None:
    experiment = api.run_experiment(
        models=args.models,
        tools=args.tools if args.tools else api.TOOLS,
        budget_s=args.budget,
        repetitions=args.reps,
        seed=args.seed,
        workers=args.workers,
        cell_timeout=args.cell_timeout,
        events_out=args.events_out,
        trace=args.trace,
        provenance=not args.no_provenance,
        heartbeat_s=args.heartbeat,
        stall_fraction=args.stall_fraction,
        store_dir=args.store,
        progress=lambda m: print(f"  {m}"),
    )
    _print_failures(experiment)
    print()
    print(table3(experiment.outcomes))


def _cmd_fig4(args) -> None:
    experiment = api.run_experiment(
        models=args.models,
        budget_s=args.budget,
        repetitions=1,
        seed=args.seed,
        workers=args.workers,
        cell_timeout=args.cell_timeout,
        events_out=args.events_out,
        trace=args.trace,
        provenance=not args.no_provenance,
        heartbeat_s=args.heartbeat,
        stall_fraction=args.stall_fraction,
    )
    _print_failures(experiment)
    all_results = {
        name: {
            tool: outcome.representative
            for tool, outcome in per_tool.items()
            if outcome.ok
        }
        for name, per_tool in experiment.outcomes.items()
    }
    print(figure4(all_results, args.budget))


def _cmd_report(args) -> None:
    from repro.obs.report import render_report, trace_missing_kinds
    from repro.telemetry import read_events

    try:
        events = read_events(args.events)
    except OSError as err:
        raise ReproError(f"cannot read {args.events!r}: {err}") from err
    print(render_report(events, top_n=args.top))
    if args.require_trace:
        missing = trace_missing_kinds(events)
        # phase_totals is emitted by every traced cell; its absence means
        # the run was not traced at all.  The error still names every
        # absent kind so partial streams are diagnosable.
        if "phase_totals" in missing:
            raise ReproError(
                f"{args.events}: stream is missing repro.trace/1 event "
                f"kind(s): {', '.join(missing)} "
                "(was the run started with --trace?)"
            )


def _cmd_tail(args) -> None:
    import time as _time

    from repro.exec import heartbeat_dir_for, read_heartbeats
    from repro.telemetry import read_events, render_tail

    hb_dir = args.heartbeat_dir or heartbeat_dir_for(args.events)

    def render_once():
        try:
            events = read_events(args.events)
        except OSError as err:
            raise ReproError(f"cannot read {args.events!r}: {err}") from err
        print(render_tail(events, read_heartbeats(hb_dir)))
        return any(e.get("event") == "matrix_finished" for e in events)

    finished = render_once()
    while args.follow and not finished:
        _time.sleep(args.interval)
        print()
        finished = render_once()


def _cmd_diff(args) -> int:
    from repro.telemetry import (
        Thresholds,
        diff_runs,
        find_regressions,
        load_run,
        render_diff,
    )

    diff = diff_runs(load_run(args.baseline), load_run(args.candidate))
    problems = find_regressions(
        diff,
        Thresholds(
            coverage_drop=args.coverage_drop,
            cache_hit_drop=args.cache_hit_drop,
            fallback_increase=args.fallback_increase,
            phase_slowdown=args.phase_slowdown,
        ),
    )
    print(render_diff(diff, problems))
    if problems and args.fail_on_regression:
        print(
            f"error: {len(problems)} regression(s) against {args.baseline}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_explain(args) -> None:
    from repro.telemetry import load_provenance, render_explain

    provenance = load_provenance(args.source)
    print(
        render_explain(
            provenance, objective=args.objective, uncovered=args.uncovered
        )
    )


def _cmd_dashboard(args) -> None:
    from repro.telemetry import load_run, render_dashboard

    manifest = load_run(args.source)
    page = render_dashboard(manifest, title=args.title)
    with open(args.out, "w") as handle:
        handle.write(page)
    print(f"dashboard written to {args.out}")


def _cmd_prove(name: str) -> None:
    from repro.analysis import find_dead_branches, state_envelope

    model = get_benchmark(name)
    compiled = model.build()
    envelope = state_envelope(compiled)
    dead = find_dead_branches(compiled, envelope)
    print(f"{model.name}: {len(dead)} branch(es) proven unreachable")
    for branch in dead:
        print(f"  - {branch.label}")
    if model.dead_branches:
        print(f"(model documents {model.dead_branches} dead branches)")


def _cmd_ablation(args) -> None:
    model = get_benchmark(args.model)
    from repro.harness.ablation import dead_branch_proving

    runner = {
        "dead-logic": dead_logic_waste,
        "hybrid": hybrid_warmup,
        "library": library_vs_fresh,
        "proofs": dead_branch_proving,
    }[args.kind]
    runs = runner(model, budget_s=args.budget, seed=args.seed)
    print(render(runs))


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(_parser().parse_args(argv))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    if args.command == "list":
        _cmd_list()
    elif args.command == "info":
        _cmd_info(args.model)
    elif args.command == "generate":
        _cmd_generate(args)
    elif args.command == "fuzz":
        _cmd_fuzz(args)
    elif args.command == "compare":
        _cmd_compare(args)
    elif args.command == "table1":
        print(table1(budget_s=args.budget, seed=args.seed))
    elif args.command == "table2":
        print(table2(BENCHMARKS))
    elif args.command == "table3":
        _cmd_table3(args)
    elif args.command == "fig3":
        print(figure3(budget_s=args.budget, seed=args.seed))
    elif args.command == "fig4":
        _cmd_fig4(args)
    elif args.command == "report":
        _cmd_report(args)
    elif args.command == "tail":
        _cmd_tail(args)
    elif args.command == "diff":
        return _cmd_diff(args)
    elif args.command == "explain":
        _cmd_explain(args)
    elif args.command == "dashboard":
        _cmd_dashboard(args)
    elif args.command == "prove":
        _cmd_prove(args.model)
    elif args.command == "ablation":
        _cmd_ablation(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
