"""Deterministic seeded mutators over input sequences.

A test case is a sequence of per-step input assignments
(``[{inport: value, ...}, ...]``) — the same shape
:meth:`repro.model.simulator.Simulator.run_sequence` consumes.  The
mutation engine derives every choice from one :class:`random.Random`
stream, so a fixed seed yields an identical mutation stream on any
machine: no time, no ids, no hash randomization.

Five operators (the classic sequence-fuzzing set):

* ``perturb`` — redraw or nudge individual input values in place,
* ``splice`` — insert a short fresh-random run of steps,
* ``duplicate`` — repeat a slice of steps (stutter),
* ``truncate`` — drop a suffix,
* ``crossover`` — prefix of one sequence + suffix of another.

Every operator returns a **new** sequence of fresh dicts (inputs are
never aliased into the corpus) whose length stays within
``[1, max_length]``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.expr.types import BOOL, INT
from repro.model.graph import InportSpec
from repro.model.inputs import _draw, random_input

__all__ = ["MUTATION_OPS", "SequenceMutator"]

Step = Dict[str, object]

#: The operator names, in the fixed order the engine draws from.
MUTATION_OPS = ("perturb", "splice", "duplicate", "truncate", "crossover")


def _copy(sequence: Sequence[Step]) -> List[Step]:
    return [dict(step) for step in sequence]


class SequenceMutator:
    """Applies seeded mutations to input sequences.

    All randomness comes from the ``rng`` handed in — the mutator never
    creates its own stream, which lets the campaign keep fuzz randomness
    isolated from STCG's generator seed (see DESIGN.md).
    """

    def __init__(
        self,
        inports: Sequence[InportSpec],
        rng: random.Random,
        max_length: int,
    ) -> None:
        if max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length!r}")
        self.inports = list(inports)
        self.rng = rng
        self.max_length = max_length

    # -- the engine entry point -------------------------------------------------

    def mutate(
        self,
        sequence: Sequence[Step],
        other: Optional[Sequence[Step]] = None,
    ) -> Tuple[str, List[Step]]:
        """One mutation of ``sequence``; returns ``(op_name, new_sequence)``.

        ``other`` (a second corpus entry) enables ``crossover``;
        ``truncate`` needs at least two steps to have anything to drop.
        The operator is drawn uniformly from the applicable subset, in
        the fixed :data:`MUTATION_OPS` order.
        """
        ops = [
            op
            for op in MUTATION_OPS
            if not (op == "truncate" and len(sequence) < 2)
            and not (op == "crossover" and not other)
        ]
        op = self.rng.choice(ops)
        if op == "crossover":
            assert other is not None
            return op, self.crossover(sequence, other)
        return op, getattr(self, op)(sequence)

    # -- operators --------------------------------------------------------------

    def perturb(self, sequence: Sequence[Step]) -> List[Step]:
        """Redraw or nudge a handful of individual input values."""
        mutated = _copy(sequence)
        edits = self.rng.randint(1, max(1, len(mutated) // 4 + 1))
        for _ in range(edits):
            step = mutated[self.rng.randrange(len(mutated))]
            spec = self.inports[self.rng.randrange(len(self.inports))]
            step[spec.name] = self._perturb_value(spec, step.get(spec.name))
        return mutated

    def splice(self, sequence: Sequence[Step]) -> List[Step]:
        """Insert a short fresh-random run of steps."""
        mutated = _copy(sequence)
        run = [
            random_input(self.inports, self.rng)
            for _ in range(self.rng.randint(1, 4))
        ]
        at = self.rng.randint(0, len(mutated))
        mutated[at:at] = run
        return self._clamp(mutated)

    def duplicate(self, sequence: Sequence[Step]) -> List[Step]:
        """Repeat a slice of steps in place (input stutter)."""
        mutated = _copy(sequence)
        start = self.rng.randrange(len(mutated))
        stop = min(len(mutated), start + self.rng.randint(1, 4))
        mutated[stop:stop] = [dict(step) for step in mutated[start:stop]]
        return self._clamp(mutated)

    def truncate(self, sequence: Sequence[Step]) -> List[Step]:
        """Drop a suffix (at least one step survives)."""
        keep = self.rng.randint(1, max(1, len(sequence) - 1))
        return _copy(sequence[:keep])

    def crossover(
        self, sequence: Sequence[Step], other: Sequence[Step]
    ) -> List[Step]:
        """Prefix of ``sequence`` + suffix of ``other``."""
        cut_a = self.rng.randint(1, len(sequence))
        cut_b = self.rng.randint(0, max(0, len(other) - 1))
        mutated = _copy(sequence[:cut_a]) + _copy(other[cut_b:])
        return self._clamp(mutated)

    # -- helpers ----------------------------------------------------------------

    def _clamp(self, sequence: List[Step]) -> List[Step]:
        if len(sequence) > self.max_length:
            del sequence[self.max_length :]
        return sequence

    def _perturb_value(self, spec: InportSpec, current: object):
        """A small move from ``current``, or a fresh draw half the time."""
        if current is None or self.rng.random() < 0.5:
            return _draw(spec, self.rng)
        if spec.ty is BOOL:
            return not bool(current)
        lo = spec.lo if spec.lo is not None else -1000.0
        hi = spec.hi if spec.hi is not None else 1000.0
        if spec.ty is INT:
            value = int(current) + self.rng.choice((-3, -2, -1, 1, 2, 3))
            return max(int(lo), min(int(hi), value))
        span = (float(hi) - float(lo)) or 1.0
        value = float(current) + self.rng.uniform(-0.05, 0.05) * span
        return max(float(lo), min(float(hi), value))
