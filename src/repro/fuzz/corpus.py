"""Coverage-feedback corpus retention keyed on objective ids.

The corpus is the fuzzer's memory: each retained entry is an input
sequence together with the set of Decision/Condition/MCDC **objective
ids** (the :mod:`repro.provenance` id scheme — ``D:...``, ``C:...``,
``M:...``) it was first to cover.  Retention is AFL-style new-coverage:
a candidate enters the corpus iff it covers at least one objective no
earlier entry covered.

Two properties the tests pin:

* **Soundness of the key** — objective ids are total and stable for a
  compiled model (DESIGN.md, "Corpus key soundness"), so "new coverage"
  is well-defined and machine-independent.
* **Monotonicity** — entries are never evicted or replaced; a later
  duplicate with equal (or subset) coverage is rejected, and the
  first-cover owner of an objective is never reassigned.  The corpus is
  therefore bounded by the model's objective count.

Entries serialize to plain JSON (:meth:`Corpus.to_json`), which is what
CI uploads as the fuzz-corpus artifact.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["CORPUS_SCHEMA", "Corpus", "CorpusEntry"]

CORPUS_SCHEMA = "repro.fuzz.corpus/1"

Step = Dict[str, object]


@dataclass(frozen=True)
class CorpusEntry:
    """One retained input sequence and the objectives it newly covered."""

    entry_id: int
    sequence: Tuple[Step, ...]
    objectives: frozenset
    origin: str
    parent_id: Optional[int] = None


@dataclass
class Corpus:
    """Append-only store of coverage-novel input sequences."""

    entries: List[CorpusEntry] = field(default_factory=list)
    #: Union of every retained entry's objective set.
    covered: set = field(default_factory=set)
    #: First-cover attribution: objective id -> entry id, never reassigned.
    owners: Dict[str, int] = field(default_factory=dict)
    considered: int = 0
    rejected: int = 0

    @property
    def size(self) -> int:
        return len(self.entries)

    def add_seed(
        self,
        sequence: Sequence[Step],
        objectives: Sequence[str],
        origin: str = "seed",
    ) -> CorpusEntry:
        """Unconditionally retain a seed (e.g. an STCG/SimCoTest case).

        Seeds earn their place from their *original* run's coverage, so
        they are admitted without re-execution — hybrid campaigns seed
        from the finished STCG suite for free.
        """
        return self._retain(sequence, frozenset(objectives), origin, None)

    def consider(
        self,
        sequence: Sequence[Step],
        objectives: Sequence[str],
        origin: str,
        parent_id: Optional[int] = None,
    ) -> Optional[CorpusEntry]:
        """Retain ``sequence`` iff it covers an objective no entry owns."""
        self.considered += 1
        new = frozenset(objectives) - self.covered
        if not new:
            self.rejected += 1
            return None
        return self._retain(sequence, new, origin, parent_id)

    def pick(self, rng: random.Random) -> CorpusEntry:
        """A uniform random retained entry (the mutation parent)."""
        if not self.entries:
            raise IndexError("pick() on an empty corpus")
        return self.entries[rng.randrange(len(self.entries))]

    def _retain(
        self,
        sequence: Sequence[Step],
        objectives: frozenset,
        origin: str,
        parent_id: Optional[int],
    ) -> CorpusEntry:
        entry = CorpusEntry(
            entry_id=len(self.entries),
            sequence=tuple(dict(step) for step in sequence),
            objectives=objectives,
            origin=origin,
            parent_id=parent_id,
        )
        self.entries.append(entry)
        self.covered |= objectives
        for objective_id in objectives:
            # setdefault: the first cover keeps the attribution forever.
            self.owners.setdefault(objective_id, entry.entry_id)
        return entry

    # -- serialization (the CI corpus artifact) ---------------------------------

    def to_json(self) -> str:
        document = {
            "schema": CORPUS_SCHEMA,
            "considered": self.considered,
            "rejected": self.rejected,
            "entries": [
                {
                    "entry_id": entry.entry_id,
                    "sequence": [dict(step) for step in entry.sequence],
                    "objectives": sorted(entry.objectives),
                    "origin": entry.origin,
                    "parent_id": entry.parent_id,
                }
                for entry in self.entries
            ],
        }
        return json.dumps(document, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Corpus":
        document = json.loads(text)
        if document.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                f"not a {CORPUS_SCHEMA} document: {document.get('schema')!r}"
            )
        corpus = cls(
            considered=document.get("considered", 0),
            rejected=document.get("rejected", 0),
        )
        for raw in document["entries"]:
            corpus._retain(
                raw["sequence"],
                frozenset(raw["objectives"]),
                raw["origin"],
                raw.get("parent_id"),
            )
        return corpus
