"""Coverage-guided mutational fuzzing over compiled models.

The package implements ROADMAP item 3: attack the (state, branch)
residue STCG's one-step solver leaves uncovered with a corpus-based
mutational fuzzer, and fuse the two in a hybrid mode:

* :mod:`repro.fuzz.mutators` — deterministic seeded sequence mutators
  (value perturbation, step splice/duplicate/truncate, crossover).
* :mod:`repro.fuzz.corpus` — coverage-feedback corpus retention keyed
  on the Decision/Condition/MCDC objective ids of
  :mod:`repro.provenance`.
* :mod:`repro.fuzz.engine` — the campaign loop, the standalone
  ``tool="Fuzz"`` generator, and the ``tool="Hybrid"`` generator whose
  fuzz phase targets exactly the objectives the STCG pass left
  uncovered and feeds covering states back into the state tree for a
  second solver pass.
"""

from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.engine import (
    FuzzCampaign,
    FuzzGenerator,
    HybridGenerator,
    derive_fuzz_seed,
)
from repro.fuzz.mutators import MUTATION_OPS, SequenceMutator

__all__ = [
    "Corpus",
    "CorpusEntry",
    "FuzzCampaign",
    "FuzzGenerator",
    "HybridGenerator",
    "MUTATION_OPS",
    "SequenceMutator",
    "derive_fuzz_seed",
]
