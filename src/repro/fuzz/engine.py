"""The fuzz campaign loop and the ``Fuzz``/``Hybrid`` generators.

Both generators compose over a host :class:`~repro.core.stcg.StcgGenerator`
rather than duplicating its plumbing: the host owns the simulator,
coverage collector, provenance ledger, state tree, suite and stats, so a
fuzz-discovered test case is a first-class :class:`TestCase` with
first-cover provenance like any solver- or random-origin case.

Determinism contract (pinned by the tier-1 suite):

* The campaign budget is **count-based** (``FuzzConfig.executions``); a
  wall-clock deadline only bounds it from above.
* All fuzz randomness comes from one :class:`random.Random` seeded by
  :func:`derive_fuzz_seed` — a SHA-256 domain separation of the master
  seed, so the fuzz stream never perturbs STCG's ``random.Random(seed)``
  generator stream (RNG-stream isolation, see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import FuzzConfig, StcgConfig
from repro.core.result import GenerationResult, ORIGIN_FUZZ, TimelineEvent
from repro.core.stcg import StcgGenerator
from repro.core.testcase import TestCase
from repro.errors import ReproError
from repro.fuzz.corpus import Corpus
from repro.fuzz.mutators import SequenceMutator
from repro.model.graph import CompiledModel
from repro.model.inputs import piecewise_constant_sequence, random_sequence
from repro.provenance import (
    NULL_LEDGER,
    ProvenanceLedger,
    branch_objective_id,
    obligation_objective_id,
)

__all__ = [
    "FuzzCampaign",
    "FuzzGenerator",
    "HybridGenerator",
    "derive_fuzz_seed",
]

Step = Dict[str, object]


def derive_fuzz_seed(master_seed: int) -> int:
    """Domain-separated fuzz RNG seed (docs: RNG-stream isolation).

    Mirrors :func:`repro.exec.cells.derive_seed`: SHA-256 over a tagged
    string, folded to 63 bits.  The fuzz stream is therefore a pure
    function of the master seed but statistically unrelated to STCG's
    ``random.Random(master_seed)`` stream.
    """
    digest = hashlib.sha256(f"repro.fuzz|{master_seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


class FuzzCampaign:
    """One coverage-guided mutational campaign over a host generator.

    ``targets`` (hybrid mode) restricts the campaign's goal: it stops as
    soon as every listed objective id is covered.  ``feedback`` records
    the per-step states of covering candidates and grafts them into the
    host's state tree (capped by ``FuzzConfig.feedback_nodes``), which is
    what the hybrid's second solver pass searches.
    """

    def __init__(
        self,
        gen: StcgGenerator,
        config: FuzzConfig,
        *,
        rng: random.Random,
        targets: Optional[Sequence[str]] = None,
        feedback: bool = False,
        deadline: Optional[float] = None,
    ) -> None:
        self.gen = gen
        self.config = config
        self.rng = rng
        self.corpus = Corpus()
        self.mutator = SequenceMutator(
            gen.compiled.inports, rng, config.max_sequence_length
        )
        self.targets = None if targets is None else set(targets)
        self.targets_left = set(self.targets or ())
        self.feedback = feedback
        self.deadline = deadline
        self.executions = 0
        self.retained = 0
        self.seed_entries = 0
        self.fuzz_steps = 0
        self.tree_nodes_fed = 0

    # -- seeding ----------------------------------------------------------------

    def seed_from_suite(self, suite) -> None:
        """Seed the corpus from a finished suite's cases, without re-execution.

        Each case earned its place in its original run (non-empty
        ``new_branch_ids``), so it is admitted unconditionally with the
        branch objectives it first covered as its corpus key.
        """
        registry = self.gen.compiled.registry
        for case in suite:
            objectives = [
                branch_objective_id(registry.branch(branch_id))
                for branch_id in case.new_branch_ids
            ]
            self.corpus.add_seed(case.inputs, objectives, origin="suite")
            self.seed_entries += 1

    def seed_random(self, count: int) -> None:
        """Self-seed: random + SimCoTest-style piecewise-constant signals.

        Used by standalone campaigns that have no suite to start from.
        Seed executions draw from the campaign's execution budget.
        """
        inports = self.gen.compiled.inports
        length = self.config.max_sequence_length
        for index in range(count):
            if self._exhausted():
                break
            if index % 2 == 0:
                sequence = piecewise_constant_sequence(
                    inports, self.rng, length
                )
            else:
                sequence = random_sequence(inports, self.rng, length)
            covered = self._execute(sequence)
            entry = self.corpus.consider(sequence, covered, origin="seed")
            if entry is not None:
                self.retained += 1
                self.seed_entries += 1

    # -- the campaign loop ------------------------------------------------------

    def run(self) -> None:
        """Mutate, execute, retain — until a budget or the goal is hit."""
        inports = self.gen.compiled.inports
        while not self._exhausted():
            if self.corpus.size == 0:
                op = "random"
                parent = None
                sequence = random_sequence(
                    inports, self.rng, self.config.max_sequence_length
                )
            else:
                parent = self.corpus.pick(self.rng)
                other = (
                    self.corpus.pick(self.rng)
                    if self.corpus.size > 1
                    else None
                )
                op, sequence = self.mutator.mutate(
                    parent.sequence,
                    other.sequence if other is not None else None,
                )
            covered = self._execute(sequence)
            entry = self.corpus.consider(
                sequence,
                covered,
                origin=op,
                parent_id=parent.entry_id if parent is not None else None,
            )
            if entry is not None:
                self.retained += 1

    def _exhausted(self) -> bool:
        if self.executions >= self.config.executions:
            return True
        if self.deadline is not None and self.gen._clock() >= self.deadline:
            return True
        if self.targets is not None:
            return not self.targets_left
        return self.gen.config.stop_on_full_coverage and self.gen._fully_covered()

    # -- candidate execution ----------------------------------------------------

    def _execute(self, sequence: Sequence[Step]) -> List[str]:
        """Run one candidate from the initial state; return its new coverage.

        The twin of :meth:`StcgGenerator._execute_sequence`, with two
        differences: it reports the covered **objective ids** (the corpus
        key) and it grafts covering states into the state tree only in
        feedback mode, under its own cap.
        """
        gen = self.gen
        simulator = gen.simulator
        registry = gen.compiled.registry
        ledger = gen.ledger
        simulator.set_state(gen.tree.root.get_state())
        ledger.begin_case(ORIGIN_FUZZ)
        covered: List[str] = []
        chain: List[tuple] = []
        feedback = self.feedback

        def on_step(index: int, new_branch_ids, _found: bool):
            gen.stats["steps_executed"] += 1
            self.fuzz_steps += 1
            for branch_id in new_branch_ids:
                covered.append(
                    branch_objective_id(registry.branch(branch_id))
                )
                if ledger.enabled:
                    ledger.cover_branch(branch_id, index + 1)
            if feedback:
                chain.append((simulator.get_state(), new_branch_ids))

        def on_obligations(index: int, new_obligations):
            for obligation in new_obligations:
                covered.append(obligation_objective_id(registry, obligation))
                if ledger.enabled:
                    ledger.cover_obligation(obligation, index + 1)

        outcome = simulator.run_sequence(
            sequence, on_step=on_step, on_obligations=on_obligations
        )
        self.executions += 1
        if outcome.last_covering_step == 0:
            ledger.end_case(None)
            return covered
        executed = [
            dict(step) for step in sequence[: outcome.last_covering_step]
        ]
        case = TestCase(
            inputs=executed,
            origin=ORIGIN_FUZZ,
            new_branch_ids=list(outcome.new_branch_ids),
            timestamp=gen._elapsed(),
        )
        gen.suite.add(case)
        ledger.end_case(len(gen.suite) - 1)
        gen._case_hist.observe(float(len(executed)))
        gen.timeline.append(
            TimelineEvent(
                t=case.timestamp,
                decision_coverage=gen.collector.decision_coverage(),
                origin=ORIGIN_FUZZ,
                new_branches=len(outcome.new_branch_ids),
            )
        )
        if self.targets is not None:
            self.targets_left.difference_update(covered)
        if feedback and covered:
            self._feed_tree(sequence, chain)
        return covered

    def _feed_tree(self, sequence: Sequence[Step], chain: List[tuple]) -> None:
        """Graft a covering candidate's state chain into the host tree.

        Termination is structural: the graft is bounded both by the
        host's ``max_tree_nodes`` cap and the campaign's
        ``feedback_nodes`` cap, and only candidates with new coverage
        feed back — so the solver-pass → fuzz → solver-pass loop cannot
        grow the tree unboundedly (see DESIGN.md, "Feedback loop
        termination").
        """
        gen = self.gen
        parent = gen.tree.root
        for (state, branch_ids), step in zip(chain, sequence):
            if len(gen.tree) >= gen.config.max_tree_nodes:
                break
            if self.tree_nodes_fed >= self.config.feedback_nodes:
                break
            child = gen.tree.add_child(parent, state, step)
            child.covered_branches = set(branch_ids)
            self.tree_nodes_fed += 1
            parent = child

    # -- stats ------------------------------------------------------------------

    def stats_dict(self) -> Dict[str, object]:
        """The deterministic ``fuzz_*`` counters merged into run stats."""
        stats: Dict[str, object] = {
            "fuzz_executions": self.executions,
            "fuzz_retained": self.retained,
            "fuzz_rejected": self.corpus.rejected,
            "fuzz_corpus_size": self.corpus.size,
            "fuzz_seed_entries": self.seed_entries,
            "fuzz_steps": self.fuzz_steps,
            "fuzz_tree_nodes": self.tree_nodes_fed,
        }
        if self.targets is not None:
            stats["fuzz_targets"] = len(self.targets)
            stats["fuzz_targets_covered"] = len(self.targets) - len(
                self.targets_left
            )
        return stats


def _write_corpus(campaign: FuzzCampaign, path: str) -> None:
    """Export the retained corpus (``FuzzConfig.corpus_out``)."""
    if path:
        with open(path, "w") as handle:
            handle.write(campaign.corpus.to_json())
            handle.write("\n")


def _seed_from_corpus(
    campaign: FuzzCampaign, corpus: Corpus, origin: str
) -> int:
    """Replay a persisted corpus's entries as campaign seeds.

    Admitted via ``add_seed`` (unconditional retention) in stored order,
    without re-execution — each entry earned its objectives in the run
    that retained it.  Seeding changes which parents the campaign can
    pick, so a corpus-seeded campaign is deliberately *not* bit-identical
    to an unseeded one: corpus reuse amortizes discovery across runs
    (see DESIGN.md, "Store integrity and invalidation").
    """
    for entry in corpus.entries:
        campaign.corpus.add_seed(
            entry.sequence, entry.objectives, origin=origin
        )
        campaign.seed_entries += 1
    return len(corpus.entries)


def _seed_campaign(
    campaign: FuzzCampaign,
    host: StcgGenerator,
    config: StcgConfig,
    payload: Optional[Dict[str, object]],
) -> None:
    """Apply both external corpus sources to a fresh campaign.

    ``fuzz.corpus_in`` (user-named file) fails loudly on any problem;
    the warm-start store payload fails soft (it is best-effort by
    contract) and counts ``store_rejected`` instead.
    """
    if config.fuzz.corpus_in:
        path = config.fuzz.corpus_in
        try:
            with open(path, "r") as handle:
                corpus = Corpus.from_json(handle.read())
        except ReproError:
            raise
        except Exception as error:
            raise ReproError(
                f"cannot read fuzz corpus {path!r}: {error}"
            ) from error
        _seed_from_corpus(campaign, corpus, "import")
    if payload is not None and payload.get("corpus") is not None:
        try:
            corpus = Corpus.from_json(json.dumps(payload["corpus"]))
        except Exception:
            host.stats["store_rejected"] += 1
        else:
            host.stats["corpus_seeds"] += _seed_from_corpus(
                campaign, corpus, "store"
            )


class FuzzGenerator:
    """The standalone ``tool="Fuzz"`` baseline: pure mutational fuzzing.

    Never calls the solver.  Self-seeds the corpus (random +
    piecewise-constant signals), then mutates until the execution count
    or the wall budget runs out.
    """

    def __init__(
        self,
        compiled: CompiledModel,
        config: Optional[StcgConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or StcgConfig()
        self._host = StcgGenerator(compiled, self.config, clock=clock)
        if self._host.store is not None:
            self._host.store.scope = f"Fuzz|seed={self.config.seed}"
        if self.config.provenance:
            self._host.ledger = ProvenanceLedger(compiled.registry, "Fuzz")
        else:
            self._host.ledger = NULL_LEDGER

    def run(self) -> GenerationResult:
        host = self._host
        payload = host._store_load()
        host._start = host._clock()
        campaign = FuzzCampaign(
            host,
            self.config.fuzz,
            rng=random.Random(derive_fuzz_seed(self.config.seed)),
            deadline=host._start + self.config.budget_s,
        )
        _seed_campaign(campaign, host, self.config, payload)
        campaign.seed_random(self.config.fuzz.seed_sequences)
        campaign.run()
        _write_corpus(campaign, self.config.fuzz.corpus_out)
        wall = host._elapsed()
        host.stats.update(campaign.stats_dict())
        host.stats["fuzz_wall_s"] = round(wall, 6)
        if host.store is not None:
            host._store_save(
                extra={"corpus": json.loads(campaign.corpus.to_json())}
            )
        return GenerationResult(
            tool="Fuzz",
            model_name=host.compiled.name,
            summary=host.collector.summary(),
            suite=host.suite,
            timeline=list(host.timeline),
            stats={**host.stats, "tree_nodes": len(host.tree)},
            trace_data=host._trace_data(),
            provenance=host.ledger.snapshot(),
        )


class HybridGenerator:
    """The ``tool="Hybrid"`` pipeline: STCG → targeted fuzz → STCG.

    Phase 1 runs the pure STCG loop for ``hybrid_split`` of the budget.
    The objectives it leaves uncovered — read straight off the live
    ledger/collector — become the fuzz targets of phase 2, whose corpus
    is seeded from the phase-1 suite and whose covering states are fed
    back into the state tree.  Phase 3 resumes the solver loop over the
    enriched tree for the remaining budget.

    The hybrid can only add coverage on top of phase 1's: the collector,
    suite and tree are shared and strictly monotone, which is what pins
    "never regress pure STCG" — at equal budget the phase-1 prefix is
    the same algorithm, and phases 2–3 only ever cover more.
    """

    def __init__(
        self,
        compiled: CompiledModel,
        config: Optional[StcgConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or StcgConfig()
        self._host = StcgGenerator(compiled, self.config, clock=clock)
        if self._host.store is not None:
            self._host.store.scope = f"Hybrid|seed={self.config.seed}"
        if self.config.provenance:
            self._host.ledger = ProvenanceLedger(compiled.registry, "Hybrid")
        else:
            self._host.ledger = NULL_LEDGER

    def run(self) -> GenerationResult:
        host = self._host
        total = self.config.budget_s
        payload = host._store_load()
        host._start = host._clock()
        # Phase 1: the pure STCG loop on a budget slice.
        host.config = replace(
            self.config, budget_s=total * self.config.fuzz.hybrid_split
        )
        self._solver_loop(host)
        targets = self._uncovered_objectives(host)
        # Phases 2+3 share the remaining wall budget.
        host.config = replace(self.config, budget_s=total)
        campaign = FuzzCampaign(
            host,
            self.config.fuzz,
            rng=random.Random(derive_fuzz_seed(self.config.seed)),
            targets=targets,
            feedback=True,
            deadline=host._start + total,
        )
        campaign.seed_from_suite(host.suite)
        _seed_campaign(campaign, host, self.config, payload)
        if targets:
            campaign.run()
            # Phase 3: another solver pass over the fuzz-fed state tree.
            self._solver_loop(host)
        _write_corpus(campaign, self.config.fuzz.corpus_out)
        wall = host._elapsed()
        host.stats.update(campaign.stats_dict())
        host.stats["fuzz_wall_s"] = round(wall, 6)
        if host.store is not None:
            host._store_save(
                extra={"corpus": json.loads(campaign.corpus.to_json())}
            )
        return GenerationResult(
            tool="Hybrid",
            model_name=host.compiled.name,
            summary=host.collector.summary(),
            suite=host.suite,
            timeline=list(host.timeline),
            stats={**host.stats, "tree_nodes": len(host.tree)},
            trace_data=host._trace_data(),
            provenance=host.ledger.snapshot(),
        )

    @staticmethod
    def _solver_loop(host: StcgGenerator) -> None:
        """The body of :meth:`StcgGenerator.run`, against the live budget."""
        while not host._done():
            target = host._state_aware_solve()
            if host._out_of_time():
                break
            host._dynamic_execute(target)
            if target is None:
                for _ in range(host.config.random_batch - 1):
                    if host._done():
                        break
                    host._dynamic_execute(None)

    @staticmethod
    def _uncovered_objectives(host: StcgGenerator) -> List[str]:
        """Objective ids still uncovered, straight off the live collector."""
        registry = host.compiled.registry
        ids = [
            branch_objective_id(branch)
            for branch in host.collector.uncovered_branches()
            if branch.branch_id not in host.proven_dead
        ]
        ids.extend(
            obligation_objective_id(registry, obligation)
            for obligation in host.collector.unsatisfied_condition_obligations()
        )
        return ids
