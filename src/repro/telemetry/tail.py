"""Live experiment status: ``repro tail`` over a run's telemetry.

Renders the current (or final) state of a matrix run from two sources
that both survive a crashed parent: the JSONL event stream and the
heartbeat sidecar directory next to it (``<events>.hb``).  Each cell gets
one row — status, phase, live coverage, tree size, solver calls, peak
RSS — where status is derived, not stored:

* ``ok`` / ``failed`` — a terminal event exists for the cell,
* ``stalled``         — the watchdog flagged it and no terminal event
  has arrived since,
* ``running``         — beats exist but no terminal event,
* ``queued``          — ``cell_started`` was emitted (submit time) but
  the worker has not beaten yet.

The renderer is a pure function over ``(events, beats)`` so tests and
``--follow`` polling share one code path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["cell_rows", "render_tail"]


def _latest_beats(
    beats: List[Dict[str, object]]
) -> Dict[int, Dict[str, object]]:
    """The freshest beat per cell (per-file ``n`` breaks ties in order)."""
    latest: Dict[int, Dict[str, object]] = {}
    for beat in beats:
        cell = beat.get("cell")
        if cell is None:
            continue
        latest[int(cell)] = beat
    return latest


def cell_rows(
    events: List[Dict[str, object]], beats: List[Dict[str, object]]
) -> List[Dict[str, object]]:
    """One status row per known cell, ordered by cell index."""
    cells: Dict[int, Dict[str, object]] = {}

    def row_for(event: Dict[str, object]) -> Optional[Dict[str, object]]:
        cell = event.get("cell")
        if cell is None:
            return None
        return cells.setdefault(
            int(cell),
            {
                "cell": int(cell),
                "model": event.get("model"),
                "tool": event.get("tool"),
                "repetition": event.get("repetition"),
                "status": "queued",
                "phase": None,
                "coverage": None,
                "tree_nodes": None,
                "solver_calls": None,
                "rss_kb": None,
                "stalled": False,
            },
        )

    for event in events:
        kind = event.get("event")
        if kind == "cell_started":
            row_for(event)
        elif kind == "cell_finished":
            row = row_for(event)
            if row is not None:
                row["status"] = "ok"
                row["coverage"] = event.get("decision")
        elif kind == "cell_failed":
            row = row_for(event)
            if row is not None:
                row["status"] = "failed"
        elif kind == "cell_stalled":
            row = row_for(event)
            if row is not None:
                row["stalled"] = True

    for cell, beat in _latest_beats(beats).items():
        row = cells.setdefault(
            cell,
            {
                "cell": cell,
                "model": beat.get("model"),
                "tool": beat.get("tool"),
                "repetition": beat.get("repetition"),
                "status": "queued",
                "coverage": None,
                "stalled": False,
            },
        )
        row["phase"] = beat.get("phase")
        row["tree_nodes"] = beat.get("tree_nodes")
        row["solver_calls"] = beat.get("solver_calls")
        row["rss_kb"] = beat.get("rss_kb")
        if row["status"] == "queued":
            row["status"] = "running"
        if row.get("coverage") is None:
            row["coverage"] = beat.get("coverage")

    for row in cells.values():
        # A stall flag outranks "running": the cell is alive but frozen.
        if row["stalled"] and row["status"] in ("queued", "running"):
            row["status"] = "stalled"
    return [cells[cell] for cell in sorted(cells)]


def _fmt(value: object, spec: str, missing: str = "--") -> str:
    if value is None:
        return missing
    return format(value, spec)


def render_tail(
    events: List[Dict[str, object]], beats: List[Dict[str, object]]
) -> str:
    """The ``repro tail`` status board."""
    lines: List[str] = []
    matrix = [e for e in events if e.get("event") == "matrix_started"]
    finished = [e for e in events if e.get("event") == "matrix_finished"]
    if matrix:
        config = matrix[-1]
        lines.append(
            f"matrix: {len(config.get('models') or [])} model(s) x "
            f"{', '.join(config.get('tools') or [])} | "
            f"budget={config.get('budget_s')}s "
            f"reps={config.get('repetitions')} "
            f"workers={config.get('workers')}"
        )
    rows = cell_rows(events, beats)
    done = sum(1 for r in rows if r["status"] in ("ok", "failed"))
    stalled = sum(1 for r in rows if r["stalled"])
    state = "finished" if finished else "live"
    progress = f"{state}: {done}/{len(rows)} cells done"
    if stalled:
        progress += f", {stalled} stall flag(s)"
    lines.append(progress)
    lines.append("")
    lines.append(
        f"{'cell':>4s}  {'model':12s} {'tool':10s} {'rep':>3s}  "
        f"{'status':8s} {'phase':10s} {'cov':>6s} {'tree':>6s} "
        f"{'solver':>7s} {'rss_kb':>8s}"
    )
    for row in rows:
        coverage = row.get("coverage")
        lines.append(
            f"{row['cell']:>4d}  {str(row.get('model') or '?'):12s} "
            f"{str(row.get('tool') or '?'):10s} "
            f"{_fmt(row.get('repetition'), 'd'):>3s}  "
            f"{row['status']:8s} {str(row.get('phase') or '--'):10s} "
            f"{_fmt(coverage, '.1%'):>6s} "
            f"{_fmt(row.get('tree_nodes'), 'd'):>6s} "
            f"{_fmt(row.get('solver_calls'), 'd'):>7s} "
            f"{_fmt(row.get('rss_kb'), 'd'):>8s}"
        )
    if not rows:
        lines.append("  (no cells observed yet)")
    return "\n".join(lines)
