"""``repro dashboard``: a zero-dependency static HTML run dashboard.

Renders one run manifest (``*.manifest.json`` or a JSONL event stream,
via :func:`~repro.telemetry.diff.load_run`) into a single self-contained
HTML document: inline CSS, a small inline script for objective filtering,
no external fonts, scripts or CDNs — it opens offline from a CI artifact
or an ``file://`` path.

Sections: run summary tiles, per-(model, tool) coverage table with
inline meters, the provenance drill-down (uncovered objectives first,
with their solver-audit chains), stalled cells, phase seconds, changed
metric counters and recorded failures.  Every section degrades to a
short "(not recorded)" note when the run lacks it, so the page renders
for untraced and provenance-off runs too.

Colors follow one palette (light and dark variants selected per scheme,
not auto-inverted); status is never color alone — covered/uncovered and
ok/failed always pair a symbol and a text label with the color.
"""

from __future__ import annotations

import html
from typing import Dict, List

__all__ = ["render_dashboard"]

#: Inline stylesheet: palette custom properties (light + dark), layout.
_CSS = """
:root {
  --surface: #fcfcfb; --panel: #f4f4f2;
  --text: #0b0b0b; --text-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --series: #2a78d6;
  --good: #0ca30c; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #232322;
    --text: #ffffff; --text-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --series: #3987e5;
  }
}
:root[data-theme="dark"] {
  --surface: #1a1a19; --panel: #232322;
  --text: #ffffff; --text-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --series: #3987e5;
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px; max-width: 1080px;
  background: var(--surface); color: var(--text);
  font: 14px/1.5 system-ui, sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--text-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--panel); border: 1px solid var(--grid);
  border-radius: 6px; padding: 10px 16px; min-width: 110px;
}
.tile .v {
  font-size: 22px; font-variant-numeric: tabular-nums;
}
.tile .k { color: var(--text-2); font-size: 12px; }
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 5px 10px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-2); font-weight: 600; font-size: 12px; }
td.num { text-align: right; }
.meter {
  display: inline-block; vertical-align: middle;
  width: 120px; height: 8px; border-radius: 4px;
  background: var(--grid); overflow: hidden; margin-right: 8px;
}
.meter > span {
  display: block; height: 100%; border-radius: 4px;
  background: var(--series);
}
.ok { color: var(--good); }
.bad { color: var(--critical); }
details {
  background: var(--panel); border: 1px solid var(--grid);
  border-radius: 6px; padding: 8px 14px; margin: 8px 0;
}
summary { cursor: pointer; font-weight: 600; }
.objective { margin: 6px 0 6px 12px; }
.objective code {
  font-family: ui-monospace, monospace; font-size: 13px;
}
.audit { color: var(--text-2); margin: 2px 0 2px 24px; font-size: 13px; }
.note { color: var(--muted); }
input[type="search"] {
  background: var(--panel); color: var(--text);
  border: 1px solid var(--grid); border-radius: 6px;
  padding: 6px 10px; width: 320px; margin: 4px 0 8px;
}
"""

#: Objective filter: hides .objective rows not matching the query.
_JS = """
document.addEventListener('input', function (event) {
  if (event.target.id !== 'objective-filter') return;
  var query = event.target.value.toLowerCase();
  document.querySelectorAll('.objective').forEach(function (row) {
    var hit = row.dataset.id.toLowerCase().indexOf(query) !== -1;
    row.style.display = hit ? '' : 'none';
  });
  if (query) {
    document.querySelectorAll('details.prov').forEach(function (box) {
      box.open = true;
    });
  }
});
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _tile(label: str, value: str, cls: str = "") -> str:
    return (
        f'<div class="tile"><div class="v {cls}">{_esc(value)}</div>'
        f'<div class="k">{_esc(label)}</div></div>'
    )


def _meter(fraction: float) -> str:
    pct = max(0.0, min(1.0, float(fraction))) * 100.0
    return (
        f'<span class="meter"><span style="width:{pct:.1f}%"></span></span>'
        f"{pct:.1f}%"
    )


def _status(ok: bool, ok_text: str, bad_text: str) -> str:
    """Status as symbol + text label, never color alone."""
    if ok:
        return f'<span class="ok">&#10003; {_esc(ok_text)}</span>'
    return f'<span class="bad">&#10007; {_esc(bad_text)}</span>'


def _coverage_section(manifest: Dict[str, object]) -> List[str]:
    coverage = manifest.get("coverage") or {}
    out = ["<h2>Coverage</h2>"]
    if not coverage:
        out.append('<p class="note">(no finished cells recorded)</p>')
        return out
    out.append(
        "<table><tr><th>Model</th><th>Tool</th><th>Decision</th>"
        "<th>Condition</th><th>MC/DC</th><th>Runs</th></tr>"
    )
    for model in sorted(coverage):
        for tool in sorted(coverage[model]):
            agg = coverage[model][tool] or {}
            out.append(
                f"<tr><td>{_esc(model)}</td><td>{_esc(tool)}</td>"
                f"<td>{_meter(agg.get('decision', 0.0))}</td>"
                f"<td>{_meter(agg.get('condition', 0.0))}</td>"
                f"<td>{_meter(agg.get('mcdc', 0.0))}</td>"
                f"<td class=\"num\">{int(agg.get('runs', 0))}</td></tr>"
            )
    out.append("</table>")
    return out


def _audit_lines(entry: Dict[str, object]) -> List[str]:
    out = []
    attempts = entry.get("attempts") or {}
    skips = entry.get("skips") or {}
    if attempts:
        summary = ", ".join(f"{k} ×{v}" for k, v in attempts.items())
        out.append(f'<div class="audit">attempts: {_esc(summary)}</div>')
    if skips:
        summary = ", ".join(f"{k} ×{v}" for k, v in skips.items())
        out.append(f'<div class="audit">skips: {_esc(summary)}</div>')
    if not attempts and not skips:
        out.append('<div class="audit">never attempted</div>')
    for row in entry.get("trail") or []:
        compiled = "compiled" if row.get("compiled") else "interpreted"
        out.append(
            '<div class="audit">node '
            f"{_esc(row.get('node'))} &rarr; {_esc(row.get('verdict'))}"
            f"@{_esc(row.get('stage'))} ({_esc(row.get('engine'))} engine, "
            f"{compiled})</div>"
        )
    return out


def _provenance_section(manifest: Dict[str, object]) -> List[str]:
    provenance = manifest.get("provenance") or {}
    out = ["<h2>Objective provenance</h2>"]
    if not provenance:
        out.append(
            '<p class="note">(no provenance section — the ledger was off '
            "or the stream predates it)</p>"
        )
        return out
    out.append(
        '<input id="objective-filter" type="search" '
        'placeholder="filter objectives, e.g. M: or SwitchCase" />'
    )
    for model in sorted(provenance):
        for tool in sorted(provenance[model]):
            snapshot = provenance[model][tool] or {}
            objectives = snapshot.get("objectives") or {}
            totals = snapshot.get("totals") or {}
            uncovered = [
                (oid, e) for oid, e in objectives.items()
                if e.get("status") == "uncovered"
            ]
            covered = [
                (oid, e) for oid, e in objectives.items()
                if e.get("status") == "covered"
            ]
            open_attr = " open" if uncovered else ""
            out.append(
                f'<details class="prov"{open_attr}><summary>'
                f"{_esc(model)} / {_esc(tool)} &mdash; "
                f"{int(totals.get('covered', 0))}/"
                f"{int(totals.get('objectives', 0))} covered, "
                f"{len(uncovered)} uncovered</summary>"
            )
            for oid, entry in uncovered:
                out.append(
                    f'<div class="objective" data-id="{_esc(oid)}">'
                    f"{_status(False, 'covered', 'uncovered')} "
                    f"<code>{_esc(oid)}</code>"
                )
                out.extend(_audit_lines(entry))
                out.append("</div>")
            for oid, entry in covered:
                case = entry.get("case")
                case_text = (
                    "discarded candidate" if case is None else f"case {case}"
                )
                repetition = entry.get("repetition")
                rep = f", rep {repetition}" if repetition is not None else ""
                out.append(
                    f'<div class="objective" data-id="{_esc(oid)}">'
                    f"{_status(True, 'covered', 'uncovered')} "
                    f"<code>{_esc(oid)}</code> "
                    f'<span class="audit" style="display:inline">'
                    f"{_esc(case_text)}, step {_esc(entry.get('step'))} "
                    f"via {_esc(entry.get('origin'))}{_esc(rep)}</span></div>"
                )
            out.append("</details>")
    return out


def _fuzz_section(manifest: Dict[str, object]) -> List[str]:
    fuzz = manifest.get("fuzz") or {}
    out = ["<h2>Fuzz campaigns</h2>"]
    if not fuzz:
        out.append(
            '<p class="note">(no fuzz section — Fuzz/Hybrid cells only)</p>'
        )
        return out
    out.append('<div class="tiles">')
    out.append(_tile("fuzz cells", str(int(fuzz.get("cells", 0)))))
    out.append(_tile("executions", str(int(fuzz.get("executions", 0)))))
    out.append(_tile("corpus size", str(int(fuzz.get("corpus_size", 0)))))
    out.append(_tile("retained", str(int(fuzz.get("retained", 0)))))
    out.append(_tile("seed entries", str(int(fuzz.get("seed_entries", 0)))))
    targets = int(fuzz.get("targets", 0))
    if targets:
        out.append(
            _tile(
                "hybrid targets covered",
                f"{int(fuzz.get('targets_covered', 0))}/{targets}",
            )
        )
        out.append(_tile("tree nodes fed", str(int(fuzz.get("tree_nodes", 0)))))
    out.append("</div>")
    return out


def _table_section(
    title: str,
    rows: List[List[object]],
    headers: List[str],
    empty: str,
) -> List[str]:
    out = [f"<h2>{_esc(title)}</h2>"]
    if not rows:
        out.append(f'<p class="note">({_esc(empty)})</p>')
        return out
    out.append(
        "<table><tr>"
        + "".join(f"<th>{_esc(h)}</th>" for h in headers)
        + "</tr>"
    )
    for row in rows:
        out.append(
            "<tr>" + "".join(f"<td>{_esc(v)}</td>" for v in row) + "</tr>"
        )
    out.append("</table>")
    return out


def render_dashboard(
    manifest: Dict[str, object], title: str = "repro run dashboard"
) -> str:
    """One manifest document to one self-contained HTML page."""
    cells = int(manifest.get("cells", 0))
    ok = int(manifest.get("ok", 0))
    failed = int(manifest.get("failed", 0))
    stalls = manifest.get("stalls") or []
    body: List[str] = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">schema {_esc(manifest.get("schema", "?"))} &middot; '
        f"{int(manifest.get('events', 0))} events</p>",
        '<div class="tiles">',
        _tile("cells", str(cells)),
        _tile("ok", str(ok), "ok" if ok == cells else ""),
        _tile("failed", str(failed), "bad" if failed else ""),
        _tile("wall clock", f"{float(manifest.get('wall_s', 0.0)):.1f}s"),
        _tile("cell seconds", f"{float(manifest.get('cell_seconds', 0.0)):.1f}s"),
        "</div>",
    ]
    body.extend(_coverage_section(manifest))
    body.extend(_fuzz_section(manifest))
    body.extend(_provenance_section(manifest))
    body.extend(
        _table_section(
            "Stalled cells",
            [
                [s.get("model"), s.get("tool"), s.get("repetition"),
                 f"{float(s.get('quiet_s', 0.0)):.1f}s quiet"]
                for s in stalls
            ],
            ["Model", "Tool", "Rep", "Quiet"],
            "no stalls recorded",
        )
    )
    phase_seconds = manifest.get("phase_seconds") or {}
    body.extend(
        _table_section(
            "Phase seconds",
            [
                [phase, f"{seconds:.3f}s"]
                for phase, seconds in sorted(
                    phase_seconds.items(), key=lambda kv: -kv[1]
                )
            ],
            ["Phase", "Seconds"],
            "no phase totals — traced runs only",
        )
    )
    counters = (manifest.get("metrics") or {}).get("counters") or {}
    body.extend(
        _table_section(
            "Metric counters",
            [[name, value] for name, value in sorted(counters.items())],
            ["Counter", "Value"],
            "no metrics registry snapshot — traced runs only",
        )
    )
    body.extend(
        _table_section(
            "Failures",
            [
                [f.get("model"), f.get("tool"), f.get("repetition"),
                 f.get("kind"), f.get("message")]
                for f in (manifest.get("failures") or [])
            ],
            ["Model", "Tool", "Rep", "Kind", "Message"],
            "no failed cells",
        )
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8" />\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1" />\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + f"\n<script>{_JS}</script>\n</body>\n</html>\n"
    )
