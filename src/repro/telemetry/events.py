"""Structured run telemetry: a JSONL event stream plus a run manifest.

Every experiment emits a sequence of events — matrix/run lifecycle, one
record per finished cell (with the generator's ``stats`` and coverage),
per-test-case timeline points and recorded failures.  :class:`EventLog`
buffers them in memory and, when given a path, streams each event to disk
as one JSON line the moment it is emitted, so a crashed or killed run
still leaves a parseable log behind.

Event schema (``repro.events/1``) — every line is an object with:

* ``seq``   — 0-based monotonically increasing sequence number,
* ``t``     — seconds since the log was opened (monotonic clock),
* ``event`` — the kind, one of ``matrix_started``, ``cell_started``,
  ``cell_finished``, ``cell_failed``, ``timeline_point``,
  ``matrix_finished``, ``run_started``, ``run_finished``,
* kind-specific payload fields (model, tool, repetition, seed, coverage
  numbers, solver ``stats``, failure ``kind``/``message``, ...).

Traced runs additionally emit the ``repro.trace/1`` kinds (each tagged
``schema: repro.trace/1``): ``phase_totals`` (per-cell phase time
breakdown + counters), ``solver_stages`` (per-stage attempt/win/time),
``tree_growth`` (state-tree size samples), ``cache_stats`` (solve-cache
hit/miss/eviction/skip counters), ``kernel_stats`` /``solverc_stats``
(sim- and solver-kernel compiled-vs-fallback traffic) and ``span``
(per-target solver time aggregates).  See :func:`emit_trace_events`.

Runs with the provenance ledger on additionally emit one ``provenance``
event per cell (tagged ``schema: repro.provenance/1``) carrying the
objective-level coverage snapshot; the manifest folds them per
(model, tool) across repetitions via
:func:`repro.provenance.merge_provenance`.

``Fuzz``/``Hybrid`` cells additionally emit one ``fuzz_stats`` event
(campaign counters + executions/sec); the manifest folds only their
deterministic counters into a ``fuzz`` section (see
:data:`_FUZZ_TOTALS`).

Cells with the warm-start store attached (``repro.store``) emit one
``store_stats`` event (read/hit/miss/rejected/write traffic plus per-fold
restore counts); the manifest folds them into a ``store`` section (see
:data:`_STORE_TOTALS`).

The manifest is a single JSON document derived from the event stream:
counts, per-(model, tool) coverage aggregates, failures, totals over the
generators' solver statistics, for traced runs ``phase_seconds`` and
``solver_stages`` aggregates, and for provenance-bearing runs the merged
``provenance`` section consumed by ``repro explain`` / ``repro
dashboard``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, IO, List, Optional

from repro.errors import ReproError
from repro.metrics import empty_snapshot, fold_snapshots
from repro.obs.stages import CACHE_COUNTERS, merge_stage_dicts
from repro.provenance import merge_provenance
from repro.solverc.compiler import SolvercStats

#: Version tag embedded in every stream and manifest.
EVENT_SCHEMA = "repro.events/1"
MANIFEST_SCHEMA = "repro.run-manifest/1"
#: Version tag carried by every deep-tracing event.
TRACE_SCHEMA = "repro.trace/1"

#: The deep-tracing event kinds (all tagged with :data:`TRACE_SCHEMA`).
#: ``metrics`` carries the per-cell unified ``repro.metrics/1`` registry
#: snapshot the legacy counter kinds are derived from.
TRACE_KINDS = (
    "span",
    "phase_totals",
    "solver_stages",
    "tree_growth",
    "cache_stats",
    "kernel_stats",
    "solverc_stats",
    "metrics",
)

#: Solver targets forwarded per traced cell (slowest first); bounds the
#: number of ``span`` events a cell can contribute.
_MAX_TARGET_SPANS = 20

#: Solver/executor counters summed into the manifest when cells carry them.
_STAT_TOTALS = (
    "solver_calls",
    "sat",
    "unsat",
    "unknown",
    "steps_executed",
    "random_sequences",
    "simulations",
    "const_false_skips",
    "verdict_skips",
)

#: Counters summed into the manifest's ``cache`` aggregate from
#: ``cache_stats`` events (the :data:`repro.obs.stages.CACHE_COUNTERS`
#: names plus the generator-side skip/dedup counters).
_CACHE_TOTALS = CACHE_COUNTERS + ("verdict_skips", "dedup_links")

#: Deterministic fuzz counters summed into the manifest's ``fuzz``
#: section from ``Fuzz``/``Hybrid`` cell stats (the ``fuzz_*`` keys).
#: Wall-clock derived numbers (``fuzz_wall_s``, executions/sec) are
#: deliberately excluded: the manifest must stay bit-identical across
#: workers=1/N, so they live only in ``fuzz_stats`` events.
_FUZZ_TOTALS = (
    "executions",
    "retained",
    "rejected",
    "corpus_size",
    "seed_entries",
    "steps",
    "tree_nodes",
    "targets",
    "targets_covered",
)

#: Warm-start store counters summed into the manifest's ``store`` section
#: from cells whose generator had a store attached (the ``store_*`` /
#: ``restored_*`` stats keys).  Like :data:`_FUZZ_TOTALS`, the key set is
#: fixed so warm and cold runs differ only in the numbers.
_STORE_TOTALS = (
    "reads",
    "hits",
    "misses",
    "rejected",
    "writes",
    "restored_verdicts",
    "restored_markers",
    "restored_snapshots",
    "restored_encodings",
    "corpus_seeds",
)

#: The subset of :data:`_STORE_TOTALS` whose stats keys carry a
#: ``store_`` prefix (the rest are used verbatim).
_STORE_PREFIXED = ("reads", "hits", "misses", "rejected", "writes")


def store_stats_payload(stats: Dict[str, object]) -> Dict[str, object]:
    """The ``store_stats`` event payload from a result's store counters.

    Strips the ``store_`` prefix off the traffic counters and carries the
    ``restored_*``/``corpus_seeds`` fold counts verbatim, always with the
    full key set.
    """
    payload: Dict[str, object] = {}
    for key in _STORE_TOTALS:
        source = f"store_{key}" if key in _STORE_PREFIXED else key
        payload[key] = int(stats.get(source, 0))
    return payload


def fuzz_stats_payload(stats: Dict[str, object]) -> Dict[str, object]:
    """The ``fuzz_stats`` event payload from a result's ``fuzz_*`` stats.

    Strips the ``fuzz_`` prefix, and derives the executions/sec rate from
    the campaign's wall time (events carry wall-clock data anyway — the
    determinism contract is on manifests, not streams).
    """
    payload = {
        key[len("fuzz_"):]: value
        for key, value in stats.items()
        if key.startswith("fuzz_")
    }
    wall = float(payload.get("wall_s") or 0.0)
    executions = int(payload.get("executions") or 0)
    payload["execs_per_s"] = (
        round(executions / wall, 3) if wall > 0 else 0.0
    )
    return payload


class EventLog:
    """An append-only event sink: in-memory list + optional JSONL stream.

    Use as a context manager (or call :meth:`close`) when writing to disk::

        with EventLog("run.jsonl") as events:
            events.emit("run_started", model="TCP", tool="STCG")
    """

    def __init__(self, path: Optional[str] = None):
        self.path = str(path) if path is not None else None
        self._events: List[Dict[str, object]] = []
        self._handle: Optional[IO[str]] = None
        self._t0 = time.monotonic()
        #: Serializes emission: the stall watchdog emits from its own
        #: thread while the executor emits from the main thread, and seq
        #: assignment + the JSONL write must stay atomic per event.
        self._lock = threading.Lock()
        if self.path is not None:
            self._handle = open(self.path, "w")
            self.emit("log_opened", schema=EVENT_SCHEMA)

    # -- emission ------------------------------------------------------

    def emit(self, kind: str, /, **payload: object) -> Dict[str, object]:
        """Record one event; returns the event dict (already serialized).

        Thread-safe: concurrent emitters get distinct ``seq`` numbers and
        whole, unintermixed JSONL lines.
        """
        with self._lock:
            event: Dict[str, object] = {
                "seq": len(self._events),
                "t": round(time.monotonic() - self._t0, 6),
                "event": kind,
            }
            event.update(payload)
            self._events.append(event)
            if self._handle is not None:
                self._handle.write(json.dumps(event, default=_jsonable) + "\n")
                self._handle.flush()
            return event

    # -- access --------------------------------------------------------

    @property
    def events(self) -> List[Dict[str, object]]:
        """All events emitted so far (the in-memory copy)."""
        return list(self._events)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [e for e in self._events if e["event"] == kind]

    # -- manifest ------------------------------------------------------

    def manifest(self) -> Dict[str, object]:
        """Summarize the event stream into a single run-manifest document."""
        return build_manifest(self._events)

    def write_manifest(self, path: str) -> Dict[str, object]:
        """Render the manifest to ``path`` as pretty-printed JSON."""
        manifest = self.manifest()
        with open(path, "w") as handle:
            json.dump(manifest, handle, indent=2, default=_jsonable)
            handle.write("\n")
        return manifest

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def _cell_sort_key(event: Dict[str, object]):
    """Canonical ordering of per-cell events: identity, then stream seq.

    Under ``workers=N`` cell events land in *completion* order, which
    varies run to run; folding them in identity order makes every
    float-summing aggregate bit-identical to the ``workers=1`` stream
    (the seq tie-break only matters for duplicated identities, where it
    pins permutation-independence).
    """
    return (
        str(event.get("model", "")),
        str(event.get("tool", "")),
        str(event.get("repetition", "")),
        str(event.get("seq", "")).rjust(12, "0"),
    )


def build_manifest(events: List[Dict[str, object]]) -> Dict[str, object]:
    """Summarize an event stream into a single run-manifest document.

    Pure over its input, and *order-independent* over per-cell events: any
    permutation of the same events — in memory, read back from a JSONL
    file via :func:`read_events`, or interleaved by a multi-worker run —
    produces the bit-identical manifest.  Cell events are folded in a
    canonical (model, tool, repetition) order and floats are rounded once
    at the end, never per event.
    """

    def of_kind(kind: str) -> List[Dict[str, object]]:
        return sorted(
            (e for e in events if e.get("event") == kind),
            key=_cell_sort_key,
        )

    # Single runs (run_finished) aggregate exactly like matrix cells.
    cells_ok = sorted(
        of_kind("cell_finished") + of_kind("run_finished"),
        key=_cell_sort_key,
    )
    cells_failed = of_kind("cell_failed")
    coverage: Dict[str, Dict[str, Dict[str, object]]] = {}
    totals = {key: 0 for key in _STAT_TOTALS}
    fuzz_totals = {key: 0 for key in _FUZZ_TOTALS}
    fuzz_cells = 0
    store_totals = {key: 0 for key in _STORE_TOTALS}
    store_cells = 0
    duration = 0.0
    for cell in cells_ok:
        per_tool = coverage.setdefault(str(cell["model"]), {})
        agg = per_tool.setdefault(
            str(cell["tool"]),
            {"decision": 0.0, "condition": 0.0, "mcdc": 0.0, "runs": 0},
        )
        for metric in ("decision", "condition", "mcdc"):
            agg[metric] = float(agg[metric]) + float(cell[metric])
        agg["runs"] = int(agg["runs"]) + 1
        duration += float(cell.get("duration_s", 0.0))
        stats = cell.get("stats") or {}
        for key in _STAT_TOTALS:
            if key in stats:
                totals[key] += int(stats[key])
        if "fuzz_executions" in stats:
            fuzz_cells += 1
            for key in _FUZZ_TOTALS:
                fuzz_totals[key] += int(stats.get(f"fuzz_{key}", 0))
        if "store_reads" in stats:
            store_cells += 1
            for key, value in store_stats_payload(stats).items():
                store_totals[key] += int(value)
    for per_tool in coverage.values():
        for agg in per_tool.values():
            for metric in ("decision", "condition", "mcdc"):
                # Mean of a sorted sum — same addition order as
                # ToolOutcome (plan order), so the two match exactly.
                agg[metric] = float(agg[metric]) / int(agg["runs"])
    # Deep-tracing aggregates (repro.trace/1 events, when present).
    phase_seconds: Dict[str, float] = {}
    for event in of_kind("phase_totals"):
        for phase, stat in (event.get("phases") or {}).items():
            phase_seconds[phase] = (
                phase_seconds.get(phase, 0.0)
                + float((stat or {}).get("seconds", 0.0))
            )
    phase_seconds = {
        phase: round(seconds, 6)
        for phase, seconds in phase_seconds.items()
    }
    solver_stages: Dict[str, Dict[str, float]] = {}
    for event in of_kind("solver_stages"):
        merge_stage_dicts(solver_stages, event.get("stages") or {})
    # Solve-cache traffic (cache_stats events, when present).  Like
    # stat_totals, the key set is fixed so warm and cold runs differ only
    # in the numbers.
    cache_totals = {key: 0 for key in _CACHE_TOTALS}
    for event in of_kind("cache_stats"):
        for key in _CACHE_TOTALS:
            if key in event:
                cache_totals[key] += int(event[key])
    # The unified per-cell registry snapshots fold into one run-level
    # snapshot; fold_snapshots re-sorts by the identity key, so this too
    # is independent of arrival order.
    metrics_events = of_kind("metrics")
    metrics: Dict[str, object] = {}
    if metrics_events:
        metrics = fold_snapshots([
            (_cell_sort_key(event), event.get("snapshot") or empty_snapshot())
            for event in metrics_events
        ])
    # Objective-level provenance: per-cell snapshots fold per (model,
    # tool) across repetitions.  of_kind already sorted the events by the
    # canonical cell key, so group membership order — and therefore the
    # merged document — is independent of arrival order.
    provenance: Dict[str, Dict[str, object]] = {}
    prov_groups: Dict[tuple, List[tuple]] = {}
    for event in of_kind("provenance"):
        key = (str(event.get("model", "")), str(event.get("tool", "")))
        prov_groups.setdefault(key, []).append(
            (event.get("repetition"), event.get("provenance") or {})
        )
    for (model, tool), snaps in prov_groups.items():
        provenance.setdefault(model, {})[tool] = merge_provenance(snaps)
    stalls = [
        {k: v for k, v in event.items() if k not in ("seq", "t", "event")}
        for event in of_kind("cell_stalled")
    ]
    matrix = of_kind("matrix_started")
    finished = of_kind("matrix_finished")
    return {
        "schema": MANIFEST_SCHEMA,
        "config": (
            {k: v for k, v in matrix[0].items()
             if k not in ("seq", "t", "event")}
            if matrix else {}
        ),
        "cells": len(cells_ok) + len(cells_failed),
        "ok": len(cells_ok),
        "failed": len(cells_failed),
        "wall_s": (
            float(finished[-1]["wall_s"]) if finished
            else (float(events[-1].get("t", 0.0)) if events else 0.0)
        ),
        "cell_seconds": round(duration, 6),
        # Always every key: a zero counter and an absent counter must not
        # change the manifest's key set run-to-run.
        "stat_totals": dict(totals),
        # Deterministic fuzz aggregate (count-based; no wall-clock
        # numbers, so workers=1 and workers=N manifests stay identical).
        "fuzz": {"cells": fuzz_cells, **fuzz_totals},
        # Warm-start store traffic (cells with a store attached).  All
        # counts are deterministic given the store's starting contents.
        "store": {"cells": store_cells, **store_totals},
        "phase_seconds": phase_seconds,
        "solver_stages": solver_stages,
        "cache": cache_totals,
        "metrics": metrics,
        "provenance": provenance,
        "stalls": stalls,
        "coverage": coverage,
        "failures": [
            {k: v for k, v in event.items()
             if k not in ("seq", "t", "event")}
            for event in cells_failed
        ],
        "events": len(events),
    }


def emit_trace_events(
    log: EventLog,
    identity: Dict[str, object],
    trace_data: Dict[str, object],
) -> None:
    """Forward one run's ``trace_data`` aggregates as ``repro.trace/1`` events.

    ``identity`` carries the cell-identifying fields (model, tool,
    repetition, ...) stamped onto every emitted event.  No-op when the run
    was not traced.
    """
    if not trace_data:
        return
    snapshot = trace_data.get("metrics") or {}
    if snapshot:
        # The unified registry snapshot; the legacy counter kinds below
        # are views over exactly this document.
        log.emit("metrics", **identity, schema=TRACE_SCHEMA, snapshot=snapshot)
    log.emit(
        "phase_totals",
        **identity,
        schema=TRACE_SCHEMA,
        phases=trace_data.get("phase_totals") or {},
        counters=trace_data.get("counters") or {},
    )
    log.emit(
        "solver_stages",
        **identity,
        schema=TRACE_SCHEMA,
        stages=trace_data.get("solver_stages") or {},
    )
    cache = trace_data.get("cache") or {}
    if cache:
        log.emit(
            "cache_stats",
            **identity,
            schema=TRACE_SCHEMA,
            **{key: int(cache.get(key, 0)) for key in _CACHE_TOTALS},
            unique_states=int(cache.get("unique_states", 0)),
        )
    kernel = trace_data.get("kernel") or {}
    if kernel:
        log.emit(
            "kernel_stats",
            **identity,
            schema=TRACE_SCHEMA,
            enabled=bool(kernel.get("enabled")),
            specialized_blocks=int(kernel.get("specialized_blocks", 0)),
            fallback_blocks=int(kernel.get("fallback_blocks", 0)),
            fallback_classes=list(kernel.get("fallback_classes") or []),
            kernel_steps=int(kernel.get("kernel_steps", 0)),
        )
    solverc = trace_data.get("solverc") or {}
    if solverc:
        log.emit(
            "solverc_stats",
            **identity,
            schema=TRACE_SCHEMA,
            enabled=bool(solverc.get("enabled")),
            **{
                key: int(solverc.get(key, 0))
                for key in SolvercStats.KEYS
            },
        )
    growth = trace_data.get("tree_growth") or []
    if growth:
        log.emit(
            "tree_growth",
            **identity,
            schema=TRACE_SCHEMA,
            points=[[round(float(t), 6), value] for t, value in growth],
        )
    for target in (trace_data.get("solver_targets") or [])[:_MAX_TARGET_SPANS]:
        log.emit(
            "span",
            **identity,
            schema=TRACE_SCHEMA,
            name="solve",
            target=target.get("target"),
            calls=target.get("calls", 0),
            seconds=target.get("seconds", 0.0),
        )


def _jsonable(value: object) -> object:
    """Last-resort JSON coercion for odd stat values (numpy scalars, sets)."""
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    try:
        return float(value)  # numpy floats/ints
    except (TypeError, ValueError):
        return repr(value)


def read_events(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL event stream back into a list of event dicts."""
    events: List[Dict[str, object]] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise ReproError(
                    f"{path}:{line_no}: malformed event line: {err}"
                ) from err
    return events
