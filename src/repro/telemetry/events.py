"""Structured run telemetry: a JSONL event stream plus a run manifest.

Every experiment emits a sequence of events — matrix/run lifecycle, one
record per finished cell (with the generator's ``stats`` and coverage),
per-test-case timeline points and recorded failures.  :class:`EventLog`
buffers them in memory and, when given a path, streams each event to disk
as one JSON line the moment it is emitted, so a crashed or killed run
still leaves a parseable log behind.

Event schema (``repro.events/1``) — every line is an object with:

* ``seq``   — 0-based monotonically increasing sequence number,
* ``t``     — seconds since the log was opened (monotonic clock),
* ``event`` — the kind, one of ``matrix_started``, ``cell_started``,
  ``cell_finished``, ``cell_failed``, ``timeline_point``,
  ``matrix_finished``, ``run_started``, ``run_finished``,
* kind-specific payload fields (model, tool, repetition, seed, coverage
  numbers, solver ``stats``, failure ``kind``/``message``, ...).

The manifest is a single JSON document derived from the event stream:
counts, per-(model, tool) coverage aggregates, failures, and totals over
the generators' solver statistics.
"""

from __future__ import annotations

import json
import time
from typing import Dict, IO, List, Optional, Union

from repro.errors import ReproError

#: Version tag embedded in every stream and manifest.
EVENT_SCHEMA = "repro.events/1"
MANIFEST_SCHEMA = "repro.run-manifest/1"

#: Solver/executor counters summed into the manifest when cells carry them.
_STAT_TOTALS = (
    "solver_calls",
    "sat",
    "unsat",
    "unknown",
    "steps_executed",
    "random_sequences",
    "simulations",
)


class EventLog:
    """An append-only event sink: in-memory list + optional JSONL stream.

    Use as a context manager (or call :meth:`close`) when writing to disk::

        with EventLog("run.jsonl") as events:
            events.emit("run_started", model="TCP", tool="STCG")
    """

    def __init__(self, path: Optional[str] = None):
        self.path = str(path) if path is not None else None
        self._events: List[Dict[str, object]] = []
        self._handle: Optional[IO[str]] = None
        self._t0 = time.monotonic()
        if self.path is not None:
            self._handle = open(self.path, "w")
            self.emit("log_opened", schema=EVENT_SCHEMA)

    # -- emission ------------------------------------------------------

    def emit(self, kind: str, /, **payload: object) -> Dict[str, object]:
        """Record one event; returns the event dict (already serialized)."""
        event: Dict[str, object] = {
            "seq": len(self._events),
            "t": round(time.monotonic() - self._t0, 6),
            "event": kind,
        }
        event.update(payload)
        self._events.append(event)
        if self._handle is not None:
            self._handle.write(json.dumps(event, default=_jsonable) + "\n")
            self._handle.flush()
        return event

    # -- access --------------------------------------------------------

    @property
    def events(self) -> List[Dict[str, object]]:
        """All events emitted so far (the in-memory copy)."""
        return list(self._events)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [e for e in self._events if e["event"] == kind]

    # -- manifest ------------------------------------------------------

    def manifest(self) -> Dict[str, object]:
        """Summarize the event stream into a single run-manifest document."""
        # Single runs (run_finished) aggregate exactly like matrix cells.
        cells_ok = self.of_kind("cell_finished") + self.of_kind("run_finished")
        cells_failed = self.of_kind("cell_failed")
        coverage: Dict[str, Dict[str, Dict[str, object]]] = {}
        totals = {key: 0 for key in _STAT_TOTALS}
        duration = 0.0
        for cell in cells_ok:
            per_tool = coverage.setdefault(str(cell["model"]), {})
            agg = per_tool.setdefault(
                str(cell["tool"]),
                {"decision": 0.0, "condition": 0.0, "mcdc": 0.0, "runs": 0},
            )
            runs = int(agg["runs"])
            for metric in ("decision", "condition", "mcdc"):
                # Running mean, so the manifest matches ToolOutcome.
                agg[metric] = (
                    (float(agg[metric]) * runs + float(cell[metric]))
                    / (runs + 1)
                )
            agg["runs"] = runs + 1
            duration += float(cell.get("duration_s", 0.0))
            stats = cell.get("stats") or {}
            for key in _STAT_TOTALS:
                if key in stats:
                    totals[key] += int(stats[key])
        matrix = self.of_kind("matrix_started")
        finished = self.of_kind("matrix_finished")
        return {
            "schema": MANIFEST_SCHEMA,
            "config": (
                {k: v for k, v in matrix[0].items()
                 if k not in ("seq", "t", "event")}
                if matrix else {}
            ),
            "cells": len(cells_ok) + len(cells_failed),
            "ok": len(cells_ok),
            "failed": len(cells_failed),
            "wall_s": (
                float(finished[-1]["wall_s"]) if finished
                else round(time.monotonic() - self._t0, 6)
            ),
            "cell_seconds": round(duration, 6),
            "stat_totals": {k: v for k, v in totals.items() if v},
            "coverage": coverage,
            "failures": [
                {k: v for k, v in event.items()
                 if k not in ("seq", "t", "event")}
                for event in cells_failed
            ],
            "events": len(self._events),
        }

    def write_manifest(self, path: str) -> Dict[str, object]:
        """Render the manifest to ``path`` as pretty-printed JSON."""
        manifest = self.manifest()
        with open(path, "w") as handle:
            json.dump(manifest, handle, indent=2, default=_jsonable)
            handle.write("\n")
        return manifest

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def _jsonable(value: object) -> object:
    """Last-resort JSON coercion for odd stat values (numpy scalars, sets)."""
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    try:
        return float(value)  # numpy floats/ints
    except (TypeError, ValueError):
        return repr(value)


def read_events(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL event stream back into a list of event dicts."""
    events: List[Dict[str, object]] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as err:
                raise ReproError(
                    f"{path}:{line_no}: malformed event line: {err}"
                ) from err
    return events
