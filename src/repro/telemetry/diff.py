"""Run-regression analysis: ``repro diff`` over two runs.

Compares a *baseline* run against a *candidate* run — each given either
as a ``*.manifest.json`` document or as a raw JSONL event stream (which
is summarized on the fly via :func:`~repro.telemetry.events.build_manifest`,
so the two input kinds are interchangeable) — and reports:

* coverage deltas per (model, tool) and the failed-cell count,
* phase-time deltas (traced runs),
* cache hit-rate and kernel/solverc fallback-rate deltas,
* every changed counter of the unified ``repro.metrics/1`` registry,
* *which* objectives regressed — covered in the baseline but uncovered
  in the candidate — when both runs carry ``repro.provenance/1``
  sections, so a coverage drop names the lost objectives instead of
  just the percentage.

With ``--fail-on-regression`` the diff becomes a CI gate:
:func:`find_regressions` applies :class:`Thresholds` and the CLI exits
non-zero when any rule trips.  Coverage drops and new failures are always
regressions; rate and phase-time rules carry slack thresholds because
they are load-sensitive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.telemetry.events import (
    MANIFEST_SCHEMA,
    build_manifest,
    read_events,
)

__all__ = [
    "RunDiff",
    "Thresholds",
    "diff_runs",
    "find_regressions",
    "load_run",
    "render_diff",
]

#: Coverage metrics compared per (model, tool) aggregate.
_COVERAGE_METRICS = ("decision", "condition", "mcdc")


def load_run(path: str) -> Dict[str, object]:
    """Load one run as a manifest document.

    ``*.jsonl`` paths are treated as event streams and summarized;
    anything else must be a ``repro.run-manifest/1`` JSON document.
    """
    if path.endswith(".jsonl"):
        return build_manifest(read_events(path))
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as err:
        raise ReproError(f"cannot read {path!r}: {err}") from err
    except json.JSONDecodeError as err:
        raise ReproError(f"{path}: not valid JSON: {err}") from err
    if not isinstance(document, dict):
        raise ReproError(f"{path}: expected a manifest object")
    schema = document.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ReproError(
            f"{path}: schema {schema!r} is not {MANIFEST_SCHEMA!r} "
            "(pass a *.manifest.json or a *.jsonl event stream)"
        )
    return document


def _rate(numerator: float, denominator: float) -> Optional[float]:
    """A ratio, or None when the denominator never ticked."""
    return (numerator / denominator) if denominator else None


def cache_hit_rate(manifest: Dict[str, object]) -> Optional[float]:
    """Solve-cache hit rate: hits over (hits + misses), both LRUs."""
    cache = manifest.get("cache") or {}
    hits = int(cache.get("encoding_hits", 0)) + int(
        cache.get("compiled_hits", 0)
    )
    misses = int(cache.get("encoding_misses", 0)) + int(
        cache.get("compiled_misses", 0)
    )
    return _rate(hits, hits + misses)


def _counters(manifest: Dict[str, object]) -> Dict[str, int]:
    metrics = manifest.get("metrics") or {}
    return dict(metrics.get("counters") or {})


def kernel_fallback_rate(manifest: Dict[str, object]) -> Optional[float]:
    """Sim-kernel fallback blocks over all specialized+fallback blocks."""
    counters = _counters(manifest)
    fallback = int(counters.get("kernel.fallback_blocks", 0))
    specialized = int(counters.get("kernel.specialized_blocks", 0))
    return _rate(fallback, fallback + specialized)


def solverc_fallback_rate(manifest: Dict[str, object]) -> Optional[float]:
    """Solver-kernel scalar candidates over all candidate evaluations."""
    counters = _counters(manifest)
    scalar = int(counters.get("solverc.candidates_scalar", 0))
    batched = int(counters.get("solverc.candidates_batched", 0))
    return _rate(scalar, scalar + batched)


@dataclass(frozen=True)
class Thresholds:
    """Slack applied by ``--fail-on-regression`` (all non-negative).

    Coverage and failure rules have no slack by default: any drop or any
    new failure is a regression.  Rate and phase rules tolerate noise —
    a cache hit-rate may dip a few points run to run, and phase times
    breathe with machine load, so phases additionally need an absolute
    floor (``min_phase_s``) before a relative slowdown counts.
    """

    coverage_drop: float = 0.0
    cache_hit_drop: float = 0.05
    fallback_increase: float = 0.05
    phase_slowdown: float = 0.5
    min_phase_s: float = 0.25


@dataclass
class RunDiff:
    """Everything ``repro diff`` compares between two runs."""

    #: (model, tool, metric) -> (baseline, candidate) coverage fractions.
    coverage: Dict[Tuple[str, str, str], Tuple[float, float]]
    #: Failed-cell counts (baseline, candidate).
    failed: Tuple[int, int]
    #: phase -> (baseline, candidate) seconds.
    phases: Dict[str, Tuple[float, float]]
    #: rate name -> (baseline, candidate); None where a side never ticked.
    rates: Dict[str, Tuple[Optional[float], Optional[float]]]
    #: registry counter -> (baseline, candidate), changed counters only.
    counters: Dict[str, Tuple[int, int]]
    #: (model, tool) -> objective ids covered in the baseline but
    #: uncovered in the candidate (provenance-bearing runs only).
    objectives: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)


def diff_runs(
    baseline: Dict[str, object], candidate: Dict[str, object]
) -> RunDiff:
    """Structured comparison of two manifests (see :class:`RunDiff`)."""
    coverage: Dict[Tuple[str, str, str], Tuple[float, float]] = {}
    old_cov = baseline.get("coverage") or {}
    new_cov = candidate.get("coverage") or {}
    for model in sorted(set(old_cov) | set(new_cov)):
        old_tools = old_cov.get(model) or {}
        new_tools = new_cov.get(model) or {}
        for tool in sorted(set(old_tools) | set(new_tools)):
            for metric in _COVERAGE_METRICS:
                coverage[(model, tool, metric)] = (
                    float((old_tools.get(tool) or {}).get(metric, 0.0)),
                    float((new_tools.get(tool) or {}).get(metric, 0.0)),
                )
    old_phases = baseline.get("phase_seconds") or {}
    new_phases = candidate.get("phase_seconds") or {}
    phases = {
        phase: (
            float(old_phases.get(phase, 0.0)),
            float(new_phases.get(phase, 0.0)),
        )
        for phase in sorted(set(old_phases) | set(new_phases))
    }
    rates = {
        "cache_hit": (cache_hit_rate(baseline), cache_hit_rate(candidate)),
        "kernel_fallback": (
            kernel_fallback_rate(baseline),
            kernel_fallback_rate(candidate),
        ),
        "solverc_fallback": (
            solverc_fallback_rate(baseline),
            solverc_fallback_rate(candidate),
        ),
    }
    old_counters = _counters(baseline)
    new_counters = _counters(candidate)
    counters = {
        name: (int(old_counters.get(name, 0)), int(new_counters.get(name, 0)))
        for name in sorted(set(old_counters) | set(new_counters))
        if int(old_counters.get(name, 0)) != int(new_counters.get(name, 0))
    }
    return RunDiff(
        coverage=coverage,
        failed=(int(baseline.get("failed", 0)), int(candidate.get("failed", 0))),
        phases=phases,
        rates=rates,
        counters=counters,
        objectives=_regressed_objectives(baseline, candidate),
    )


def _regressed_objectives(
    baseline: Dict[str, object], candidate: Dict[str, object]
) -> Dict[Tuple[str, str], List[str]]:
    """Objectives covered in the baseline but not in the candidate.

    Only cells carrying a provenance section on *both* sides contribute —
    an absent section (provenance off, or a pre-provenance manifest) is
    indistinguishable from "nothing covered" and must not read as a
    regression of every objective.

    A *present* section is a different matter: once the candidate carries
    a provenance snapshot for the (model, tool), every baseline-covered
    objective that is not covered there is lost — explicitly marked
    ``uncovered``, missing from the candidate's objective map, or an
    empty map (zero covered objectives) all count.  The earlier
    intersection semantics treated an empty ``objectives`` map like an
    absent section and silently hid a lost-everything regression.
    """
    regressed: Dict[Tuple[str, str], List[str]] = {}
    old_prov = baseline.get("provenance") or {}
    new_prov = candidate.get("provenance") or {}
    for model in sorted(set(old_prov) & set(new_prov)):
        old_tools = old_prov.get(model) or {}
        new_tools = new_prov.get(model) or {}
        for tool in sorted(set(old_tools) & set(new_tools)):
            old_objectives = (old_tools[tool] or {}).get("objectives") or {}
            new_objectives = (new_tools[tool] or {}).get("objectives") or {}
            lost = [
                objective_id
                for objective_id, entry in old_objectives.items()
                if entry.get("status") == "covered"
                and (new_objectives.get(objective_id) or {}).get("status")
                != "covered"
            ]
            if lost:
                regressed[(model, tool)] = lost
    return regressed


def find_regressions(
    diff: RunDiff, thresholds: Thresholds = Thresholds()
) -> List[str]:
    """The regression rules; one human-readable line per rule that trips."""
    problems: List[str] = []
    for (model, tool, metric), (old, new) in sorted(diff.coverage.items()):
        if old - new > thresholds.coverage_drop + 1e-9:
            problems.append(
                f"coverage: {model}/{tool} {metric} dropped "
                f"{old:.1%} -> {new:.1%}"
            )
    for (model, tool), lost in sorted(diff.objectives.items()):
        shown = ", ".join(lost[:5])
        more = f" (+{len(lost) - 5} more)" if len(lost) > 5 else ""
        problems.append(
            f"objectives: {model}/{tool} lost {len(lost)} "
            f"objective(s): {shown}{more}"
        )
    old_failed, new_failed = diff.failed
    if new_failed > old_failed:
        problems.append(
            f"failures: {old_failed} -> {new_failed} failed cell(s)"
        )
    old_rate, new_rate = diff.rates["cache_hit"]
    if old_rate is not None and new_rate is not None:
        if old_rate - new_rate > thresholds.cache_hit_drop + 1e-9:
            problems.append(
                f"cache hit-rate dropped {old_rate:.1%} -> {new_rate:.1%} "
                f"(slack {thresholds.cache_hit_drop:.1%})"
            )
    for name in ("kernel_fallback", "solverc_fallback"):
        old_rate, new_rate = diff.rates[name]
        if old_rate is None or new_rate is None:
            continue
        if new_rate - old_rate > thresholds.fallback_increase + 1e-9:
            problems.append(
                f"{name.replace('_', ' ')} rate rose "
                f"{old_rate:.1%} -> {new_rate:.1%} "
                f"(slack {thresholds.fallback_increase:.1%})"
            )
    for phase, (old, new) in sorted(diff.phases.items()):
        if new - old <= thresholds.min_phase_s:
            continue
        if new > old * (1.0 + thresholds.phase_slowdown):
            problems.append(
                f"phase {phase!r} slowed {old:.3f}s -> {new:.3f}s "
                f"(> {thresholds.phase_slowdown:.0%} over baseline)"
            )
    return problems


def _fmt_rate(value: Optional[float]) -> str:
    return "--" if value is None else f"{value:6.1%}"


def render_diff(diff: RunDiff, problems: Optional[List[str]] = None) -> str:
    """The ``repro diff`` report text."""
    lines: List[str] = ["== coverage =="]
    changed = False
    for (model, tool, metric), (old, new) in sorted(diff.coverage.items()):
        delta = new - old
        if abs(delta) <= 1e-9:
            continue
        changed = True
        lines.append(
            f"  {model:12s} {tool:10s} {metric:9s} "
            f"{old:6.1%} -> {new:6.1%}  ({delta:+.1%})"
        )
    if not changed:
        lines.append("  (no coverage changes)")
    if diff.objectives:
        lines.append("")
        lines.append("== regressed objectives ==")
        for (model, tool), lost in sorted(diff.objectives.items()):
            lines.append(f"  {model}/{tool}: {len(lost)} lost")
            for objective_id in lost[:10]:
                lines.append(f"    - {objective_id}")
            if len(lost) > 10:
                lines.append(f"    ... and {len(lost) - 10} more")
    old_failed, new_failed = diff.failed
    lines.append(
        f"  failed cells: {old_failed} -> {new_failed} "
        f"({new_failed - old_failed:+d})"
    )
    lines.append("")
    lines.append("== rates ==")
    for name, (old, new) in diff.rates.items():
        label = name.replace("_", " ")
        lines.append(
            f"  {label:18s} {_fmt_rate(old)} -> {_fmt_rate(new)}"
        )
    lines.append("")
    lines.append("== phase seconds ==")
    if diff.phases:
        for phase, (old, new) in sorted(
            diff.phases.items(), key=lambda kv: -max(kv[1])
        ):
            lines.append(
                f"  {phase:14s} {old:9.3f}s -> {new:9.3f}s "
                f"({new - old:+.3f}s)"
            )
    else:
        lines.append("  (neither run carries phase totals — traced runs only)")
    lines.append("")
    lines.append("== changed metric counters ==")
    if diff.counters:
        for name, (old, new) in diff.counters.items():
            lines.append(f"  {name:32s} {old:>10d} -> {new:<10d}")
    else:
        lines.append("  (no registry counter changed)")
    lines.append("")
    if problems:
        lines.append("== regressions ==")
        for problem in problems:
            lines.append(f"  [regression] {problem}")
    else:
        lines.append("no regressions detected")
    return "\n".join(lines)
