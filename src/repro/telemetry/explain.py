"""``repro explain``: render coverage provenance as a readable audit.

Consumes a run — a ``*.manifest.json`` or a raw JSONL event stream, via
:func:`~repro.telemetry.diff.load_run` — whose manifest carries a
``repro.provenance/1`` section, and answers the two questions Table III
raises per cell:

* *who covered this objective?* — the (repetition, case, step, origin)
  attribution of the first covering execution, and
* *why is this objective still uncovered?* — the solver-attempt audit
  chain: per-stage verdict counters, cache short-circuits (verdict-cache
  UNSAT replays, constant-false folds) and the bounded attempt trail
  with engine/kernel attribution.

``--objective`` narrows the report to one objective id across every
(model, tool) cell; ``--uncovered`` lists only the uncovered objectives
with their full audit chains.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.telemetry.diff import load_run

__all__ = ["load_provenance", "render_explain"]


def load_provenance(path: str) -> Dict[str, Dict[str, Dict[str, object]]]:
    """The manifest's ``{model: {tool: merged snapshot}}`` section.

    Accepts the same inputs as ``repro diff`` (manifest or JSONL stream)
    and fails with a pointed error when the run carries no provenance —
    either the ledger was off or the stream predates it.
    """
    manifest = load_run(path)
    provenance = manifest.get("provenance") or {}
    if not provenance:
        raise ReproError(
            f"{path}: no provenance section — re-run with the ledger on "
            "(it is on by default; --no-provenance turns it off)"
        )
    return provenance


def _case_label(entry: Dict[str, object]) -> str:
    """Human phrasing of a cover attribution's case index."""
    case = entry.get("case")
    if case is None:
        return "a discarded candidate"
    return f"case {case}"


def _covered_line(objective_id: str, entry: Dict[str, object]) -> str:
    repetition = entry.get("repetition")
    rep = f", rep {repetition}" if repetition is not None else ""
    failed = int(entry.get("failed_attempts", 0))
    tail = f" after {failed} failed attempt(s)" if failed else ""
    return (
        f"  [covered] {objective_id}: {_case_label(entry)} "
        f"step {entry.get('step')} via {entry.get('origin')}{rep}{tail}"
    )


def _uncovered_lines(objective_id: str, entry: Dict[str, object]) -> List[str]:
    lines = [f"  [uncovered] {objective_id}"]
    attempts = entry.get("attempts") or {}
    skips = entry.get("skips") or {}
    if attempts:
        summary = ", ".join(
            f"{key} x{count}" for key, count in attempts.items()
        )
        lines.append(f"    attempts: {summary}")
    if skips:
        summary = ", ".join(f"{key} x{count}" for key, count in skips.items())
        lines.append(f"    skips:    {summary}")
    if not attempts and not skips:
        lines.append("    never attempted (no reaching state was explored)")
    for row in entry.get("trail") or []:
        engine = row.get("engine")
        compiled = "compiled" if row.get("compiled") else "interpreted"
        lines.append(
            f"    node {row.get('node')} -> {row.get('verdict')}"
            f"@{row.get('stage')} ({engine} engine, {compiled})"
        )
    return lines


def render_explain(
    provenance: Dict[str, Dict[str, Dict[str, object]]],
    objective: Optional[str] = None,
    uncovered: bool = False,
) -> str:
    """The explain report over a manifest's provenance section.

    Default scope is every objective of every (model, tool) cell;
    ``objective`` narrows to one id (matching cells only), ``uncovered``
    to the objectives still uncovered.  The two filters compose.
    """
    lines: List[str] = []
    matched = False
    for model in sorted(provenance):
        for tool in sorted(provenance[model]):
            snapshot = provenance[model][tool] or {}
            objectives = snapshot.get("objectives") or {}
            selected = []
            for objective_id, entry in objectives.items():
                if objective is not None and objective_id != objective:
                    continue
                if uncovered and entry.get("status") != "uncovered":
                    continue
                selected.append((objective_id, entry))
            if not selected:
                continue
            matched = True
            totals = snapshot.get("totals") or {}
            runs = snapshot.get("runs")
            runs_note = f", {runs} run(s)" if runs is not None else ""
            lines.append(
                f"== {model} / {tool} "
                f"({totals.get('covered', 0)}/{totals.get('objectives', 0)} "
                f"covered{runs_note}) =="
            )
            for objective_id, entry in selected:
                if entry.get("status") == "covered":
                    lines.append(_covered_line(objective_id, entry))
                else:
                    lines.extend(_uncovered_lines(objective_id, entry))
            lines.append("")
    if not matched:
        if objective is not None:
            raise ReproError(
                f"objective {objective!r} matched nothing"
                + (" uncovered" if uncovered else "")
                + " — ids look like 'D:<decision>:<outcome>', "
                "'C:<point>:c0=T' or 'M:<point>:c0=T'"
            )
        lines.append("every objective of every cell is covered")
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)
