"""Structured run telemetry: JSONL event streams and run manifests."""

from repro.telemetry.events import (
    EVENT_SCHEMA,
    EventLog,
    MANIFEST_SCHEMA,
    read_events,
)

__all__ = [
    "EVENT_SCHEMA",
    "EventLog",
    "MANIFEST_SCHEMA",
    "read_events",
]
