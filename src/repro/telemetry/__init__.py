"""Structured run telemetry: JSONL event streams and run manifests."""

from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.diff import (
    RunDiff,
    Thresholds,
    diff_runs,
    find_regressions,
    load_run,
    render_diff,
)
from repro.telemetry.events import (
    EVENT_SCHEMA,
    EventLog,
    MANIFEST_SCHEMA,
    TRACE_KINDS,
    TRACE_SCHEMA,
    build_manifest,
    emit_trace_events,
    read_events,
)
from repro.telemetry.explain import load_provenance, render_explain
from repro.telemetry.tail import cell_rows, render_tail

__all__ = [
    "EVENT_SCHEMA",
    "EventLog",
    "MANIFEST_SCHEMA",
    "RunDiff",
    "TRACE_KINDS",
    "TRACE_SCHEMA",
    "Thresholds",
    "build_manifest",
    "cell_rows",
    "diff_runs",
    "emit_trace_events",
    "find_regressions",
    "load_provenance",
    "load_run",
    "read_events",
    "render_dashboard",
    "render_diff",
    "render_explain",
    "render_tail",
]
