"""Structured run telemetry: JSONL event streams and run manifests."""

from repro.telemetry.events import (
    EVENT_SCHEMA,
    EventLog,
    MANIFEST_SCHEMA,
    TRACE_KINDS,
    TRACE_SCHEMA,
    build_manifest,
    emit_trace_events,
    read_events,
)

__all__ = [
    "EVENT_SCHEMA",
    "EventLog",
    "MANIFEST_SCHEMA",
    "TRACE_KINDS",
    "TRACE_SCHEMA",
    "build_manifest",
    "emit_trace_events",
    "read_events",
]
