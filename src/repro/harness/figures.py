"""Renderers for the paper's figures.

* :func:`figure3` — the simplified CPUTask branch structure and the
  explored state tree (paper Figure 3),
* :func:`figure4` — decision coverage versus time per model and tool,
  as an ASCII plot plus the underlying series; STCG points are marked
  ``^`` (solver-derived, the paper's triangle) or ``*`` (random-sequence,
  the paper's diamond).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.result import GenerationResult, ORIGIN_SOLVER
from repro.harness.tables import branch_number, run_table1


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


def figure3(budget_s: float = 10.0, seed: int = 0) -> str:
    """Branch structure (a) + explored state tree (b) of SimpleCPUTask."""
    rows, generator = run_table1(budget_s, seed)
    registry = generator.compiled.registry
    lines = ["(a) model branches"]
    for decision in registry.decisions:
        for branch in decision.branches:
            indent = "    " * branch.depth
            lines.append(
                f"  {indent}{branch_number(branch.label)}: {branch.label}"
            )
    lines.append("")
    lines.append("(b) explored state tree")
    lines.append(generator.tree.render(max_nodes=120))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


def timeline_series(
    result: GenerationResult, budget_s: float, points: int = 24
) -> List[Tuple[float, float]]:
    """Sampled (time, decision coverage) step series of one run."""
    series = []
    for index in range(points + 1):
        t = budget_s * index / points
        series.append((t, result.coverage_at(t)))
    return series


def figure4_model(
    results: Dict[str, GenerationResult],
    budget_s: float,
    width: int = 60,
    height: int = 12,
) -> str:
    """ASCII coverage-vs-time plot for one model (all tools overlaid).

    Line characters: ``s`` = SLDV, ``c`` = SimCoTest; STCG events are
    drawn at their timestamps as ``^`` (constraint solving on internal
    states) or ``*`` (random input sequence), the paper's markers.
    """
    rows = [[" "] * width for _ in range(height)]
    symbol = {"SLDV": "s", "SimCoTest": "c"}

    def put(t: float, coverage: float, mark: str) -> None:
        x = min(width - 1, int(t / budget_s * (width - 1)))
        y = min(height - 1, int((1.0 - coverage) * (height - 1)))
        rows[y][x] = mark

    for tool, result in results.items():
        if tool == "STCG":
            continue
        for t, coverage in timeline_series(result, budget_s, points=width - 1):
            put(t, coverage, symbol.get(tool, "?"))
    stcg = results.get("STCG")
    if stcg is not None:
        for t, coverage in timeline_series(stcg, budget_s, points=width - 1):
            put(t, coverage, ".")
        for event in stcg.timeline:
            mark = "^" if event.origin == ORIGIN_SOLVER else "*"
            put(event.t, event.decision_coverage, mark)
    lines = []
    for index, row in enumerate(rows):
        coverage_label = 100 - int(100 * index / (height - 1))
        lines.append(f"{coverage_label:3d}% |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      0s{' ' * (width - 10)}{budget_s:.0f}s")
    lines.append(
        "      legend: ^ STCG solver-derived, * STCG random-sequence, "
        "s SLDV, c SimCoTest"
    )
    return "\n".join(lines)


def figure4(
    all_results: Dict[str, Dict[str, GenerationResult]], budget_s: float
) -> str:
    """Full Figure 4: one plot per model plus the raw event lists."""
    sections = []
    for model_name, per_tool in all_results.items():
        sections.append(f"== {model_name} ==")
        sections.append(figure4_model(per_tool, budget_s))
        stcg = per_tool.get("STCG")
        if stcg is not None:
            events = ", ".join(
                f"{e.t:.1f}s:{e.decision_coverage:.0%}"
                f"({'solve' if e.origin == ORIGIN_SOLVER else 'rand'})"
                for e in stcg.timeline[:12]
            )
            sections.append(f"   STCG events: {events}")
        sections.append("")
    return "\n".join(sections)
