"""Renderers for the paper's tables.

* :func:`table1` — the state-tree construction log on the simplified
  CPUTask model (paper Table I),
* :func:`table2` — benchmark-model inventory, paper vs measured
  (paper Table II),
* :func:`table3` — the three-tool coverage comparison with average
  improvement rows (paper Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.config import StcgConfig
from repro.core.stcg import StcgGenerator
from repro.harness.runner import ToolOutcome, average_improvements
from repro.models.registry import SIMPLE_CPUTASK, BenchmarkModel


def _grid(rows: List[List[str]], header: List[str]) -> str:
    """Minimal fixed-width table renderer."""
    table = [header] + rows
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        cells = [cell.ljust(width) for cell, width in zip(row, widths)]
        lines.append("  ".join(cells).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

#: Figure 3(a) branch numbering for the simplified CPUTask model.
_B_LABELS = [
    ("SwitchCase1:case_1", "B1"),
    ("SwitchCase1:case_2", "B2"),
    ("SwitchCase1:case_3", "B3"),
    ("SwitchCase1:case_4", "B4"),
    ("SwitchCase1:default", "B5"),
    # The status switches select on the *failure* condition (full / miss),
    # so their "true" outcome is the operation-failure branch.
    ("add/Switch1:false", "B6"),
    ("add/Switch1:true", "B7"),
    ("del/Switch2:false", "B8"),
    ("del/Switch2:true", "B9"),
    ("mod/Switch3:false", "B10"),
    ("mod/Switch3:true", "B11"),
    ("chk/Switch4:false", "B12"),
    ("chk/Switch4:true", "B13"),
]


def branch_number(label: str) -> str:
    """Map a registry branch label to its Figure 3(a) B-number."""
    for suffix, b_name in _B_LABELS:
        if label.endswith(suffix):
            return b_name
    return label


@dataclass
class Table1Row:
    step: int
    description: str
    coverage_bitmap: str


def run_table1(budget_s: float = 10.0, seed: int = 0):
    """Run STCG on the simplified CPUTask with tracing; returns
    (rows, generator)."""
    compiled = SIMPLE_CPUTASK.build()
    config = StcgConfig(budget_s=budget_s, seed=seed, record_trace=True)
    generator = StcgGenerator(compiled, config)
    generator.run()
    branch_order = [b for b in compiled.registry.branches]
    rows: List[Table1Row] = []
    covered: set = set()
    step = 0

    def bitmap() -> str:
        return "".join(
            "I" if b.branch_id in covered else "." for b in branch_order
        )

    for entry in generator.trace:
        if entry.kind == "solve_fail":
            step += 1
            rows.append(
                Table1Row(
                    step,
                    f"Try to solve {branch_number(entry.branch_label)} "
                    f"on state S{entry.node_id}, but failed.",
                    bitmap(),
                )
            )
        elif entry.kind == "solve_ok":
            # The following exec entry reports what was achieved.
            step += 1
            rows.append(
                Table1Row(
                    step,
                    f"Solved {branch_number(entry.branch_label)} "
                    f"on state S{entry.node_id}.",
                    bitmap(),
                )
            )
        elif entry.kind in ("exec", "random"):
            covered.update(entry.achieved_branches)
            achieved = ", ".join(
                branch_number(branch_order[i].label)
                for i in sorted(entry.achieved_branches)
            )
            if entry.kind == "random" and entry.achieved_branches:
                step += 1
                rows.append(
                    Table1Row(
                        step,
                        f"Random execution achieved {achieved}.",
                        bitmap(),
                    )
                )
            elif entry.achieved_branches:
                rows[-1].description += f" Achieved {achieved}."
                rows[-1].coverage_bitmap = bitmap()
    return rows, generator


def table1(budget_s: float = 10.0, seed: int = 0) -> str:
    rows, generator = run_table1(budget_s, seed)
    rendered = _grid(
        [[str(r.step), r.description, r.coverage_bitmap] for r in rows],
        ["Step", "Action", "Total Achieved Branch"],
    )
    summary = generator.collector.summary()
    footer = (
        f"\nFinal: decision={summary.decision:.0%} "
        f"({summary.covered_branches}/{summary.total_branches} branches), "
        f"tree nodes={len(generator.tree)}"
    )
    return rendered + footer


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


def table2(models: Sequence[BenchmarkModel]) -> str:
    """Model inventory: paper-reported vs measured branch/block counts."""
    rows = []
    for model in models:
        compiled = model.build()
        rows.append(
            [
                model.name,
                model.functionality,
                str(model.paper_branches),
                str(compiled.registry.n_branches),
                str(model.paper_blocks),
                str(compiled.n_blocks),
            ]
        )
    return _grid(
        rows,
        [
            "Model",
            "Functionality",
            "#Branch(paper)",
            "#Branch(ours)",
            "#Block(paper)",
            "#Block(ours)",
        ],
    )


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------

#: The paper's Table III numbers, for side-by-side reporting.
PAPER_TABLE3: Dict[str, Dict[str, Tuple[int, int, int]]] = {
    "CPUTask": {"SLDV": (89, 72, 42), "SimCoTest": (72, 56, 21), "STCG": (100, 100, 100)},
    "AFC": {"SLDV": (67, 64, 11), "SimCoTest": (72, 68, 11), "STCG": (83, 79, 22)},
    "TWC": {"SLDV": (46, 68, 40), "SimCoTest": (15, 57, 20), "STCG": (92, 97, 100)},
    "NICProtocol": {"SLDV": (75, 83, 10), "SimCoTest": (30, 43, 10), "STCG": (95, 98, 100)},
    "UTPC": {"SLDV": (44, 59, 44), "SimCoTest": (40, 58, 44), "STCG": (100, 100, 100)},
    "LANSwitch": {"SLDV": (72, 76, 15), "SimCoTest": (78, 81, 15), "STCG": (100, 98, 55)},
    "LEDLC": {"SLDV": (55, 41, 43), "SimCoTest": (55, 41, 43), "STCG": (98, 100, 100)},
    "TCP": {"SLDV": (63, 64, 33), "SimCoTest": (82, 74, 17), "STCG": (99, 100, 67)},
}


def table3(results: Dict[str, Dict[str, ToolOutcome]]) -> str:
    """Render the coverage comparison with average-improvement rows."""
    rows: List[List[str]] = []
    for model_name, per_tool in results.items():
        paper = PAPER_TABLE3.get(model_name, {})
        # The paper's three columns plus the opt-in fuzzing columns;
        # tools missing from the run are skipped, so the default
        # three-tool matrix renders exactly as before.
        for tool in ("SLDV", "SimCoTest", "STCG", "Fuzz", "Hybrid"):
            outcome = per_tool.get(tool)
            if outcome is None:
                continue
            paper_cell = (
                "{}%/{}%/{}%".format(*paper[tool]) if tool in paper else "-"
            )
            rows.append(
                [
                    model_name,
                    tool,
                    f"{outcome.decision:.0%}",
                    f"{outcome.condition:.0%}",
                    f"{outcome.mcdc:.0%}",
                    paper_cell,
                ]
            )
    rendered = _grid(
        rows,
        ["Model", "Tool", "Decision", "Condition", "MCDC", "Paper(D/C/M)"],
    )
    lines = [rendered, ""]
    for baseline, paper_gain in (
        ("SLDV", (58, 52, 239)),
        ("SimCoTest", (132, 70, 237)),
    ):
        if all(baseline in per_tool for per_tool in results.values()):
            gains = average_improvements(results, baseline)
            lines.append(
                f"Average improvement vs {baseline}: "
                f"decision +{gains['decision']:.0%} (paper +{paper_gain[0]}%), "
                f"condition +{gains['condition']:.0%} (paper +{paper_gain[1]}%), "
                f"MCDC +{gains['mcdc']:.0%} (paper +{paper_gain[2]}%)"
            )
    return "\n".join(lines)
