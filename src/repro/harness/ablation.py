"""Ablations of STCG's design choices (the paper's Discussion section).

Three experiments:

* :func:`dead_logic_waste` — with vs without the constant-false fast path:
  how many solver attempts are wasted re-proving perpetually false
  branches ("STCG performs multiple solving for this type of branch,
  resulting in a lot of wasted time"),
* :func:`hybrid_warmup` — random-first then solve ("if the random method
  can be introduced into STCG to perform the random generation process
  first ... the efficiency of STCG can be further improved"),
* :func:`library_vs_fresh` — library-only random sequences vs mixing in
  fresh random inputs ("constructing a random input sequence using only
  previously solved inputs may not reach some branches").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import StcgConfig
from repro.core.result import GenerationResult
from repro.core.stcg import StcgGenerator
from repro.models.registry import BenchmarkModel


@dataclass
class AblationRun:
    """One variant's outcome."""

    variant: str
    result: GenerationResult

    @property
    def decision(self) -> float:
        return self.result.decision

    def stat(self, key: str) -> int:
        return int(self.result.stats.get(key, 0))


def _run(model: BenchmarkModel, config: StcgConfig) -> GenerationResult:
    return StcgGenerator(model.build(), config).run()


def dead_logic_waste(
    model: BenchmarkModel, budget_s: float = 10.0, seed: int = 0
) -> List[AblationRun]:
    """Compare solver effort with/without the constant-false fast path."""
    with_skip = _run(
        model, StcgConfig(budget_s=budget_s, seed=seed, skip_constant_false=True)
    )
    without_skip = _run(
        model,
        StcgConfig(budget_s=budget_s, seed=seed, skip_constant_false=False),
    )
    return [
        AblationRun("skip-constant-false", with_skip),
        AblationRun("always-invoke-solver", without_skip),
    ]


def hybrid_warmup(
    model: BenchmarkModel,
    budget_s: float = 10.0,
    warmup_fraction: float = 0.3,
    seed: int = 0,
) -> List[AblationRun]:
    """Compare plain STCG against the random-first hybrid."""
    plain = _run(model, StcgConfig(budget_s=budget_s, seed=seed))
    hybrid = _run(
        model,
        StcgConfig(
            budget_s=budget_s,
            seed=seed,
            random_warmup_s=budget_s * warmup_fraction,
        ),
    )
    return [AblationRun("solver-first", plain), AblationRun("random-warmup", hybrid)]


def dead_branch_proving(
    model: BenchmarkModel, budget_s: float = 10.0, seed: int = 0
) -> List[AblationRun]:
    """STCG with vs without the abstract-interpretation dead-branch proofs
    (the Discussion's proposed formal verification of unreachable logic)."""
    without = _run(model, StcgConfig(budget_s=budget_s, seed=seed))
    with_proofs = _run(
        model,
        StcgConfig(budget_s=budget_s, seed=seed, prove_dead_branches=True),
    )
    return [
        AblationRun("no-proofs", without),
        AblationRun("prove-dead-branches", with_proofs),
    ]


def library_vs_fresh(
    model: BenchmarkModel, budget_s: float = 10.0, seed: int = 0
) -> List[AblationRun]:
    """Library-only vs mixed vs fully fresh random sequences."""
    variants = [
        ("library-only", StcgConfig(budget_s=budget_s, seed=seed, fresh_input_mix=0.0)),
        ("mixed-25%", StcgConfig(budget_s=budget_s, seed=seed, fresh_input_mix=0.25)),
        ("fresh-only", StcgConfig(budget_s=budget_s, seed=seed, fresh_input_mix=1.0)),
    ]
    return [AblationRun(name, _run(model, cfg)) for name, cfg in variants]


def render(runs: List[AblationRun]) -> str:
    """Small table of variant vs coverage and solver effort."""
    lines = [
        f"{'variant':22s} {'decision':>9s} {'condition':>10s} {'mcdc':>6s} "
        f"{'solver_calls':>13s} {'const_false':>12s} {'cases':>6s}"
    ]
    for run in runs:
        result = run.result
        lines.append(
            f"{run.variant:22s} {result.decision:>9.0%} "
            f"{result.condition:>10.0%} {result.mcdc:>6.0%} "
            f"{run.stat('solver_calls'):>13d} "
            f"{run.stat('const_false_skips'):>12d} {len(result.suite):>6d}"
        )
    return "\n".join(lines)
