"""Experiment harness: run matrices and paper table/figure renderers."""

from repro.harness.ablation import (
    AblationRun,
    dead_branch_proving,
    dead_logic_waste,
    hybrid_warmup,
    library_vs_fresh,
)
from repro.harness.figures import figure3, figure4, figure4_model, timeline_series
from repro.harness.runner import (
    MatrixConfig,
    TOOLS,
    ToolOutcome,
    average_improvements,
    improvement,
)
from repro.harness.tables import PAPER_TABLE3, run_table1, table1, table2, table3

__all__ = [
    "AblationRun",
    "MatrixConfig",
    "PAPER_TABLE3",
    "TOOLS",
    "ToolOutcome",
    "average_improvements",
    "dead_branch_proving",
    "dead_logic_waste",
    "figure3",
    "figure4",
    "figure4_model",
    "hybrid_warmup",
    "improvement",
    "library_vs_fresh",
    "run_table1",
    "table1",
    "table2",
    "table3",
    "timeline_series",
]
