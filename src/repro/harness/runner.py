"""Matrix configuration and the paper's improvement arithmetic.

The paper runs every tool for one hour and repeats randomized tools ten
times.  Budgets and repetition counts are scaled-down knobs here; the
harness averages coverage over repetitions exactly as the paper does.

Entry points live elsewhere: :func:`repro.api.generate` for a single run
and :func:`repro.api.run_experiment` for the full matrix (process-pool
parallelism, per-cell timeouts, crash isolation, telemetry).  The
deprecated ``run_tool``/``run_matrix`` shims that used to live here were
removed; :class:`MatrixConfig` remains the single validation point for
matrix budgets.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.exec.executor import TOOLS, ToolOutcome

__all__ = [
    "MatrixConfig",
    "TOOLS",
    "ToolOutcome",
    "average_improvements",
    "improvement",
]


@dataclass(kw_only=True)
class MatrixConfig:
    """Budgets for a comparison run (keyword-only, validated)."""

    budget_s: float = 30.0
    #: Repetitions for tools with random components (STCG, SimCoTest).
    repetitions: int = 3
    #: SLDV is deterministic given the seed; one repetition suffices.
    sldv_repetitions: int = 1
    seed: int = 0
    sldv_max_depth: int = 6

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ConfigError(
                f"budget_s must be positive, got {self.budget_s!r}"
            )
        if self.repetitions < 1:
            raise ConfigError(
                f"repetitions must be >= 1, got {self.repetitions!r}"
            )
        if self.sldv_repetitions < 1:
            raise ConfigError(
                f"sldv_repetitions must be >= 1, got {self.sldv_repetitions!r}"
            )
        if self.sldv_max_depth < 1:
            raise ConfigError(
                f"sldv_max_depth must be >= 1, got {self.sldv_max_depth!r}"
            )
        if not isinstance(self.seed, int):
            raise ConfigError(f"seed must be an int, got {self.seed!r}")


def improvement(stcg: float, baseline: float) -> Optional[float]:
    """Relative improvement of STCG over a baseline (None when baseline=0)."""
    if baseline <= 0.0:
        return None
    return (stcg - baseline) / baseline


def average_improvements(
    results: Dict[str, Dict[str, ToolOutcome]], against: str
) -> Dict[str, float]:
    """Mean relative improvement of STCG vs a baseline over all models."""
    gains: Dict[str, List[float]] = {"decision": [], "condition": [], "mcdc": []}
    for per_tool in results.values():
        stcg = per_tool["STCG"]
        base = per_tool[against]
        for metric in gains:
            gain = improvement(getattr(stcg, metric), getattr(base, metric))
            if gain is not None:
                gains[metric].append(gain)
    return {
        metric: (statistics.mean(values) if values else 0.0)
        for metric, values in gains.items()
    }
