"""Legacy run-matrix entry points, now thin shims over :mod:`repro.exec`.

The paper runs every tool for one hour and repeats randomized tools ten
times.  Budgets and repetition counts are scaled-down knobs here; the
harness averages coverage over repetitions exactly as the paper does.

``run_tool`` and ``run_matrix`` predate the parallel executor and are kept
for backwards compatibility only — new code should call
:func:`repro.api.run_experiment` (or :func:`repro.exec.execute_matrix`
directly), which adds process-pool parallelism, per-cell timeouts, crash
isolation and structured telemetry.
"""

from __future__ import annotations

import statistics
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.result import GenerationResult
from repro.errors import ConfigError, HarnessError
from repro.exec.executor import (
    TOOLS,
    ToolOutcome,
    execute_matrix,
    run_single,
)
from repro.models.registry import BenchmarkModel

__all__ = [
    "MatrixConfig",
    "TOOLS",
    "ToolOutcome",
    "average_improvements",
    "improvement",
    "run_matrix",
    "run_tool",
]


@dataclass(kw_only=True)
class MatrixConfig:
    """Budgets for a comparison run (keyword-only, validated)."""

    budget_s: float = 30.0
    #: Repetitions for tools with random components (STCG, SimCoTest).
    repetitions: int = 3
    #: SLDV is deterministic given the seed; one repetition suffices.
    sldv_repetitions: int = 1
    seed: int = 0
    sldv_max_depth: int = 6

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ConfigError(
                f"budget_s must be positive, got {self.budget_s!r}"
            )
        if self.repetitions < 1:
            raise ConfigError(
                f"repetitions must be >= 1, got {self.repetitions!r}"
            )
        if self.sldv_repetitions < 1:
            raise ConfigError(
                f"sldv_repetitions must be >= 1, got {self.sldv_repetitions!r}"
            )
        if self.sldv_max_depth < 1:
            raise ConfigError(
                f"sldv_max_depth must be >= 1, got {self.sldv_max_depth!r}"
            )
        if not isinstance(self.seed, int):
            raise ConfigError(f"seed must be an int, got {self.seed!r}")


def run_tool(
    tool: str,
    model: BenchmarkModel,
    budget_s: float,
    seed: int,
    sldv_max_depth: int = 6,
) -> GenerationResult:
    """One generation run of one tool on a fresh build of the model.

    .. deprecated:: 1.1
       Use :func:`repro.api.generate` instead.
    """
    warnings.warn(
        "run_tool is deprecated; use repro.api.generate",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_single(tool, model, budget_s, seed, sldv_max_depth)


def run_matrix(
    models: Sequence[BenchmarkModel],
    config: Optional[MatrixConfig] = None,
    tools: Sequence[str] = TOOLS,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, ToolOutcome]]:
    """Run every tool on every model; returns ``{model: {tool: outcome}}``.

    .. deprecated:: 1.1
       Use :func:`repro.api.run_experiment`, which adds ``workers``,
       ``cell_timeout`` and telemetry.  This shim runs the same executor
       serially and re-raises the first recorded cell failure, matching the
       legacy fail-fast behaviour.
    """
    warnings.warn(
        "run_matrix is deprecated; use repro.api.run_experiment",
        DeprecationWarning,
        stacklevel=2,
    )
    config = config or MatrixConfig()
    result = execute_matrix(
        models,
        tools,
        budget_s=config.budget_s,
        repetitions=config.repetitions,
        sldv_repetitions=config.sldv_repetitions,
        seed=config.seed,
        sldv_max_depth=config.sldv_max_depth,
        workers=1,
        progress=progress,
    )
    if result.failures:
        first = result.failures[0]
        raise HarnessError(
            f"{len(result.failures)} matrix cell(s) failed; first: "
            f"{first.label} ({first.kind}: {first.message})"
        )
    return result.outcomes


def improvement(stcg: float, baseline: float) -> Optional[float]:
    """Relative improvement of STCG over a baseline (None when baseline=0)."""
    if baseline <= 0.0:
        return None
    return (stcg - baseline) / baseline


def average_improvements(
    results: Dict[str, Dict[str, ToolOutcome]], against: str
) -> Dict[str, float]:
    """Mean relative improvement of STCG vs a baseline over all models."""
    gains: Dict[str, List[float]] = {"decision": [], "condition": [], "mcdc": []}
    for per_tool in results.values():
        stcg = per_tool["STCG"]
        base = per_tool[against]
        for metric in gains:
            gain = improvement(getattr(stcg, metric), getattr(base, metric))
            if gain is not None:
                gains[metric].append(gain)
    return {
        metric: (statistics.mean(values) if values else 0.0)
        for metric, values in gains.items()
    }
