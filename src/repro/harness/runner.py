"""Run-matrix executor: (tool × model × repetition) → aggregated results.

The paper runs every tool for one hour and repeats randomized tools ten
times.  Budgets and repetition counts are scaled-down knobs here; the
harness averages coverage over repetitions exactly as the paper does.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.simcotest import SimCoTestConfig, SimCoTestGenerator
from repro.baselines.sldv import SldvConfig, SldvGenerator
from repro.core.config import StcgConfig
from repro.core.result import GenerationResult
from repro.core.stcg import StcgGenerator
from repro.errors import HarnessError
from repro.models.registry import BenchmarkModel

TOOLS = ("SLDV", "SimCoTest", "STCG")


@dataclass
class MatrixConfig:
    """Budgets for a comparison run."""

    budget_s: float = 30.0
    #: Repetitions for tools with random components (STCG, SimCoTest).
    repetitions: int = 3
    #: SLDV is deterministic given the seed; one repetition suffices.
    sldv_repetitions: int = 1
    seed: int = 0
    sldv_max_depth: int = 6


@dataclass
class ToolOutcome:
    """Aggregated coverage of one tool on one model."""

    tool: str
    model: str
    runs: List[GenerationResult] = field(default_factory=list)

    @property
    def decision(self) -> float:
        return statistics.mean(r.decision for r in self.runs)

    @property
    def condition(self) -> float:
        return statistics.mean(r.condition for r in self.runs)

    @property
    def mcdc(self) -> float:
        return statistics.mean(r.mcdc for r in self.runs)

    @property
    def representative(self) -> GenerationResult:
        """The run whose decision coverage is the median (for Figure 4)."""
        ordered = sorted(self.runs, key=lambda r: r.decision)
        return ordered[len(ordered) // 2]


def run_tool(
    tool: str,
    model: BenchmarkModel,
    budget_s: float,
    seed: int,
    sldv_max_depth: int = 6,
) -> GenerationResult:
    """One generation run of one tool on a fresh build of the model."""
    compiled = model.build()
    if tool == "STCG":
        return StcgGenerator(
            compiled, StcgConfig(budget_s=budget_s, seed=seed)
        ).run()
    if tool == "SimCoTest":
        return SimCoTestGenerator(
            compiled, SimCoTestConfig(budget_s=budget_s, seed=seed)
        ).run()
    if tool == "SLDV":
        return SldvGenerator(
            compiled,
            SldvConfig(budget_s=budget_s, seed=seed, max_depth=sldv_max_depth),
        ).run()
    raise HarnessError(f"unknown tool {tool!r}")


def run_matrix(
    models: Sequence[BenchmarkModel],
    config: Optional[MatrixConfig] = None,
    tools: Sequence[str] = TOOLS,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, ToolOutcome]]:
    """Run every tool on every model; returns ``{model: {tool: outcome}}``."""
    config = config or MatrixConfig()
    results: Dict[str, Dict[str, ToolOutcome]] = {}
    for model in models:
        per_tool: Dict[str, ToolOutcome] = {}
        for tool in tools:
            outcome = ToolOutcome(tool, model.name)
            repetitions = (
                config.sldv_repetitions if tool == "SLDV" else config.repetitions
            )
            for repetition in range(repetitions):
                tool_salt = sum(ord(ch) for ch in tool)  # stable across runs
                seed = config.seed * 1000 + repetition * 7 + tool_salt % 97
                run = run_tool(
                    tool, model, config.budget_s, seed, config.sldv_max_depth
                )
                outcome.runs.append(run)
                if progress is not None:
                    progress(
                        f"{model.name}/{tool} rep {repetition + 1}/{repetitions}: "
                        f"D={run.decision:.0%} C={run.condition:.0%} "
                        f"M={run.mcdc:.0%}"
                    )
            per_tool[tool] = outcome
        results[model.name] = per_tool
    return results


def improvement(stcg: float, baseline: float) -> Optional[float]:
    """Relative improvement of STCG over a baseline (None when baseline=0)."""
    if baseline <= 0.0:
        return None
    return (stcg - baseline) / baseline


def average_improvements(
    results: Dict[str, Dict[str, ToolOutcome]], against: str
) -> Dict[str, float]:
    """Mean relative improvement of STCG vs a baseline over all models."""
    gains: Dict[str, List[float]] = {"decision": [], "condition": [], "mcdc": []}
    for per_tool in results.values():
        stcg = per_tool["STCG"]
        base = per_tool[against]
        for metric in gains:
            gain = improvement(getattr(stcg, metric), getattr(base, metric))
            if gain is not None:
                gains[metric].append(gain)
    return {
        metric: (statistics.mean(values) if values else 0.0)
        for metric, values in gains.items()
    }
