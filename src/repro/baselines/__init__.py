"""Baseline test-case generators the paper compares against."""

from repro.baselines.simcotest import SimCoTestConfig, SimCoTestGenerator
from repro.baselines.sldv import SldvConfig, SldvGenerator

__all__ = [
    "SimCoTestConfig",
    "SimCoTestGenerator",
    "SldvConfig",
    "SldvGenerator",
]
