"""SLDV-like baseline: bounded symbolic unrolling from the initial state.

Reproduces the essential behaviour of Simulink Design Verifier's test
generation: the whole model is encoded symbolically over ``k`` unrolled
iterations *including all internal state*, and each uncovered branch is
solved against that monolithic encoding.  No dynamic state feedback is
used.  Because chart locations, delays, and data-store arrays are symbolic
across steps, constraint size grows quickly with depth — which is exactly
why the paper finds SLDV emitting test cases in a few early bursts and then
stalling on state-heavy models.

The unrolling is incremental: depth ``k+1`` reuses the symbolic state
reached at depth ``k``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.coverage.collector import CoverageCollector
from repro.coverage.registry import Branch
from repro.core.result import GenerationResult, ORIGIN_TOOL, TimelineEvent
from repro.core.testcase import TestCase, TestSuite
from repro.expr import ops as x
from repro.expr.ast import Const, Expr, Var
from repro.model.context import symbolic_context
from repro.model.executor import execute_step
from repro.model.graph import CompiledModel
from repro.model.simulator import Simulator
from repro.obs.stages import merge_stage_dicts
from repro.obs.tracer import NULL_TRACER, PhaseProfiler, Tracer
from repro.provenance import NULL_LEDGER, ProvenanceLedger
from repro.solver.engine import SolverConfig, SolverEngine, Status


@dataclass
class SldvConfig:
    """Budgets of the bounded-unrolling baseline."""

    budget_s: float = 10.0
    seed: int = 0
    #: Maximum unroll depth.
    max_depth: int = 8
    #: Per-branch solver budgets (larger than STCG's because the encodings
    #: are much bigger).
    solver: SolverConfig = field(default_factory=lambda: SolverConfig(
        max_samples=96, avm_evaluations=3000, time_budget_s=1.0
    ))
    stop_on_full_coverage: bool = True
    #: Deep tracing (``repro.trace/1``): phase totals (unroll / solve /
    #: replay), solver-stage metrics.  Observation only.
    trace: bool = False
    #: Objective-level coverage provenance (``repro.provenance/1``).
    #: Attempt nodes are unroll depths; SLDV never solves condition/MCDC
    #: obligations directly, so those only gain provenance when a replay
    #: happens to cover them.  Observation only.
    provenance: bool = True


class _IncrementalUnroll:
    """Step-by-step symbolic unrolling with threaded symbolic state."""

    def __init__(self, compiled: CompiledModel):
        self.compiled = compiled
        self.variables: List[Var] = []
        self.step_conditions: List[Dict[int, List[Expr]]] = []
        self._state_env: Dict[str, object] = compiled.initial_state()

    @property
    def depth(self) -> int:
        return len(self.step_conditions)

    def extend(self) -> None:
        """Unroll one more step symbolically."""
        step = self.depth
        step_vars = self.compiled.input_variables(suffix=f"@{step}")
        self.variables.extend(step_vars)
        inputs = {
            spec.name: var for spec, var in zip(self.compiled.inports, step_vars)
        }
        ctx = symbolic_context(inputs, self._state_env, time_index=step)
        execute_step(self.compiled, ctx)
        self.step_conditions.append(ctx.outcome_conditions)
        next_env = dict(self._state_env)
        next_env.update(ctx.next_state)
        self._state_env = next_env

    def path_constraint(self, branch: Branch, step: int) -> Expr:
        conditions = self.step_conditions[step][branch.decision.decision_id]
        constraint = conditions[branch.outcome]
        for ancestor in branch.ancestors():
            ancestor_conditions = self.step_conditions[step][
                ancestor.decision.decision_id
            ]
            constraint = x.land(constraint, ancestor_conditions[ancestor.outcome])
        return constraint

    def decode_sequence(self, model: Dict[str, object], upto: int):
        sequence = []
        for step in range(upto + 1):
            sequence.append(
                {
                    spec.name: model[f"{spec.name}@{step}"]
                    for spec in self.compiled.inports
                }
            )
        return sequence


class SldvGenerator:
    """Bounded-model-checking style test generation."""

    def __init__(
        self,
        compiled: CompiledModel,
        config: Optional[SldvConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
    ):
        self.compiled = compiled
        self.config = config or SldvConfig()
        self._clock = clock
        if tracer is not None:
            self.tracer = tracer
        elif self.config.trace:
            self.tracer = PhaseProfiler()
        else:
            self.tracer = NULL_TRACER
        self._rng = random.Random(self.config.seed)
        self._engine = SolverEngine(self.config.solver)
        self.collector = CoverageCollector(compiled.registry)
        self.ledger = (
            ProvenanceLedger(compiled.registry, "SLDV")
            if self.config.provenance else NULL_LEDGER
        )
        self.suite = TestSuite(
            compiled.name, [spec.name for spec in compiled.inports]
        )
        self.timeline: List[TimelineEvent] = []
        self.stats = {
            "solver_calls": 0,
            "sat": 0,
            "unsat": 0,
            "unknown": 0,
            "depth_reached": 0,
        }

    def run(self) -> GenerationResult:
        start = self._clock()
        tracer = self.tracer
        ledger = self.ledger
        simulator = Simulator(self.compiled, self.collector, tracer=tracer)
        unroll = _IncrementalUnroll(self.compiled)
        on_step = on_obligations = None
        if ledger.enabled:
            def on_step(index, new_branch_ids, _found):
                for branch_id in new_branch_ids:
                    ledger.cover_branch(branch_id, index + 1)

            def on_obligations(index, new_obligations):
                for obligation in new_obligations:
                    ledger.cover_obligation(obligation, index + 1)

        def out_of_time() -> bool:
            return self._clock() - start >= self.config.budget_s

        while unroll.depth < self.config.max_depth and not out_of_time():
            with tracer.span("unroll"):
                unroll.extend()
            self.stats["depth_reached"] = unroll.depth
            step = unroll.depth - 1
            for branch in self.compiled.registry.branches_by_depth():
                if out_of_time():
                    break
                if self.collector.is_branch_covered(branch):
                    continue
                objective = (
                    ledger.branch_objective(branch) if ledger.enabled else None
                )
                constraint = unroll.path_constraint(branch, step)
                if isinstance(constraint, Const) and constraint.value is False:
                    if ledger.enabled:
                        ledger.skip(objective, "const_false")
                    continue
                self.stats["solver_calls"] += 1
                with tracer.span("solve", target=branch.label):
                    result = self._engine.solve(
                        constraint, unroll.variables, self._rng
                    )
                self.stats[result.status.value] += 1
                if ledger.enabled:
                    # The "node" of a bounded-unrolling attempt is the
                    # unroll depth the branch was solved at.
                    ledger.attempt(
                        objective,
                        step,
                        result.status.value,
                        result.stats.stage,
                        "full",
                        False,
                    )
                if result.status is not Status.SAT:
                    continue
                assert result.model is not None
                sequence = unroll.decode_sequence(result.model, step)
                simulator.reset()
                ledger.begin_case(ORIGIN_TOOL)
                with tracer.span("replay"):
                    outcome = simulator.run_sequence(
                        sequence, on_step=on_step, on_obligations=on_obligations
                    )
                new_ids = list(outcome.new_branch_ids)
                if new_ids:
                    timestamp = self._clock() - start
                    self.suite.add(
                        TestCase(
                            inputs=sequence,
                            origin=ORIGIN_TOOL,
                            new_branch_ids=new_ids,
                            timestamp=timestamp,
                        )
                    )
                    ledger.end_case(len(self.suite) - 1)
                    self.timeline.append(
                        TimelineEvent(
                            t=timestamp,
                            decision_coverage=self.collector.decision_coverage(),
                            origin=ORIGIN_TOOL,
                            new_branches=len(new_ids),
                        )
                    )
                else:
                    ledger.end_case(None)
            if self.config.stop_on_full_coverage and not self.collector.uncovered_branches():
                break
        return GenerationResult(
            tool="SLDV",
            model_name=self.compiled.name,
            summary=self.collector.summary(),
            suite=self.suite,
            timeline=list(self.timeline),
            stats=dict(self.stats),
            trace_data=self._trace_data(),
            provenance=ledger.snapshot(),
        )

    def _trace_data(self):
        summarize = getattr(self.tracer, "summary", None)
        if summarize is None:
            return {}
        summary = summarize()
        return {
            "schema": "repro.trace/1",
            "phase_totals": summary["phase_totals"],
            "solver_stages": merge_stage_dicts(
                {}, self._engine.metrics.as_dict()
            ),
            "tree_growth": [],
            "solver_targets": summary["targets"],
            "counters": dict(summary["counters"]),
        }


def generate(compiled: CompiledModel, config: Optional[SldvConfig] = None):
    """Convenience wrapper: run the SLDV-like baseline."""
    return SldvGenerator(compiled, config).run()
