"""SimCoTest-like baseline: random search with coverage feedback.

Reproduces the essential behaviour of SimCoTest (Matinnejad et al., ICSE
2016 companion): piecewise-constant random input signals are simulated
whole-sequence from the initial state; a candidate test is kept when it
increases accumulated coverage.  There is no constraint solving and no
state awareness — fast early coverage, then a plateau once the remaining
branches require specific internal states.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.coverage.collector import CoverageCollector
from repro.core.result import GenerationResult, ORIGIN_TOOL, TimelineEvent
from repro.core.testcase import TestCase, TestSuite
from repro.model.graph import CompiledModel
from repro.model.inputs import piecewise_constant_sequence
from repro.model.simulator import Simulator
from repro.obs.tracer import NULL_TRACER, PhaseProfiler, Tracer
from repro.provenance import NULL_LEDGER, ProvenanceLedger


@dataclass
class SimCoTestConfig:
    """Budgets and signal-shape parameters of the random-search baseline."""

    budget_s: float = 10.0
    seed: int = 0
    #: Simulated steps per candidate test (one "simulation").
    sequence_length: int = 20
    #: Max piecewise-constant segments per input signal.
    max_segments: int = 5
    stop_on_full_coverage: bool = True
    #: Deep tracing (``repro.trace/1``): per-candidate simulate phase
    #: totals and step counters.  Observation only.
    trace: bool = False
    #: Objective-level coverage provenance (``repro.provenance/1``).
    #: Observation only; note that greedy selection keeps a candidate
    #: only for new *branch* coverage, so obligations covered by a
    #: discarded candidate are attributed with ``case: None``.
    provenance: bool = True


class SimCoTestGenerator:
    """Random test-suite generation with coverage-greedy selection."""

    def __init__(
        self,
        compiled: CompiledModel,
        config: Optional[SimCoTestConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
    ):
        self.compiled = compiled
        self.config = config or SimCoTestConfig()
        self._clock = clock
        if tracer is not None:
            self.tracer = tracer
        elif self.config.trace:
            self.tracer = PhaseProfiler()
        else:
            self.tracer = NULL_TRACER
        self._rng = random.Random(self.config.seed)
        self.collector = CoverageCollector(compiled.registry)
        self.ledger = (
            ProvenanceLedger(compiled.registry, "SimCoTest")
            if self.config.provenance else NULL_LEDGER
        )
        self.suite = TestSuite(
            compiled.name, [spec.name for spec in compiled.inports]
        )
        self.timeline: List[TimelineEvent] = []
        self.stats = {"simulations": 0, "steps_executed": 0, "kept": 0}

    def run(self) -> GenerationResult:
        start = self._clock()
        tracer = self.tracer
        ledger = self.ledger
        simulator = Simulator(self.compiled, self.collector, tracer=tracer)
        on_step = on_obligations = None
        if ledger.enabled:
            def on_step(index, new_branch_ids, _found):
                for branch_id in new_branch_ids:
                    ledger.cover_branch(branch_id, index + 1)

            def on_obligations(index, new_obligations):
                for obligation in new_obligations:
                    ledger.cover_obligation(obligation, index + 1)
        while True:
            elapsed = self._clock() - start
            if elapsed >= self.config.budget_s:
                break
            if (
                self.config.stop_on_full_coverage
                and not self.collector.uncovered_branches()
            ):
                break
            sequence = piecewise_constant_sequence(
                self.compiled.inports,
                self._rng,
                self.config.sequence_length,
                self.config.max_segments,
            )
            simulator.reset()
            ledger.begin_case(ORIGIN_TOOL)
            with tracer.span("simulate"):
                outcome = simulator.run_sequence(
                    sequence, on_step=on_step, on_obligations=on_obligations
                )
            new_ids = list(outcome.new_branch_ids)
            self.stats["simulations"] += 1
            self.stats["steps_executed"] += outcome.steps
            if new_ids:
                timestamp = self._clock() - start
                self.suite.add(
                    TestCase(
                        inputs=sequence,
                        origin=ORIGIN_TOOL,
                        new_branch_ids=new_ids,
                        timestamp=timestamp,
                    )
                )
                ledger.end_case(len(self.suite) - 1)
                self.stats["kept"] += 1
                self.timeline.append(
                    TimelineEvent(
                        t=timestamp,
                        decision_coverage=self.collector.decision_coverage(),
                        origin=ORIGIN_TOOL,
                        new_branches=len(new_ids),
                    )
                )
            else:
                # Candidate discarded; any obligations it covered are
                # attributed to no kept case.
                ledger.end_case(None)
        return GenerationResult(
            tool="SimCoTest",
            model_name=self.compiled.name,
            summary=self.collector.summary(),
            suite=self.suite,
            timeline=list(self.timeline),
            stats=dict(self.stats),
            trace_data=self._trace_data(),
            provenance=ledger.snapshot(),
        )

    def _trace_data(self):
        summarize = getattr(self.tracer, "summary", None)
        if summarize is None:
            return {}
        summary = summarize()
        return {
            "schema": "repro.trace/1",
            "phase_totals": summary["phase_totals"],
            "solver_stages": {},
            "tree_growth": [],
            "solver_targets": summary["targets"],
            "counters": dict(summary["counters"]),
        }


def generate(compiled: CompiledModel, config: Optional[SimCoTestConfig] = None):
    """Convenience wrapper: run the SimCoTest-like baseline."""
    return SimCoTestGenerator(compiled, config).run()
