"""LANSwitch: LAN switch controller with MAC learning.

An Ethernet-switch forwarding engine:

* a MAC table of ``TABLE_LEN`` entries (address, port, VLAN, age, valid)
  held in data stores,
* **learning**: on every valid data frame the source address is looked up;
  a hit refreshes port and age, a miss inserts at the first free slot, and
  a full table evicts the oldest entry,
* **forwarding**: the destination address is looked up; a hit on the same
  VLAN forwards to the learned port (filtered when that equals the ingress
  port), otherwise the frame floods,
* **aging**: an age-tick frame decrements every age and invalidates
  expired entries (an unrolled chain of per-slot switches),
* **management**: flush-all and per-port flush commands, plus counters.

The "learn first, then forward to the learned port" branches are the
state-dependent needles: dst must equal a *previously seen* src on the
same VLAN.
"""

from __future__ import annotations

from repro.expr.types import ArrayType, INT
from repro.model.builder import ModelBuilder
from repro.model.graph import CompiledModel
from repro.models.common import (
    clamp_index,
    count_valid,
    find_first_index,
    first_free_slot,
)

TABLE_LEN = 6
MAX_AGE = 7

FRAME_NONE = 0
FRAME_DATA = 1
FRAME_AGE_TICK = 2
FRAME_FLUSH_ALL = 3
FRAME_FLUSH_PORT = 4


def build_lanswitch() -> CompiledModel:
    n = TABLE_LEN
    b = ModelBuilder("LANSwitch")
    frame = b.inport("frame_type", INT, 0, 5)
    src = b.inport("src_mac", INT, 1, 255)
    dst = b.inport("dst_mac", INT, 1, 255)
    in_port = b.inport("in_port", INT, 0, 3)
    vlan = b.inport("vlan", INT, 0, 3)

    arr = ArrayType(INT, n)
    b.data_store("macs", arr, (0,) * n)
    b.data_store("ports", arr, (0,) * n)
    b.data_store("vlans", arr, (0,) * n)
    b.data_store("ages", arr, (0,) * n)
    b.data_store("valid", arr, (0,) * n)
    b.data_store("flood_count", INT, 0)
    b.data_store("drop_count", INT, 0)

    macs = b.store_read("macs")
    ports = b.store_read("ports")
    vlans = b.store_read("vlans")
    ages = b.store_read("ages")
    valid = b.store_read("valid")

    sc = b.switch_case(
        frame, cases=[[FRAME_DATA], [FRAME_AGE_TICK], [FRAME_FLUSH_ALL],
                      [FRAME_FLUSH_PORT]],
        has_default=True, name="frame_dispatch",
    )

    with sc.case(0):  # ---------------------------------------- data frame
        with b.scope("data"):
            # ---- source learning ------------------------------------
            def src_hit(i: int):
                v = b.compare(b.select(valid, b.const(i), n), "==", 1)
                m = b.compare(b.select(macs, b.const(i), n), "==", src)
                return b.logic("and", v, m)

            src_idx = find_first_index(b, n, src_hit)
            src_missing = b.compare(src_idx, "==", n)
            free = first_free_slot(b, n, valid)
            table_full = b.compare(free, "==", n)

            # Oldest entry for eviction: running argmin over ages.
            oldest = b.const(0)
            oldest_age = b.select(ages, b.const(0), n)
            for i in range(1, n):
                age_i = b.select(ages, b.const(i), n)
                younger = b.compare(age_i, "<", oldest_age)
                oldest = b.switch(younger, b.const(i), oldest)
                oldest_age = b.min(oldest_age, age_i)

            insert_at = b.switch(table_full, oldest, clamp_index(b, free, n))
            write_at = b.switch(
                src_missing, insert_at, clamp_index(b, src_idx, n),
                name="learn_slot",
            )
            new_macs = b.array_update(macs, write_at, src, n)
            new_ports = b.array_update(ports, write_at, in_port, n)
            new_vlans = b.array_update(vlans, write_at, vlan, n)
            new_ages = b.array_update(ages, write_at, b.const(MAX_AGE), n)
            new_valid = b.array_update(valid, write_at, b.const(1), n)
            b.store_write("macs", new_macs)
            b.store_write("ports", new_ports)
            b.store_write("vlans", new_vlans)
            b.store_write("ages", new_ages)
            b.store_write("valid", new_valid)
            learned = b.sub_output(
                b.switch(src_missing, b.const(1), b.const(0)), init=0
            )

            # ---- destination forwarding -------------------------------
            def dst_hit(i: int):
                v = b.compare(b.select(valid, b.const(i), n), "==", 1)
                m = b.compare(b.select(macs, b.const(i), n), "==", dst)
                same_vlan = b.compare(b.select(vlans, b.const(i), n), "==", vlan)
                return b.logic("and", v, m, same_vlan)

            dst_idx = find_first_index(b, n, dst_hit)
            dst_missing = b.compare(dst_idx, "==", n)
            out_port = b.select(ports, clamp_index(b, dst_idx, n), n)
            same_port = b.compare(out_port, "==", in_port)
            # -1 = flood, -2 = filtered (destination on the ingress port).
            decision = b.switch(
                dst_missing, b.const(-1),
                b.switch(same_port, b.const(-2), out_port),
                name="fwd_decision",
            )
            flood_old = b.store_read("flood_count")
            b.store_write(
                "flood_count",
                b.switch(dst_missing, b.add(flood_old, b.const(1)), flood_old),
            )
            fwd_port = b.sub_output(decision, init=-1)

    with sc.case(1):  # ---------------------------------------- age tick
        with b.scope("age"):
            aged = ages
            kept = valid
            for i in range(n):
                age_i = b.select(ages, b.const(i), n)
                valid_i = b.compare(b.select(valid, b.const(i), n), "==", 1)
                expiring = b.logic(
                    "and", valid_i, b.compare(age_i, "<=", 1),
                    name=f"expire{i}",
                )
                next_age = b.max(b.sub(age_i, b.const(1)), b.const(0))
                aged = b.array_update(aged, b.const(i), next_age, n)
                kept = b.array_update(
                    kept, b.const(i),
                    b.switch(expiring, b.const(0),
                             b.select(valid, b.const(i), n)),
                    n,
                )
            b.store_write("ages", aged)
            b.store_write("valid", kept)
            aged_flag = b.sub_output(b.const(1), init=0)

    with sc.case(2):  # ---------------------------------------- flush all
        with b.scope("flush"):
            b.store_write("valid", b.const((0,) * n))
            b.store_write("ages", b.const((0,) * n))
            flushed = b.sub_output(count_valid(b, n, valid), init=0)

    with sc.case(3):  # ---------------------------------------- flush port
        with b.scope("flushp"):
            pruned = valid
            for i in range(n):
                on_port = b.compare(
                    b.select(ports, b.const(i), n), "==", in_port
                )
                valid_i = b.compare(b.select(valid, b.const(i), n), "==", 1)
                kill = b.logic("and", on_port, valid_i, name=f"kill{i}")
                pruned = b.array_update(
                    pruned, b.const(i),
                    b.switch(kill, b.const(0), b.select(valid, b.const(i), n)),
                    n,
                )
            b.store_write("valid", pruned)
            pflushed = b.sub_output(b.const(1), init=0)

    with sc.default():  # -------------------------------------- invalid
        with b.scope("bad"):
            drop_old = b.store_read("drop_count")
            b.store_write("drop_count", b.add(drop_old, b.const(1)))
            dropped = b.sub_output(b.const(1), init=0)

    occupancy = count_valid(b, n, b.store_read("valid", current=True))
    b.outport("fwd_port", fwd_port)
    b.outport("learned", learned)
    b.outport("aged", aged_flag)
    b.outport("flushed", flushed)
    b.outport("port_flushed", pflushed)
    b.outport("dropped", dropped)
    b.outport("occupancy", occupancy)
    return b.compile()
