"""UTPC: underwater thruster power control.

Power management for an ROV thruster:

* a battery-management chart (Normal → Low → Critical, plus a Charging
  state with hysteresis and a debounce counter so single voltage dips do
  not trip the state),
* a thermal-derate ladder: an over-temperature accumulator drives a
  multiport derate-level selector,
* thrust command conditioning: deadband, depth-dependent power ceiling
  from a lookup table, soft-start rate limiting, and a reversal interlock
  that only permits a direction change once the previous output has
  decayed near zero (internal state of the rate limiter — a branch that
  needs history by construction),
* an enable/trip ladder combining all protections.
"""

from __future__ import annotations

from repro.expr.types import BOOL, INT, REAL
from repro.model.builder import ModelBuilder
from repro.model.graph import CompiledModel
from repro.stateflow.spec import ChartSpec

BATT_NORMAL = 0
BATT_LOW = 1
BATT_CRITICAL = 2
BATT_CHARGING = 3

LOW_VOLTS = 44.0
CRITICAL_VOLTS = 38.0
RECOVER_VOLTS = 48.0
DEBOUNCE = 1


def _battery_chart() -> ChartSpec:
    chart = ChartSpec("utpc_battery")
    chart.input("volts", REAL, 30.0, 60.0)
    chart.input("charger", BOOL)
    chart.output("batt_state", INT, BATT_NORMAL)
    chart.output("batt_limit_pct", INT, 100)
    chart.local("dips", INT, 0)

    normal = chart.state(
        "Normal",
        entry=["batt_state = 0", "batt_limit_pct = 100"],
        during=[f"dips = ite(volts < {LOW_VOLTS}, dips + 1, 0)"],
    )
    low = chart.state(
        "Low",
        entry=["batt_state = 1", "batt_limit_pct = 60", "dips = 0"],
        during=[f"dips = ite(volts < {CRITICAL_VOLTS}, dips + 1, 0)"],
    )
    critical = chart.state(
        "Critical", entry=["batt_state = 2", "batt_limit_pct = 20"]
    )
    charging = chart.state(
        "Charging", entry=["batt_state = 3", "batt_limit_pct = 0"]
    )
    chart.initial(normal)

    chart.transition(normal, charging, guard="charger", priority=1)
    chart.transition(
        normal, low, guard=f"dips >= {DEBOUNCE}", priority=2
    )
    chart.transition(low, charging, guard="charger", priority=1)
    chart.transition(low, critical, guard=f"dips >= {DEBOUNCE}", priority=2)
    chart.transition(
        low, normal, guard=f"volts > {RECOVER_VOLTS}", priority=3,
        actions=["dips = 0"],
    )
    chart.transition(critical, charging, guard="charger", priority=1)
    chart.transition(
        charging, normal, guard=f"!charger && volts > {RECOVER_VOLTS}",
        priority=1,
    )
    return chart


def build_utpc() -> CompiledModel:
    b = ModelBuilder("UTPC")
    depth = b.inport("depth", REAL, 0.0, 500.0)
    cmd = b.inport("thrust_cmd", REAL, -100.0, 100.0)
    volts = b.inport("battery_v", REAL, 30.0, 60.0)
    temp = b.inport("motor_temp", REAL, -5.0, 120.0)
    charger = b.inport("charger", BOOL)
    enable = b.inport("enable", BOOL)
    arm_cmd = b.inport("arm_cmd", INT, 0, 3)
    arm_code = b.inport("arm_code", INT, 0, 8191)

    # ---- arming handshake: a challenge/response needle --------------------
    # An arm *request* stores a challenge derived from the supplied code; the
    # following *confirm* must quote challenge+37 (mod 8192) exactly.  Random
    # search hits the response with probability 1/8192 per confirm; the
    # state-aware solver reads the stored challenge as a constant and solves
    # the equality immediately — the paper's "add data first, then operate
    # with matching values" pattern in arithmetic form.
    b.data_store("challenge", INT, 0)
    b.data_store("armed", INT, 0)
    challenge = b.store_read("challenge")
    armed_old = b.store_read("armed")
    sc_arm = b.switch_case(arm_cmd, cases=[[1], [2], [3]], has_default=True,
                           name="arm_dispatch")
    with sc_arm.case(0):  # request: latch a new challenge
        with b.scope("arm_req"):
            b.store_write("challenge", b.fcn(
                "(c * 3 + 11) % 8192", c=(arm_code, INT)))
            req_ack = b.sub_output(b.const(1), init=0)
    with sc_arm.case(1):  # confirm: must quote challenge + 37 mod 256
        with b.scope("arm_ok"):
            expected = b.fcn("(c + 37) % 8192", c=(challenge, INT))
            good = b.compare(arm_code, "==", expected, name="code_match")
            b.store_write("armed", b.switch(good, b.const(1), armed_old))
            confirm_ack = b.sub_output(
                b.switch(good, b.const(1), b.const(0)), init=0
            )
    with sc_arm.case(2):  # disarm
        with b.scope("arm_off"):
            b.store_write("armed", b.const(0))
            disarm_ack = b.sub_output(b.const(1), init=0)
    with sc_arm.default():
        with b.scope("arm_idle"):
            idle_ack = b.sub_output(b.const(0), init=0)
    armed = b.compare(b.store_read("armed", current=True), "==", 1,
                      name="is_armed")

    battery = b.add_chart(
        _battery_chart(), {"volts": volts, "charger": charger}, name="battery"
    )
    batt_state = battery["batt_state"]
    batt_limit = battery["batt_limit_pct"]

    # ---- thermal derate ladder ------------------------------------------------
    hot = b.compare(temp, ">", 85.0, name="is_hot")
    heat_in = b.switch(hot, b.const(3.0), b.const(-2.0), name="heat_flow")
    heat = b.integrator(heat_in, gain=1.0, lo=0.0, hi=10.0, name="heat_acc")
    heat_band = b.cast(b.gain(heat, 0.3), INT, name="heat_band")
    derate_pct = b.multiport(
        heat_band,
        cases=[
            (0, b.const(100)),
            (1, b.const(75)),
            (2, b.const(50)),
        ],
        default=b.const(25),
        name="thermal_derate",
    )

    # ---- depth-dependent ceiling -------------------------------------------------
    ceiling = b.lookup(
        depth,
        breakpoints=[0.0, 50.0, 150.0, 300.0, 500.0],
        values=[100.0, 95.0, 80.0, 60.0, 40.0],
        name="depth_ceiling",
    )

    # ---- command conditioning ------------------------------------------------------
    small = b.compare(b.abs(cmd), "<", 5.0, name="in_deadband")
    shaped = b.switch(small, b.const(0.0), cmd, name="deadband")

    # Combined power limit in percent.
    limit_pct = b.min(
        b.cast(batt_limit, REAL),
        b.cast(derate_pct, REAL),
        ceiling,
        name="limit_pct",
    )
    bounded = b.saturate(
        b.mul(shaped, b.gain(limit_pct, 0.01)), -100.0, 100.0, name="bounded"
    )

    # ---- reversal interlock: direction change only near zero output ------------
    soft = b.rate_limit(bounded, up=25.0, down=25.0, name="soft_start")
    # Direction of the request vs the current (rate-limited) output.
    req_fwd = b.compare(shaped, ">", 0.0, name="req_forward")
    out_fwd = b.compare(soft, ">", 0.0, name="out_forward")
    out_small = b.compare(b.abs(soft), "<", 15.0, name="out_near_zero")
    opposing = b.logic("xor", req_fwd, out_fwd, name="direction_flip")
    blocked = b.logic(
        "and", opposing, b.logic_not(out_small), name="reversal_blocked"
    )
    interlocked = b.switch(blocked, b.const(0.0), soft, name="interlock")

    # ---- trip ladder -----------------------------------------------------------
    critical_batt = b.compare(batt_state, "==", BATT_CRITICAL, name="batt_crit")
    charging_now = b.compare(batt_state, "==", BATT_CHARGING, name="batt_chg")
    overheat = b.compare(heat, ">=", 9.0, name="overheat_trip")
    tripped = b.logic(
        "or", charging_now, overheat, b.logic_not(enable), name="tripped"
    )
    derated_hard = b.switch(
        critical_batt, b.gain(interlocked, 0.2), interlocked, name="crit_derate"
    )
    gated = b.switch(armed, derated_hard, b.const(0.0), name="arm_gate")
    output = b.switch(tripped, b.const(0.0), gated, name="trip_cut")

    # ---- telemetry -----------------------------------------------------------------
    power_est = b.mul(b.abs(output), b.gain(volts, 0.02), name="power_est")
    over_budget = b.compare(power_est, ">", 90.0, name="over_budget")
    alarm = b.logic(
        "or", over_budget, critical_batt, overheat, name="alarm"
    )
    alarm_code = b.switch(
        alarm,
        b.switch(overheat, b.const(3),
                 b.switch(critical_batt, b.const(2), b.const(1))),
        b.const(0),
        name="alarm_code",
    )

    b.outport("thrust_out", output)
    b.outport("batt_state", batt_state)
    b.outport("alarm", alarm_code)
    b.outport("limit_pct", limit_pct)
    b.outport("armed", b.store_read("armed", current=True, name="armed_out"))
    b.outport("arm_acks", b.add(req_ack, confirm_ack, disarm_ack, idle_ack))
    return b.compile()
