"""LEDLC: LED matrix load control.

A lighting-load controller for an LED matrix:

* a mode register that only ever takes the four values OFF / LOW / MEDIUM
  / HIGH, driving a Switch-Case whose **default port is dead logic** —
  the paper traces LEDLC's missing decision coverage to exactly this
  pattern ("there are only four LED states, and the Switch-Case block ...
  has an additional default port beside the corresponding four ports"),
* per-row brightness levels in a data-store array, updated by row
  commands,
* a load estimator: when the estimated current exceeds the budget, rows
  are shed in priority order (an unrolled chain of guarded switch
  decisions),
* a global brightness ramp (rate limiter) and an over-current latch that
  can only be cleared by an explicit reset command.
"""

from __future__ import annotations

from repro.expr.types import ArrayType, INT, REAL
from repro.model.builder import ModelBuilder
from repro.model.graph import CompiledModel
from repro.models.common import clamp_index

ROWS = 6
LEVEL_MAX = 15

MODE_OFF = 0
MODE_LOW = 1
MODE_MEDIUM = 2
MODE_HIGH = 3

CMD_NONE = 0
CMD_SET_MODE = 1
CMD_SET_ROW = 2
CMD_CLEAR_ROW = 3
CMD_RESET_FAULT = 4

#: Estimated milliamps per brightness step per row.
MA_PER_STEP = 25.0
CURRENT_BUDGET_MA = 700.0
TRIP_MA = 900.0


def build_ledlc() -> CompiledModel:
    n = ROWS
    b = ModelBuilder("LEDLC")
    cmd = b.inport("cmd", INT, 0, 5)
    arg = b.inport("arg", INT, 0, 15)
    row = b.inport("row", INT, 0, ROWS - 1)
    supply_ma = b.inport("supply_ma", REAL, 0.0, 1200.0)

    arr = ArrayType(INT, n)
    b.data_store("levels", arr, (0,) * n)
    b.data_store("mode", INT, MODE_OFF)
    b.data_store("fault", INT, 0)

    levels = b.store_read("levels")
    b.store_read("mode")
    fault = b.store_read("fault")

    # ---- command handling -------------------------------------------------
    sc = b.switch_case(
        cmd,
        cases=[[CMD_SET_MODE], [CMD_SET_ROW], [CMD_CLEAR_ROW],
               [CMD_RESET_FAULT]],
        has_default=True, name="cmd_dispatch",
    )
    with sc.case(0):
        with b.scope("setmode"):
            # Clamp the requested mode into 0..3: the mode register can
            # never hold anything else (which is what makes the display
            # Switch-Case default port dead).
            requested = b.min(arg, b.const(MODE_HIGH))
            b.store_write("mode", requested)
            mode_ack = b.sub_output(requested, init=0)
    with sc.case(1):
        with b.scope("setrow"):
            slot = clamp_index(b, row, n)
            level = b.min(arg, b.const(LEVEL_MAX))
            b.store_write("levels", b.array_update(levels, slot, level, n))
            row_ack = b.sub_output(slot, init=-1)
    with sc.case(2):
        with b.scope("clearrow"):
            slot = clamp_index(b, row, n)
            b.store_write(
                "levels", b.array_update(levels, slot, b.const(0), n)
            )
            clear_ack = b.sub_output(slot, init=-1)
    with sc.case(3):
        with b.scope("resetfault"):
            # The fault latch clears only when the supply has recovered;
            # the actual clear happens in the single latch writer below.
            recovered = b.compare(supply_ma, "<", CURRENT_BUDGET_MA)
            reset_ack = b.sub_output(
                b.switch(recovered, b.const(1), b.const(0)), init=0
            )
    with sc.default():
        with b.scope("noop"):
            noop = b.sub_output(b.const(0), init=0)

    # ---- lamp self-test: count lit rows when commanded -----------------------
    self_test = b.compare(cmd, "==", 5, name="is_self_test")
    lit_rows = b.const(0)
    for i in range(n):
        row_lit = b.compare(
            b.select(levels, b.const(i), n), ">", 0, name=f"lit{i}"
        )
        lit_rows = b.switch(row_lit, b.add(lit_rows, b.const(1)), lit_rows,
                            name=f"lit_count{i}")
    test_result = b.switch(self_test, lit_rows, b.const(-1), name="test_gate")

    # ---- blink scheduler: a free-running phase counter picks the duty shape --
    phase = b.counter(period=4, name="blink_phase")
    blink_scale = b.multiport(
        phase,
        cases=[
            (0, b.const(1.0)),
            (1, b.const(0.85)),
            (2, b.const(1.0)),
            (3, b.const(0.7)),
        ],
        default=None,
        name="blink_select",
    )

    # ---- supply-voltage band: foldback ladder ---------------------------------
    supply_band = b.cast(b.gain(supply_ma, 4.999 / 1200.0), INT,
                         name="supply_band")
    foldback = b.multiport(
        supply_band,
        cases=[
            (0, b.const(1.0)),
            (1, b.const(1.0)),
            (2, b.const(0.95)),
            (3, b.const(0.85)),
        ],
        default=b.const(0.7),
        name="supply_foldback",
    )

    # ---- display duty per mode: THE DEAD DEFAULT PORT ------------------------
    # mode is clamped to 0..3 at the only write site, so the default port of
    # this multiport switch is unreachable — intentional dead logic.
    duty_base = b.multiport(
        b.store_read("mode", current=True),
        cases=[
            (MODE_OFF, b.const(0.0)),
            (MODE_LOW, b.const(0.25)),
            (MODE_MEDIUM, b.const(0.6)),
            (MODE_HIGH, b.const(1.0)),
        ],
        default=b.const(0.5),  # dead
        name="mode_duty",
    )

    # ---- load estimation and shedding ------------------------------------------
    current_levels = b.store_read("levels", current=True)
    total_steps = b.select(current_levels, b.const(0), n)
    for i in range(1, n):
        total_steps = b.add(total_steps, b.select(current_levels, b.const(i), n))
    est_ma = b.mul(
        b.cast(total_steps, REAL),
        b.mul(b.const(MA_PER_STEP), duty_base),
        name="est_ma",
    )
    over_budget = b.compare(est_ma, ">", CURRENT_BUDGET_MA, name="over_budget")

    # Shed rows (highest index first) while over budget; each stage halves
    # one more row — an unrolled priority chain of decisions.
    shed_ma = est_ma
    shed_mask = b.const(0)
    for i in range(n - 1, n - 3, -1):
        row_ma = b.mul(
            b.cast(b.select(current_levels, b.const(i), n), REAL),
            b.mul(b.const(MA_PER_STEP), duty_base),
        )
        still_over = b.compare(shed_ma, ">", CURRENT_BUDGET_MA, name=f"shed{i}")
        shed_ma = b.switch(still_over, b.sub(shed_ma, row_ma), shed_ma)
        shed_mask = b.switch(
            still_over, b.add(shed_mask, b.const(1)), shed_mask
        )

    # ---- over-current latch ---------------------------------------------------
    hard_over = b.compare(supply_ma, ">", TRIP_MA, name="hard_over")
    soft_over = b.logic(
        "and", over_budget, b.compare(supply_ma, ">", CURRENT_BUDGET_MA),
        name="soft_over",
    )
    trip_now = b.logic("or", hard_over, soft_over, name="trip_now")
    reset_request = b.logic(
        "and",
        b.compare(cmd, "==", CMD_RESET_FAULT),
        b.compare(supply_ma, "<", CURRENT_BUDGET_MA),
        name="reset_request",
    )
    after_reset = b.switch(reset_request, b.const(0), fault, name="fault_reset")
    new_fault = b.switch(trip_now, b.const(1), after_reset, name="fault_latch")
    b.store_write("fault", new_fault, name="fault_writer")

    # ---- output ramp ------------------------------------------------------------
    target_duty = b.switch(
        b.compare(new_fault, "==", 1), b.const(0.0), duty_base,
        name="fault_cut",
    )
    ramped = b.rate_limit(target_duty, up=0.2, down=0.5, name="duty_ramp")
    shaped = b.mul(ramped, blink_scale, foldback, name="shaped_duty")
    pwm = b.saturate(
        b.sub(shaped, b.gain(b.cast(shed_mask, REAL), 0.05)), 0.0, 1.0,
        name="pwm_out",
    )

    b.outport("pwm", pwm)
    b.outport("self_test", test_result)
    b.outport("est_ma", shed_ma)
    b.outport("fault", new_fault)
    b.outport("shed_rows", shed_mask)
    b.outport("mode_ack", mode_ack)
    b.outport("row_ack", row_ack)
    b.outport("clear_ack", clear_ack)
    b.outport("reset_ack", reset_ack)
    b.outport("noop", noop)
    return b.compile()
