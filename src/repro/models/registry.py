"""Registry of the benchmark models (the paper's Table II).

Each entry carries the builder plus the paper's reported branch/block
counts so the Table II harness can print paper-vs-measured side by side.
Our models are re-created from the paper's one-line functional
descriptions, so measured counts differ from the originals; what matters
for the reproduction is that each model exercises the same *kind* of
state-dependent logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.model.graph import CompiledModel
from repro.models.afc import build_afc
from repro.models.cputask import build_cputask, build_simple_cputask
from repro.models.lanswitch import build_lanswitch
from repro.models.ledlc import build_ledlc
from repro.models.nicprotocol import build_nicprotocol
from repro.models.tcp import build_tcp
from repro.models.twc import build_twc
from repro.models.utpc import build_utpc


@dataclass(frozen=True)
class BenchmarkModel:
    """Metadata for one benchmark model."""

    name: str
    functionality: str
    builder: Callable[[], CompiledModel]
    paper_branches: int
    paper_blocks: int
    #: Branches that are dead by construction (documented unreachable
    #: logic); the maximum achievable decision coverage is below 100%.
    dead_branches: int = 0

    def build(self) -> CompiledModel:
        return self.builder()


BENCHMARKS: List[BenchmarkModel] = [
    BenchmarkModel(
        "CPUTask", "AutoSAR CPU task dispatch system", build_cputask, 107, 275
    ),
    BenchmarkModel(
        "AFC", "Engine air-fuel control system", build_afc, 35, 125
    ),
    BenchmarkModel(
        "TWC", "Train wheel speed controller", build_twc, 80, 214,
        dead_branches=3,
    ),
    BenchmarkModel(
        "NICProtocol", "Vehicle NIC communication protocol",
        build_nicprotocol, 46, 294,
    ),
    BenchmarkModel(
        "UTPC", "Underwater thruster power control", build_utpc, 92, 214
    ),
    BenchmarkModel(
        "LANSwitch", "LAN Switch controller", build_lanswitch, 131, 570
    ),
    BenchmarkModel(
        "LEDLC", "LED matrix load control", build_ledlc, 94, 270,
        dead_branches=1,
    ),
    BenchmarkModel(
        "TCP", "TCP three-way handshake protocol", build_tcp, 146, 330
    ),
]

_BY_NAME: Dict[str, BenchmarkModel] = {m.name: m for m in BENCHMARKS}


def get_benchmark(name: str) -> BenchmarkModel:
    """Look a benchmark up by name (case-insensitive)."""
    for key, model in _BY_NAME.items():
        if key.lower() == name.lower():
            return model
    raise ReproError(
        f"unknown benchmark {name!r}; available: {', '.join(_BY_NAME)}"
    )


def benchmark_names() -> List[str]:
    return [m.name for m in BENCHMARKS]


#: The 13-branch teaching model of Figure 3 / Table I.
SIMPLE_CPUTASK = BenchmarkModel(
    "SimpleCPUTask",
    "Simplified CPU task model (Figure 3 / Table I)",
    build_simple_cputask,
    13,
    0,
)
