"""AFC: engine air-fuel control system.

A mode-driven fuel controller:

* a Stateflow-like mode chart (Startup → Warmup → Normal ↔ Power, plus a
  lean/rich fault mode entered after a sustained O2 excursion, with a
  debounce counter held in chart locals),
* a fuel computation path: base pulse from an RPM lookup table scaled by
  throttle, cold-start enrichment, power-mode enrichment, closed-loop trim
  from the O2 sensor integrated only in Normal mode (anti-windup
  saturation), over-rev injector cutoff.

State: chart location + fault debounce counter + trim integrator — enough
that the fault branches and the trim-authority branches need a specific
history, not just one lucky input.
"""

from __future__ import annotations

from repro.expr.types import INT, REAL
from repro.model.builder import ModelBuilder
from repro.model.graph import CompiledModel
from repro.stateflow.spec import ChartSpec

#: Mode codes emitted by the chart.
MODE_STARTUP = 0
MODE_WARMUP = 1
MODE_NORMAL = 2
MODE_POWER = 3
MODE_FAULT = 4

FAULT_DEBOUNCE = 4


def _mode_chart() -> ChartSpec:
    chart = ChartSpec("afc_modes")
    chart.input("rpm", REAL, 0, 8000)
    chart.input("temp", REAL, -40, 150)
    chart.input("throttle", REAL, 0, 100)
    chart.input("o2", REAL, 0.0, 1.0)
    chart.input("cal", INT, 0, 4095)
    chart.output("mode", INT, MODE_STARTUP)
    chart.local("fault_count", INT, 0)
    chart.local("cal_key", INT, 0)

    startup = chart.state("Startup", entry=["mode = 0"])
    warmup = chart.state("Warmup", entry=["mode = 1"])
    normal = chart.state(
        "Normal",
        entry=["mode = 2"],
        during=[
            "fault_count = ite(o2 > 0.85 || o2 < 0.15, fault_count + 1, 0)"
        ],
    )
    power = chart.state("Power", entry=["mode = 3"])
    fault = chart.state("Fault", entry=["mode = 4", "fault_count = 0"])
    chart.initial(startup)

    chart.transition(startup, warmup, guard="rpm > 500.0", priority=1)
    chart.transition(warmup, normal, guard="temp > 70.0", priority=1)
    chart.transition(warmup, startup, guard="rpm < 300.0", priority=2)
    chart.transition(
        normal, power, guard="throttle > 80.0 && rpm > 2500.0", priority=2
    )
    # Entering the fault mode latches a calibration key derived from the
    # engine speed at the moment of the fault; clearing the fault requires
    # the service tool to echo exactly that key (the paper's "operate with
    # values matching earlier state" pattern).  Random search guesses the
    # 12-bit key with probability 1/4096 per attempt; the state-aware
    # solver reads cal_key as a constant and solves it immediately.
    chart.transition(
        normal, fault, guard=f"fault_count >= {FAULT_DEBOUNCE}", priority=1,
        actions=["cal_key = (int(rpm) * 7 + 13) % 4096"],
    )
    chart.transition(power, normal, guard="throttle < 70.0", priority=1)
    chart.transition(
        fault, normal,
        guard="o2 > 0.3 && o2 < 0.7 && rpm > 500.0 && cal == cal_key",
        priority=1,
    )
    chart.transition(fault, startup, guard="rpm < 300.0", priority=2)
    return chart


def build_afc() -> CompiledModel:
    b = ModelBuilder("AFC")
    throttle = b.inport("throttle", REAL, 0.0, 100.0)
    rpm = b.inport("rpm", REAL, 0.0, 8000.0)
    o2 = b.inport("o2", REAL, 0.0, 1.0)
    temp = b.inport("temp", REAL, -40.0, 150.0)
    cal = b.inport("cal", INT, 0, 4095)

    modes = b.add_chart(
        _mode_chart(),
        {"rpm": rpm, "temp": temp, "throttle": throttle, "o2": o2,
         "cal": cal},
        name="modes",
    )
    mode = modes["mode"]

    # ---- base fuel pulse: rpm volumetric-efficiency table × throttle ----
    ve = b.lookup(
        rpm,
        breakpoints=[0.0, 800.0, 2000.0, 4000.0, 6000.0, 8000.0],
        values=[0.2, 0.55, 0.8, 1.0, 0.9, 0.7],
        name="ve_table",
    )
    base = b.mul(ve, b.gain(throttle, 0.01), name="base_pulse")

    # ---- enrichment switches -------------------------------------------------
    cold = b.compare(temp, "<", 20.0, name="is_cold")
    cold_factor = b.switch(cold, b.const(1.3), b.const(1.0), name="cold_enrich")
    in_power = b.compare(mode, "==", MODE_POWER, name="in_power")
    power_factor = b.switch(
        in_power, b.const(1.15), b.const(1.0), name="power_enrich"
    )
    enriched = b.mul(base, cold_factor, power_factor, name="enriched")

    # ---- closed-loop O2 trim, active only in Normal mode ---------------------
    in_normal = b.compare(mode, "==", MODE_NORMAL, name="in_normal")
    o2_error = b.sub(b.const(0.5), o2, name="o2_error")
    trim_input = b.switch(in_normal, o2_error, b.const(0.0), name="trim_gate")
    trim = b.integrator(trim_input, gain=0.05, lo=-0.25, hi=0.25, name="trim_i")
    # Trim authority limited further when the correction is already large.
    big_trim = b.compare(b.abs(trim), ">", 0.2, name="trim_large")
    authority = b.switch(big_trim, b.const(0.5), b.const(1.0), name="authority")
    corrected = b.add(
        enriched, b.mul(trim, authority, name="applied_trim"), name="corrected"
    )

    # ---- protections -----------------------------------------------------------
    overrev = b.compare(rpm, ">", 6500.0, name="overrev")
    fault_mode = b.compare(mode, "==", MODE_FAULT, name="in_fault")
    cut = b.logic("or", overrev, fault_mode, name="cutoff_cond")
    open_loop = b.switch(fault_mode, b.const(0.6), corrected, name="limp_home")
    pulse = b.switch(cut, b.const(0.0), open_loop, name="injector_cut")
    # In fault mode with the engine still turning, hold a fixed limp pulse.
    still_turning = b.logic(
        "and", fault_mode, b.compare(rpm, ">", 400.0), name="limp_active"
    )
    final = b.switch(still_turning, b.const(0.6), pulse, name="final_pulse")
    clamped = b.saturate(final, 0.0, 2.0, name="pulse_clamp")

    # ---- idle speed request ----------------------------------------------------
    idling = b.logic(
        "and",
        b.compare(throttle, "<", 3.0),
        b.compare(rpm, "<", 1200.0),
        name="is_idling",
    )
    idle_trim = b.switch(idling, b.const(0.05), b.const(0.0), name="idle_trim")

    b.outport("fuel_pulse", b.add(clamped, idle_trim))
    b.outport("mode", mode)
    b.outport("trim", trim)
    return b.compile()
