"""CPUTask: AutoSAR CPU task dispatch system (the paper's Figure 1 model).

A task queue maintained through four opcode-selected operations:

* **add** (op 1) — insert ``(task_id, param)`` at the first free slot;
  fails only when the queue is full,
* **delete** (op 2) — remove the entry matching task id *and* param;
  fails when no entry matches,
* **modify** (op 3) — overwrite the param of the entry matching the task
  id; fails when absent or when the stored param marks the task protected,
* **check** (op 4) — query by task id and param; reports the slot index,
* any other opcode is invalid and leaves the queue untouched.

The queue lives in data stores (G/GV state), so delete/modify/check
success branches require "add first, then operate with matching values" —
the exact input pattern the paper argues constraint solving cannot reach
without state awareness.

:func:`build_cputask` is the benchmark-sized model (queue of 8, wide
id/param ranges); :func:`build_simple_cputask` is the 13-branch teaching
version used by Table I / Figure 3, where all search plumbing uses
uninstrumented Fcn blocks so the decision structure is exactly B1..B13.
"""

from __future__ import annotations

from repro.expr.types import ArrayType, INT
from repro.model.builder import ModelBuilder
from repro.model.graph import CompiledModel
from repro.models.common import (
    clamp_index,
    count_valid,
    first_free_slot,
    guarded_store_write,
    match_in_table,
    match_in_table2,
)

QUEUE_LEN = 8
#: Stored params at or above this value mark a protected task (modify fails).
PROTECT_THRESHOLD = 56
#: Params at or above this value are boosted on insertion (priority tag).
BOOST_THRESHOLD = 48


def build_cputask() -> CompiledModel:
    """The benchmark-sized CPUTask model."""
    b = ModelBuilder("CPUTask")
    op = b.inport("op", INT, 0, 5)
    task_id = b.inport("task_id", INT, 0, 255)
    param = b.inport("param", INT, 0, 63)

    b.data_store("ids", ArrayType(INT, QUEUE_LEN), (0,) * QUEUE_LEN)
    b.data_store("params", ArrayType(INT, QUEUE_LEN), (0,) * QUEUE_LEN)
    b.data_store("valid", ArrayType(INT, QUEUE_LEN), (0,) * QUEUE_LEN)

    ids = b.store_read("ids")
    params = b.store_read("params")
    valid = b.store_read("valid")

    sc = b.switch_case(op, cases=[[1], [2], [3], [4]], has_default=True)

    with sc.case(0):  # -------------------------------------------- add
        with b.scope("add"):
            free = first_free_slot(b, QUEUE_LEN, valid)
            full = b.compare(free, "==", QUEUE_LEN)
            slot = clamp_index(b, free, QUEUE_LEN)
            # High-priority tasks get a boost tag on their stored param.
            boosted = b.switch(
                b.compare(param, ">=", BOOST_THRESHOLD),
                b.add(param, b.const(64)),
                param,
            )
            new_ids = b.array_update(ids, slot, task_id, QUEUE_LEN)
            new_params = b.array_update(params, slot, boosted, QUEUE_LEN)
            new_valid = b.array_update(valid, slot, b.const(1), QUEUE_LEN)
            can_insert = b.logic_not(full)
            guarded_store_write(b, "ids", can_insert, new_ids, ids)
            guarded_store_write(b, "params", can_insert, new_params, params)
            guarded_store_write(b, "valid", can_insert, new_valid, valid)
            status = b.switch(full, b.const(0), b.const(1))
            add_status = b.sub_output(status, init=0)
            add_slot = b.sub_output(b.switch(full, b.const(-1), slot), init=-1)

    with sc.case(1):  # -------------------------------------------- delete
        with b.scope("del"):
            hit = match_in_table2(
                b, QUEUE_LEN, valid, ids, task_id, params, param
            )
            miss = b.compare(hit, "==", QUEUE_LEN)
            slot = clamp_index(b, hit, QUEUE_LEN)
            cleared = b.array_update(valid, slot, b.const(0), QUEUE_LEN)
            found = b.logic_not(miss)
            guarded_store_write(b, "valid", found, cleared, valid)
            status = b.switch(miss, b.const(0), b.const(1))
            del_status = b.sub_output(status, init=0)

    with sc.case(2):  # -------------------------------------------- modify
        with b.scope("mod"):
            hit = match_in_table(b, QUEUE_LEN, valid, ids, task_id)
            miss = b.compare(hit, "==", QUEUE_LEN)
            slot = clamp_index(b, hit, QUEUE_LEN)
            stored = b.select(params, slot, QUEUE_LEN)
            protected = b.compare(stored, ">=", PROTECT_THRESHOLD)
            rejected = b.logic("or", miss, protected)
            updated = b.array_update(params, slot, param, QUEUE_LEN)
            allowed = b.logic_not(rejected)
            guarded_store_write(b, "params", allowed, updated, params)
            status = b.switch(rejected, b.const(0), b.const(1))
            mod_status = b.sub_output(status, init=0)

    with sc.case(3):  # -------------------------------------------- check
        with b.scope("chk"):
            hit = match_in_table2(
                b, QUEUE_LEN, valid, ids, task_id, params, param
            )
            miss = b.compare(hit, "==", QUEUE_LEN)
            status = b.switch(miss, b.const(0), b.const(1))
            chk_status = b.sub_output(status, init=0)
            chk_slot = b.sub_output(
                b.switch(miss, b.const(-1), clamp_index(b, hit, QUEUE_LEN)),
                init=-1,
            )

    with sc.default():  # ------------------------------------------ invalid
        with b.scope("inv"):
            invalid_flag = b.sub_output(b.const(1), init=0)

    occupancy = count_valid(b, QUEUE_LEN, b.store_read("valid", current=True))

    b.outport("add_status", add_status)
    b.outport("add_slot", add_slot)
    b.outport("del_status", del_status)
    b.outport("mod_status", mod_status)
    b.outport("chk_status", chk_status)
    b.outport("chk_slot", chk_slot)
    b.outport("invalid", invalid_flag)
    b.outport("occupancy", occupancy)
    return b.compile()


SIMPLE_QUEUE_LEN = 3


def build_simple_cputask() -> CompiledModel:
    """The simplified 13-branch CPUTask of Figure 3(a) / Table I.

    Decision structure:

    * B1..B5 — the five opcode outcomes of the Switch-Case,
    * B6/B7 — add success / add failure (failure needs a full queue),
    * B8/B9 — delete success / failure,
    * B10/B11 — modify success / failure,
    * B12/B13 — check success / failure.

    All search plumbing is built from Fcn blocks (no instrumentation), so
    the registry holds exactly these 13 branches.
    """
    n = SIMPLE_QUEUE_LEN
    b = ModelBuilder("SimpleCPUTask")
    op = b.inport("op", INT, 0, 5)
    task_id = b.inport("task_id", INT, 1, 15)
    param = b.inport("param", INT, 0, 7)

    b.data_store("ids", ArrayType(INT, n), (0,) * n)
    b.data_store("params", ArrayType(INT, n), (0,) * n)
    b.data_store("valid", ArrayType(INT, n), (0,) * n)
    ids = b.store_read("ids")
    params = b.store_read("params")
    valid = b.store_read("valid")

    def fcn_count():
        return b.fcn(
            "v0 + v1 + v2",
            v0=(b.select(valid, b.const(0), n), INT),
            v1=(b.select(valid, b.const(1), n), INT),
            v2=(b.select(valid, b.const(2), n), INT),
        )

    def fcn_free_slot():
        return b.fcn(
            "ite(v0 == 0, 0, ite(v1 == 0, 1, ite(v2 == 0, 2, 3)))",
            v0=(b.select(valid, b.const(0), n), INT),
            v1=(b.select(valid, b.const(1), n), INT),
            v2=(b.select(valid, b.const(2), n), INT),
        )

    def fcn_match(by_param: bool):
        """First slot matching id (and param when ``by_param``), else 3."""
        clause = "v{i} == 1 && i{i} == t" + (" && p{i} == q" if by_param else "")
        text = (
            f"ite({clause.format(i=0)}, 0, "
            f"ite({clause.format(i=1)}, 1, "
            f"ite({clause.format(i=2)}, 2, 3)))"
        )
        kwargs = {"t": (task_id, INT)}
        if by_param:
            kwargs["q"] = (param, INT)
        for index in range(n):
            kwargs[f"v{index}"] = (b.select(valid, b.const(index), n), INT)
            kwargs[f"i{index}"] = (b.select(ids, b.const(index), n), INT)
            if by_param:
                kwargs[f"p{index}"] = (b.select(params, b.const(index), n), INT)
        return b.fcn(text, **kwargs)

    sc = b.switch_case(op, cases=[[1], [2], [3], [4]], has_default=True)

    with sc.case(0):  # add: B6 success / B7 failure (queue full)
        with b.scope("add"):
            count = fcn_count()
            full = b.compare(count, ">=", n)
            free = fcn_free_slot()
            slot = b.fcn("min(f, 2)", f=(free, INT))
            ok = b.switch(full, b.const(0), b.const(1))  # B7 / B6
            new_ids = b.fcn(
                "ite(ok == 1, store(a, s, t), a)",
                ok=(ok, INT), a=(ids, ArrayType(INT, n)),
                s=(slot, INT), t=(task_id, INT),
            )
            new_params = b.fcn(
                "ite(ok == 1, store(a, s, q), a)",
                ok=(ok, INT), a=(params, ArrayType(INT, n)),
                s=(slot, INT), q=(param, INT),
            )
            new_valid = b.fcn(
                "ite(ok == 1, store(a, s, 1), a)",
                ok=(ok, INT), a=(valid, ArrayType(INT, n)), s=(slot, INT),
            )
            b.store_write("ids", new_ids)
            b.store_write("params", new_params)
            b.store_write("valid", new_valid)
            add_ok = b.sub_output(ok, init=0)

    with sc.case(1):  # delete: B8 success / B9 failure
        with b.scope("del"):
            hit = fcn_match(by_param=True)
            miss = b.compare(hit, ">=", n)
            ok = b.switch(miss, b.const(0), b.const(1))  # B9 / B8
            slot = b.fcn("min(h, 2)", h=(hit, INT))
            new_valid = b.fcn(
                "ite(ok == 1, store(a, s, 0), a)",
                ok=(ok, INT), a=(valid, ArrayType(INT, n)), s=(slot, INT),
            )
            b.store_write("valid", new_valid)
            del_ok = b.sub_output(ok, init=0)

    with sc.case(2):  # modify: B10 success / B11 failure
        with b.scope("mod"):
            hit = fcn_match(by_param=False)
            miss = b.compare(hit, ">=", n)
            ok = b.switch(miss, b.const(0), b.const(1))  # B11 / B10
            slot = b.fcn("min(h, 2)", h=(hit, INT))
            new_params = b.fcn(
                "ite(ok == 1, store(a, s, q), a)",
                ok=(ok, INT), a=(params, ArrayType(INT, n)),
                s=(slot, INT), q=(param, INT),
            )
            b.store_write("params", new_params)
            mod_ok = b.sub_output(ok, init=0)

    with sc.case(3):  # check: B12 success / B13 failure
        with b.scope("chk"):
            hit = fcn_match(by_param=True)
            miss = b.compare(hit, ">=", n)
            ok = b.switch(miss, b.const(0), b.const(1))  # B13 / B12
            chk_ok = b.sub_output(ok, init=0)

    with sc.default():  # invalid opcode: B5
        with b.scope("inv"):
            inv = b.sub_output(b.const(1), init=0)

    b.outport("add_ok", add_ok)
    b.outport("del_ok", del_ok)
    b.outport("mod_ok", mod_ok)
    b.outport("chk_ok", chk_ok)
    b.outport("invalid", inv)
    return b.compile()
