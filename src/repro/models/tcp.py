"""TCP: three-way handshake protocol (full connection state machine).

A single-connection TCP endpoint:

* the RFC-793 state chart — CLOSED, LISTEN, SYN_SENT, SYN_RCVD,
  ESTABLISHED, FIN_WAIT_1, FIN_WAIT_2, CLOSE_WAIT, CLOSING, LAST_ACK,
  TIME_WAIT — driven by user events (open/send/close) and received
  segments (SYN/ACK/FIN/RST flags plus sequence/ack numbers),
* sequence-number coupling: ``snd_nxt``/``rcv_nxt`` live in chart locals,
  and the handshake transitions demand exact matches (the ACK of our SYN
  must carry ``ack == snd_nxt``; an in-order FIN must carry
  ``seq == rcv_nxt``).  This is the paper's Figure 4 example: "STCG can
  obtain the various handshake states of the client IP, therefore it is
  easy to solve the relevant branches of the second or the third
  handshake based on the existing handshake states",
* a segment pre-validator (flag sanity switches) and a retransmission
  counter with give-up,
* an output-segment builder selecting flags per state.
"""

from __future__ import annotations

from repro.expr.types import BOOL, INT
from repro.model.builder import ModelBuilder
from repro.model.graph import CompiledModel
from repro.stateflow.spec import ChartSpec

# User / environment events.
EV_NONE = 0
EV_ACTIVE_OPEN = 1
EV_PASSIVE_OPEN = 2
EV_SEND = 3
EV_CLOSE = 4
EV_SEGMENT = 5  # a segment arrived (flags + numbers valid)
EV_TIMEOUT = 6

# Chart state codes (also the location order).
S_CLOSED = 0
S_LISTEN = 1
S_SYN_SENT = 2
S_SYN_RCVD = 3
S_ESTABLISHED = 4
S_FIN_WAIT_1 = 5
S_FIN_WAIT_2 = 6
S_CLOSE_WAIT = 7
S_CLOSING = 8
S_LAST_ACK = 9
S_TIME_WAIT = 10

#: Our fixed initial send sequence number (deterministic ISS).
ISS = 100


def _tcp_chart() -> ChartSpec:
    chart = ChartSpec("tcp_fsm")
    chart.input("event", INT, 0, 7)
    chart.input("syn", BOOL)
    chart.input("ack", BOOL)
    chart.input("fin", BOOL)
    chart.input("rst", BOOL)
    chart.input("seq", INT, 0, 255)
    chart.input("ackno", INT, 0, 255)
    chart.output("state", INT, S_CLOSED)
    chart.output("snd_nxt", INT, ISS)
    chart.output("rcv_nxt", INT, 0)

    closed = chart.state("Closed", entry=[f"state = {S_CLOSED}"])
    listen = chart.state("Listen", entry=[f"state = {S_LISTEN}"])
    syn_sent = chart.state(
        "SynSent", entry=[f"state = {S_SYN_SENT}", f"snd_nxt = {ISS + 1}"]
    )
    syn_rcvd = chart.state("SynRcvd", entry=[f"state = {S_SYN_RCVD}"])
    established = chart.state(
        "Established", entry=[f"state = {S_ESTABLISHED}"]
    )
    fin_wait_1 = chart.state(
        "FinWait1", entry=[f"state = {S_FIN_WAIT_1}", "snd_nxt = snd_nxt + 1"]
    )
    fin_wait_2 = chart.state("FinWait2", entry=[f"state = {S_FIN_WAIT_2}"])
    close_wait = chart.state("CloseWait", entry=[f"state = {S_CLOSE_WAIT}"])
    closing = chart.state("Closing", entry=[f"state = {S_CLOSING}"])
    last_ack = chart.state(
        "LastAck", entry=[f"state = {S_LAST_ACK}", "snd_nxt = snd_nxt + 1"]
    )
    time_wait = chart.state("TimeWait", entry=[f"state = {S_TIME_WAIT}"])
    chart.initial(closed)

    seg = f"event == {EV_SEGMENT}"

    # -- opening -------------------------------------------------------------
    chart.transition(
        closed, syn_sent, guard=f"event == {EV_ACTIVE_OPEN}", priority=1
    )
    chart.transition(
        closed, listen, guard=f"event == {EV_PASSIVE_OPEN}", priority=2
    )
    # First handshake: a SYN arrives on a listening socket.
    chart.transition(
        listen, syn_rcvd,
        guard=f"{seg} && syn && !ack && !rst",
        actions=["rcv_nxt = seq + 1", f"snd_nxt = {ISS + 1}"],
        priority=1,
    )
    chart.transition(listen, closed, guard=f"event == {EV_CLOSE}", priority=2)
    # Second handshake (active side): SYN+ACK acknowledging our SYN.
    chart.transition(
        syn_sent, established,
        guard=f"{seg} && syn && ack && ackno == snd_nxt",
        actions=["rcv_nxt = seq + 1"],
        priority=1,
    )
    # Simultaneous open.
    chart.transition(
        syn_sent, syn_rcvd,
        guard=f"{seg} && syn && !ack",
        actions=["rcv_nxt = seq + 1"],
        priority=2,
    )
    chart.transition(
        syn_sent, closed, guard=f"{seg} && rst", priority=3
    )
    chart.transition(
        syn_sent, closed, guard=f"event == {EV_CLOSE}", priority=4
    )
    # Third handshake (passive side): the ACK completing the handshake
    # must acknowledge exactly our SYN (ackno == snd_nxt, state-coupled).
    chart.transition(
        syn_rcvd, established,
        guard=f"{seg} && ack && !syn && ackno == snd_nxt",
        priority=1,
    )
    chart.transition(
        syn_rcvd, listen, guard=f"{seg} && rst", priority=2
    )
    chart.transition(
        syn_rcvd, fin_wait_1, guard=f"event == {EV_CLOSE}", priority=3
    )

    # -- established / teardown ------------------------------------------------
    chart.transition(
        established, close_wait,
        guard=f"{seg} && fin && seq == rcv_nxt",
        actions=["rcv_nxt = rcv_nxt + 1"],
        priority=1,
    )
    chart.transition(
        established, closed, guard=f"{seg} && rst", priority=2
    )
    chart.transition(
        established, fin_wait_1, guard=f"event == {EV_CLOSE}", priority=3
    )
    chart.transition(
        established, established,
        guard=f"event == {EV_SEND}",
        actions=["snd_nxt = snd_nxt + 1"],
        priority=4,
    )
    chart.transition(
        fin_wait_1, fin_wait_2,
        guard=f"{seg} && ack && !fin && ackno == snd_nxt",
        priority=1,
    )
    chart.transition(
        fin_wait_1, closing,
        guard=f"{seg} && fin && !ack",
        actions=["rcv_nxt = rcv_nxt + 1"],
        priority=2,
    )
    chart.transition(
        fin_wait_1, time_wait,
        guard=f"{seg} && fin && ack && ackno == snd_nxt",
        actions=["rcv_nxt = rcv_nxt + 1"],
        priority=3,
    )
    chart.transition(
        fin_wait_2, time_wait,
        guard=f"{seg} && fin && seq == rcv_nxt",
        actions=["rcv_nxt = rcv_nxt + 1"],
        priority=1,
    )
    chart.transition(
        close_wait, last_ack, guard=f"event == {EV_CLOSE}", priority=1
    )
    chart.transition(
        closing, time_wait,
        guard=f"{seg} && ack && ackno == snd_nxt",
        priority=1,
    )
    chart.transition(
        last_ack, closed,
        guard=f"{seg} && ack && ackno == snd_nxt",
        priority=1,
    )
    chart.transition(
        time_wait, closed, guard=f"event == {EV_TIMEOUT}", priority=1
    )
    # Reset tears down everything past the handshake.
    for state in (fin_wait_1, fin_wait_2, close_wait, closing, last_ack):
        chart.transition(
            state, closed, guard=f"{seg} && rst", priority=9
        )
    return chart


def build_tcp() -> CompiledModel:
    b = ModelBuilder("TCP")
    event = b.inport("event", INT, 0, 7)
    syn = b.inport("syn", BOOL)
    ack = b.inport("ack", BOOL)
    fin = b.inport("fin", BOOL)
    rst = b.inport("rst", BOOL)
    seq = b.inport("seq", INT, 0, 255)
    ackno = b.inport("ackno", INT, 0, 255)

    b.data_store("rx_segments", INT, 0)
    b.data_store("bad_segments", INT, 0)

    chart = b.add_chart(
        _tcp_chart(),
        {
            "event": event, "syn": syn, "ack": ack, "fin": fin,
            "rst": rst, "seq": seq, "ackno": ackno,
        },
        name="fsm",
    )
    state = chart["state"]
    snd_nxt = chart["snd_nxt"]
    rcv_nxt = chart["rcv_nxt"]

    # ---- segment sanity checking ------------------------------------------------
    is_segment = b.compare(event, "==", EV_SEGMENT, name="is_segment")
    syn_fin = b.logic("and", syn, fin, name="syn_fin_both")
    rst_syn = b.logic("and", rst, syn, name="rst_syn_both")
    malformed = b.logic("or", syn_fin, rst_syn, name="malformed")
    bad_seg = b.logic("and", is_segment, malformed, name="bad_segment")
    rx_old = b.store_read("rx_segments")
    bad_old = b.store_read("bad_segments")
    b.store_write(
        "rx_segments",
        b.switch(is_segment, b.add(rx_old, b.const(1)), rx_old),
    )
    b.store_write(
        "bad_segments",
        b.switch(bad_seg, b.add(bad_old, b.const(1)), bad_old),
    )

    # ---- in-window check for data segments -----------------------------------------
    in_order = b.compare(seq, "==", rcv_nxt, name="seq_in_order")
    established = b.compare(state, "==", S_ESTABLISHED, name="is_established")
    acceptable = b.logic(
        "and", is_segment, established, in_order, name="acceptable_data"
    )
    deliver = b.switch(acceptable, seq, b.const(-1), name="deliver_seq")

    # ---- retransmission bookkeeping ---------------------------------------------
    awaiting = b.logic(
        "or",
        b.compare(state, "==", S_SYN_SENT),
        b.compare(state, "==", S_FIN_WAIT_1),
        b.compare(state, "==", S_LAST_ACK),
        name="awaiting_ack",
    )
    timeout_now = b.compare(event, "==", EV_TIMEOUT, name="is_timeout")
    retx_event = b.logic("and", awaiting, timeout_now, name="retx_event")
    retx_in = b.switch(retx_event, b.const(1.0), b.const(0.0), name="retx_pulse")
    retx = b.integrator(retx_in, gain=1.0, lo=0.0, hi=5.0, name="retx_count")
    give_up = b.compare(retx, ">=", 3.0, name="give_up")

    # ---- receive-window classification ------------------------------------------
    # In-order / within-window / stale / far-future, relative to rcv_nxt.
    offset = b.fcn(
        "(s - r + 256) % 256", s=(seq, INT), r=(b.cast(rcv_nxt, INT), INT),
        name="seq_offset",
    )
    off_int = b.cast(offset, INT, name="seq_offset_i")
    window_class = b.multiport(
        b.fcn("ite(o == 0, 0, ite(o < 32, 1, ite(o > 224, 2, 3)))",
              o=(off_int, INT), name="window_bucket"),
        cases=[
            (0, b.const(0)),   # exactly in order
            (1, b.const(1)),   # inside the receive window
            (2, b.const(2)),   # stale duplicate (wrapped behind)
        ],
        default=b.const(3),    # far future
        name="window_class",
    )

    # ---- keep-alive supervision ----------------------------------------------------
    quiet_step = b.logic(
        "and",
        b.compare(event, "==", EV_NONE),
        b.compare(state, "==", S_ESTABLISHED),
        name="idle_established",
    )
    idle_in = b.switch(quiet_step, b.const(2.0), b.const(0.0), name="idle_pulse")
    idle_count = b.integrator(idle_in, gain=1.0, lo=0.0, hi=8.0, name="idle_count")
    keepalive_due = b.compare(idle_count, ">=", 4.0, name="keepalive_due")
    probe = b.switch(keepalive_due, b.const(1), b.const(0), name="probe_out")

    # ---- output segment builder ------------------------------------------------------
    sends_syn = b.logic(
        "or",
        b.compare(state, "==", S_SYN_SENT),
        b.compare(state, "==", S_SYN_RCVD),
        name="sends_syn",
    )
    sends_fin = b.logic(
        "or",
        b.compare(state, "==", S_FIN_WAIT_1),
        b.compare(state, "==", S_LAST_ACK),
        b.compare(state, "==", S_CLOSING),
        name="sends_fin",
    )
    quiet = b.logic(
        "or",
        b.compare(state, "==", S_CLOSED),
        b.compare(state, "==", S_LISTEN),
        name="is_quiet",
    )
    out_flags = b.switch(
        quiet, b.const(0),
        b.switch(
            sends_syn, b.const(1),
            b.switch(sends_fin, b.const(2), b.const(4)),
            name="flag_inner",
        ),
        name="flag_sel",
    )
    out_seq = b.switch(
        give_up, b.const(-1), b.cast(snd_nxt, INT), name="out_seq_sel"
    )

    b.outport("state", state)
    b.outport("out_flags", out_flags)
    b.outport("out_seq", out_seq)
    b.outport("deliver", deliver)
    b.outport("rx_count", b.store_read("rx_segments", current=True))
    b.outport("bad_count", b.store_read("bad_segments", current=True))
    b.outport("window_class", window_class)
    b.outport("probe", probe)
    return b.compile()
