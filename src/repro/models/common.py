"""Reusable construction patterns for the benchmark models.

Industrial Simulink models repeat a handful of idioms over and over —
linear-search chains over a fixed-size table, first-free-slot insertion,
guarded data-store updates.  These helpers build those idioms from the
primitive block library so every occurrence is fully instrumented (each
chain element is a real Switch decision, each match test a real Logic
block, exactly as the unrolled Simulink models they mimic).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.model.builder import ModelBuilder
from repro.model.graph import Signal


def find_first_index(
    b: ModelBuilder,
    length: int,
    predicate: Callable[[int], Signal],
    sentinel: Optional[int] = None,
) -> Signal:
    """Index of the first slot whose predicate holds, else ``sentinel``.

    Builds the classic unrolled search chain: ``length`` Switch blocks
    scanning from slot 0 upward.  ``predicate(i)`` must return a boolean
    signal for slot ``i``.  The sentinel defaults to ``length``.
    """
    if sentinel is None:
        sentinel = length
    result = b.const(sentinel)
    for index in reversed(range(length)):
        result = b.switch(predicate(index), b.const(index), result)
    return result


def match_in_table(
    b: ModelBuilder,
    length: int,
    valid_array: Signal,
    key_array: Signal,
    key: Signal,
) -> Signal:
    """Index of the first valid slot whose key equals ``key`` (else length).

    Each slot test is an instrumented 2-input Logic AND, giving condition
    and MCDC obligations per slot — the dominant source of condition
    coverage in the table-driven benchmark models.
    """

    def slot_matches(index: int) -> Signal:
        valid = b.compare(b.select(valid_array, b.const(index), length), "==", 1)
        same = b.compare(b.select(key_array, b.const(index), length), "==", key)
        return b.logic("and", valid, same)

    return find_first_index(b, length, slot_matches)


def match_in_table2(
    b: ModelBuilder,
    length: int,
    valid_array: Signal,
    key_array: Signal,
    key: Signal,
    aux_array: Signal,
    aux: Signal,
) -> Signal:
    """Like :func:`match_in_table` but both key and auxiliary field must
    match (the paper's delete/check operations match task id *and*
    parameter)."""

    def slot_matches(index: int) -> Signal:
        valid = b.compare(b.select(valid_array, b.const(index), length), "==", 1)
        same_key = b.compare(b.select(key_array, b.const(index), length), "==", key)
        same_aux = b.compare(b.select(aux_array, b.const(index), length), "==", aux)
        return b.logic("and", valid, same_key, same_aux)

    return find_first_index(b, length, slot_matches)


def first_free_slot(
    b: ModelBuilder, length: int, valid_array: Signal
) -> Signal:
    """Index of the first invalid slot (else ``length`` = table full)."""

    def slot_free(index: int) -> Signal:
        return b.compare(b.select(valid_array, b.const(index), length), "==", 0)

    return find_first_index(b, length, slot_free)


def clamp_index(b: ModelBuilder, index: Signal, length: int) -> Signal:
    """Clamp a possibly-sentinel index into addressable range."""
    return b.min(index, b.const(length - 1))


def guarded_store_write(
    b: ModelBuilder,
    store: str,
    condition: Signal,
    new_value: Signal,
    old_value: Signal,
) -> None:
    """Write ``new_value`` when the condition holds, else keep the old value
    (a Switch in front of a DataStoreWrite — the Simulink idiom for a
    conditional store update inside an always-executing region)."""
    b.store_write(store, b.switch(condition, new_value, old_value))


def count_valid(b: ModelBuilder, length: int, valid_array: Signal) -> Signal:
    """Sum of the valid flags (queue occupancy)."""
    total = b.select(valid_array, b.const(0), length)
    for index in range(1, length):
        total = b.add(total, b.select(valid_array, b.const(index), length))
    return total
