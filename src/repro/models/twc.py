"""TWC: train wheel speed controller.

Wheel-slip protection plus speed regulation:

* a slip chart (Normal → SlipDetected → SlipControl → Recovery, with an
  EmergencyBrake state entered after repeated slip episodes; an episode
  counter lives in chart locals),
* a PI speed controller with anti-windup, torque rate limiting and
  direction handling,
* brake blending selected by a quantized brake-demand level (multiport
  switch),
* sanding control activated during slip recovery at low adhesion.

This model deliberately contains **dead logic** (like the paper found in
the real TWC): two switch branches whose conditions compare a saturated
signal against values outside the saturation range can never fire, so no
tool can reach 100% decision coverage here.
"""

from __future__ import annotations

from repro.expr.types import INT, REAL
from repro.model.builder import ModelBuilder
from repro.model.graph import CompiledModel
from repro.stateflow.spec import ChartSpec

SLIP_ON = 0.12  # slip ratio that triggers detection
SLIP_OFF = 0.05  # slip ratio considered recovered
EPISODE_LIMIT = 3  # slip episodes before emergency braking

MODE_NORMAL = 0
MODE_DETECTED = 1
MODE_CONTROL = 2
MODE_RECOVERY = 3
MODE_EMERGENCY = 4


def _slip_chart() -> ChartSpec:
    chart = ChartSpec("twc_slip")
    chart.input("slip", REAL, -1.0, 2.0)
    chart.input("speed", REAL, 0.0, 350.0)
    chart.input("brake", REAL, 0.0, 1.0)
    chart.output("mode", INT, MODE_NORMAL)
    chart.output("torque_scale_pct", INT, 100)
    chart.local("episodes", INT, 0)
    chart.local("hold", INT, 0)

    normal = chart.state(
        "Normal", entry=["mode = 0", "torque_scale_pct = 100"]
    )
    detected = chart.state(
        "Detected",
        entry=["mode = 1", "episodes = episodes + 1", "hold = 0"],
    )
    control = chart.state(
        "Control",
        entry=["mode = 2", "torque_scale_pct = 40"],
        during=["hold = hold + 1"],
    )
    recovery = chart.state(
        "Recovery",
        entry=["mode = 3", "torque_scale_pct = 70"],
        during=["hold = hold + 1"],
    )
    emergency = chart.state(
        "Emergency", entry=["mode = 4", "torque_scale_pct = 0"]
    )
    chart.initial(normal)

    chart.transition(normal, detected, guard=f"slip > {SLIP_ON}", priority=1)
    chart.transition(
        detected, emergency, guard=f"episodes >= {EPISODE_LIMIT}", priority=1
    )
    # Always true in practice (brake is bounded), but not structurally
    # constant: the solver re-proves the not-taken side infeasible on every
    # state — the "perpetually false branch" waste the paper discusses.
    chart.transition(detected, control, guard="brake <= 1.0", priority=2)
    chart.transition(
        control, recovery, guard=f"slip < {SLIP_OFF} && hold >= 2", priority=1
    )
    chart.transition(
        control, emergency, guard="speed > 320.0 && brake < 0.1", priority=2
    )
    chart.transition(
        recovery, normal, guard=f"hold >= 3 && slip < {SLIP_OFF}", priority=1
    )
    chart.transition(recovery, detected, guard=f"slip > {SLIP_ON}", priority=2)
    chart.transition(
        emergency, normal, guard="speed < 5.0 && brake > 0.8", priority=1
    )
    return chart


def build_twc() -> CompiledModel:
    b = ModelBuilder("TWC")
    target = b.inport("target_speed", REAL, 0.0, 300.0)
    wheel = b.inport("wheel_speed", REAL, 0.0, 350.0)
    train = b.inport("train_speed", REAL, 0.0, 300.0)
    brake = b.inport("brake_demand", REAL, 0.0, 1.0)
    grade = b.inport("track_grade", REAL, -5.0, 5.0)

    # ---- slip estimation --------------------------------------------------
    denom = b.max(train, b.const(1.0), name="slip_denom")
    slip = b.div(b.sub(wheel, train), denom, name="slip_ratio")

    chart = b.add_chart(
        _slip_chart(),
        {"slip": slip, "speed": wheel, "brake": brake},
        name="slip_chart",
    )
    mode = chart["mode"]
    scale_pct = chart["torque_scale_pct"]

    # ---- PI speed control with anti-windup --------------------------------
    error = b.sub(target, train, name="speed_error")
    coasting = b.compare(brake, ">", 0.05, name="is_braking")
    i_input = b.switch(coasting, b.const(0.0), error, name="integrator_gate")
    integral = b.integrator(i_input, gain=0.2, lo=-50.0, hi=50.0, name="pi_i")
    saturating = b.compare(b.abs(integral), ">=", 30.0, name="windup_near")
    i_term = b.switch(
        saturating, b.gain(integral, 0.5), integral, name="antiwindup"
    )
    p_term = b.gain(error, 0.8, name="pi_p")
    raw_torque = b.add(p_term, i_term, name="raw_torque")

    # Grade compensation from a lookup table.
    comp = b.lookup(
        grade,
        breakpoints=[-5.0, -2.0, 0.0, 2.0, 5.0],
        values=[-20.0, -8.0, 0.0, 8.0, 20.0],
        name="grade_comp",
    )
    compensated = b.add(raw_torque, comp, name="compensated")

    # Apply the chart's torque scaling.
    scaled = b.mul(
        compensated, b.div(b.cast(scale_pct, REAL), b.const(100.0)),
        name="scaled_torque",
    )
    limited = b.rate_limit(scaled, up=15.0, down=25.0, name="torque_slew")
    torque = b.saturate(limited, -120.0, 120.0, name="torque_clamp")

    # ---- brake blending: quantized demand level selects the blend ---------
    level = b.cast(b.gain(brake, 4.999), INT, name="brake_level")
    blend = b.multiport(
        level,
        cases=[
            (0, b.const(0.0)),
            (1, b.gain(brake, 40.0)),
            (2, b.gain(brake, 80.0)),
            (3, b.gain(brake, 120.0)),
        ],
        default=b.const(120.0),
        name="brake_blend",
    )
    emergency = b.compare(mode, "==", MODE_EMERGENCY, name="is_emergency")
    brake_force = b.switch(emergency, b.const(150.0), blend, name="brake_sel")

    # ---- sanding: slip recovery at meaningful speed ------------------------
    in_recovery = b.compare(mode, "==", MODE_RECOVERY, name="in_recovery")
    moving = b.compare(train, ">", 10.0, name="is_moving")
    sander = b.logic("and", in_recovery, moving, name="sander_on")
    sand_cmd = b.switch(sander, b.const(1), b.const(0), name="sand_cmd")

    # ---- traction cutoff conditions ----------------------------------------
    overspeed = b.compare(wheel, ">", 330.0, name="overspeed")
    heavy_brake = b.compare(brake, ">", 0.9, name="heavy_brake")
    cutoff = b.logic("or", overspeed, heavy_brake, emergency, name="cutoff")
    applied = b.switch(cutoff, b.const(0.0), torque, name="torque_cut")

    # ---- per-axle torque distribution --------------------------------------
    # Four axles share the applied torque; grade shifts the front/rear
    # split, and any axle whose share exceeds the per-axle limit is
    # clipped and flagged.
    downhill = b.compare(grade, "<", -1.0, name="is_downhill")
    uphill = b.compare(grade, ">", 1.0, name="is_uphill")
    front_bias = b.switch(
        downhill, b.const(0.35),
        b.switch(uphill, b.const(0.15), b.const(0.25), name="bias_inner"),
        name="front_bias",
    )
    axle_flags = b.const(0)
    axle0_out = None
    for axle in range(4):
        if axle < 2:
            bias = front_bias
        else:
            bias = b.sub(b.const(0.5), front_bias, name=f"rear_bias{axle}")
        share = b.mul(applied, bias, name=f"axle{axle}_share")
        clipped = b.compare(b.abs(share), ">", 35.0, name=f"axle{axle}_over")
        axle_out = b.switch(
            clipped,
            b.saturate(share, -35.0, 35.0, name=f"axle{axle}_sat"),
            share,
            name=f"axle{axle}_clip",
        )
        axle_flags = b.switch(
            clipped, b.add(axle_flags, b.const(1)), axle_flags,
            name=f"axle{axle}_flag",
        )
        if axle == 0:
            axle0_out = axle_out

    # ---- adhesion class from the grade (banded ladder) -----------------------
    grade_band = b.cast(b.bias(b.gain(grade, 0.4), 2.0), INT, name="grade_band")
    adhesion_pct = b.multiport(
        grade_band,
        cases=[
            (0, b.const(80)),
            (1, b.const(95)),
            (2, b.const(100)),
            (3, b.const(92)),
        ],
        default=b.const(75),
        name="adhesion_class",
    )

    # ---- DEAD LOGIC (intentional): saturated signal vs impossible bounds ---
    sat_speed = b.saturate(wheel, 0.0, 350.0, name="speed_sat")
    impossible_hi = b.compare(sat_speed, ">", 400.0, name="dead_hi")
    dead1 = b.switch(impossible_hi, b.const(1), b.const(0), name="dead_switch1")
    sat_brake = b.saturate(brake, 0.0, 1.0, name="brake_sat")
    impossible_lo = b.compare(sat_brake, "<", -0.5, name="dead_lo")
    dead2 = b.switch(impossible_lo, b.const(1), b.const(0), name="dead_switch2")
    diag = b.add(dead1, dead2, name="diag_code")

    b.outport("torque", applied)
    b.outport("brake_force", brake_force)
    b.outport("sand", sand_cmd)
    b.outport("mode", mode)
    b.outport("diag", diag)
    b.outport("axle0", axle0_out)
    b.outport("axle_flags", axle_flags)
    b.outport("adhesion", adhesion_pct)
    return b.compile()
