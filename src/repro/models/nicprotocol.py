"""NICProtocol: vehicle NIC communication protocol controller.

A CAN-flavoured node controller:

* a protocol chart: Idle → Arbitration → Transmitting → WaitAck, with a
  bounded retry counter, an error counter and a BusOff state entered after
  repeated errors (recovered only by an explicit reset event),
* receive-path frame processing: an acceptance filter over the 11-bit
  message id, a checksum test (``crc == (payload + id) mod 256`` — a
  needle random search practically never threads), and per-class payload
  handling subsystems,
* statistics data stores (accepted/rejected/error counts).

The ack branch is the paper's motif: WaitAck → Idle requires an *ack for
the id we transmitted*, i.e. an input matching state captured when the
transmission started.
"""

from __future__ import annotations

from repro.expr.types import BOOL, INT
from repro.model.builder import ModelBuilder
from repro.model.graph import CompiledModel
from repro.stateflow.spec import ChartSpec

EV_NONE = 0
EV_TX_REQUEST = 1
EV_BUS_GRANT = 2
EV_TX_DONE = 3
EV_RX_ACK = 4
EV_BUS_ERROR = 5
EV_RESET = 6
EV_ACK_TIMEOUT = 7

ST_IDLE = 0
ST_ARBITRATION = 1
ST_TRANSMIT = 2
ST_WAIT_ACK = 3
ST_BUSOFF = 4

MAX_RETRIES = 1
ERROR_LIMIT = 2


def _protocol_chart() -> ChartSpec:
    chart = ChartSpec("nic_protocol")
    chart.input("event", INT, 0, 7)
    chart.input("msg_id", INT, 0, 2047)
    chart.input("ack_id", INT, 0, 2047)
    chart.output("state", INT, ST_IDLE)
    chart.output("tx_id", INT, 0)
    chart.local("retries", INT, 0)
    chart.local("errors", INT, 0)

    idle = chart.state("Idle", entry=["state = 0"])
    arbitration = chart.state("Arbitration", entry=["state = 1"])
    transmit = chart.state("Transmit", entry=["state = 2"])
    wait_ack = chart.state("WaitAck", entry=["state = 3"])
    busoff = chart.state("BusOff", entry=["state = 4"])
    chart.initial(idle)

    chart.transition(
        idle, arbitration,
        guard=f"event == {EV_TX_REQUEST}",
        actions=["tx_id = msg_id", "retries = 0"],
        priority=1,
    )
    chart.transition(
        arbitration, transmit, guard=f"event == {EV_BUS_GRANT}", priority=1
    )
    chart.transition(
        arbitration, idle, guard=f"event == {EV_BUS_ERROR}",
        actions=["errors = errors + 1"], priority=2,
    )
    chart.transition(
        transmit, wait_ack, guard=f"event == {EV_TX_DONE}", priority=1
    )
    chart.transition(
        transmit, busoff,
        guard=f"event == {EV_BUS_ERROR} && errors >= {ERROR_LIMIT - 1}",
        priority=2,
    )
    chart.transition(
        transmit, idle, guard=f"event == {EV_BUS_ERROR}",
        actions=["errors = errors + 1"], priority=3,
    )
    # The state-aware needle: the ack must carry the id we transmitted.
    chart.transition(
        wait_ack, idle,
        guard=f"event == {EV_RX_ACK} && ack_id == tx_id",
        actions=["errors = 0"], priority=1,
    )
    # Retries are driven by an ack timeout: a first timeout re-arbitrates,
    # a later one (t8 is only evaluated once retries saturated t7's guard)
    # drops the node to BusOff.
    chart.transition(
        wait_ack, arbitration,
        guard=f"event == {EV_ACK_TIMEOUT} && retries < {MAX_RETRIES}",
        actions=["retries = retries + 1"], priority=2,
    )
    chart.transition(
        wait_ack, busoff,
        guard=f"event == {EV_ACK_TIMEOUT}",
        priority=3,
    )
    chart.transition(
        busoff, idle, guard=f"event == {EV_RESET}",
        actions=["errors = 0", "retries = 0"], priority=1,
    )
    return chart


def build_nicprotocol() -> CompiledModel:
    b = ModelBuilder("NICProtocol")
    event = b.inport("event", INT, 0, 7)
    msg_id = b.inport("msg_id", INT, 0, 2047)
    ack_id = b.inport("ack_id", INT, 0, 2047)
    payload = b.inport("payload", INT, 0, 255)
    crc = b.inport("crc", INT, 0, 255)
    rx_valid = b.inport("rx_valid", BOOL)
    tx_enable = b.inport("tx_enable", BOOL)

    b.data_store("accepted", INT, 0)
    b.data_store("rejected", INT, 0)
    b.data_store("crc_errors", INT, 0)

    chart = b.add_chart(
        _protocol_chart(),
        {"event": event, "msg_id": msg_id, "ack_id": ack_id},
        name="protocol",
    )
    state = chart["state"]

    # ---- receive path -------------------------------------------------------
    checksum = b.fcn(
        "(p + m) % 256", p=(payload, INT), m=(msg_id, INT), name="checksum"
    )
    crc_ok = b.compare(crc, "==", checksum, name="crc_ok")
    frame_ok = b.logic("and", rx_valid, crc_ok, name="frame_ok")
    crc_fail = b.logic("and", rx_valid, b.logic_not(crc_ok), name="crc_fail")

    # Acceptance filter by id class.
    high_prio = b.compare(msg_id, "<", 256, name="id_high_prio")
    diagnostic = b.compare(msg_id, ">=", 1024, name="id_diag")
    b.logic("nor", high_prio, diagnostic, name="id_normal")

    accepted_old = b.store_read("accepted")
    rejected_old = b.store_read("rejected")
    crc_err_old = b.store_read("crc_errors")

    iff = b.if_block([frame_ok], has_else=True, name="rx_gate")
    with iff.case(0):
        with b.scope("rx"):
            # Per-class handling: priority boost, normal consume, diag echo.
            klass = b.switch(
                high_prio, b.const(0),
                b.switch(diagnostic, b.const(2), b.const(1)),
                name="class_sel",
            )
            handled = b.multiport(
                klass,
                cases=[
                    (0, b.gain(payload, 2)),
                    (1, payload),
                ],
                default=b.bias(payload, 1000),
                name="class_dispatch",
            )
            b.store_write("accepted", b.add(accepted_old, b.const(1)))
            rx_data = b.sub_output(handled, init=0)
    with iff.default():
        with b.scope("rx_bad"):
            # A bad frame costs a CRC error only when it was marked valid.
            b.store_write(
                "crc_errors",
                b.switch(crc_fail, b.add(crc_err_old, b.const(1)), crc_err_old),
            )
            b.store_write("rejected", b.add(rejected_old, b.const(1)))
            bad_flag = b.sub_output(b.const(1), init=0)

    # ---- payload-kind dispatch (rx side, always computed) ----------------------
    kind = b.fcn("p // 64", p=(payload, INT), name="payload_kind")
    kind_tag = b.multiport(
        b.cast(kind, INT),
        cases=[
            (0, b.const(10)),   # telemetry
            (1, b.const(20)),   # control
            (2, b.const(30)),   # config
        ],
        default=b.const(40),    # firmware chunks
        name="payload_dispatch",
    )

    # ---- error-rate supervision -------------------------------------------------
    crc_now = b.store_read("crc_errors", current=True)
    rej_now = b.store_read("rejected", current=True)
    noisy = b.compare(crc_now, ">=", 3, name="bus_noisy")
    lossy = b.compare(rej_now, ">=", 5, name="bus_lossy")
    degraded = b.logic("or", noisy, lossy, name="link_degraded")
    health = b.switch(degraded, b.const(1), b.const(0), name="link_health")

    # ---- transmit gating by protocol state ------------------------------------
    can_tx = b.compare(state, "==", ST_IDLE, name="can_tx")
    busy = b.compare(state, "==", ST_TRANSMIT, name="tx_busy")
    bus_off = b.compare(state, "==", ST_BUSOFF, name="bus_off")
    tx_ready = b.logic("and", can_tx, tx_enable, name="tx_ready")
    status_code = b.switch(
        bus_off, b.const(99),
        b.switch(busy, b.const(2), b.switch(tx_ready, b.const(0), b.const(1))),
        name="status_sel",
    )

    b.outport("status", status_code)
    b.outport("state", state)
    b.outport("rx_data", rx_data)
    b.outport("bad_frame", bad_flag)
    b.outport("accepted_count", b.store_read("accepted", current=True))
    b.outport("payload_tag", kind_tag)
    b.outport("link_health", health)
    return b.compile()
