"""The eight benchmark models (paper Table II) plus the teaching model."""

from repro.models.afc import build_afc
from repro.models.cputask import build_cputask, build_simple_cputask
from repro.models.lanswitch import build_lanswitch
from repro.models.ledlc import build_ledlc
from repro.models.nicprotocol import build_nicprotocol
from repro.models.registry import (
    BENCHMARKS,
    BenchmarkModel,
    SIMPLE_CPUTASK,
    benchmark_names,
    get_benchmark,
)
from repro.models.tcp import build_tcp
from repro.models.twc import build_twc
from repro.models.utpc import build_utpc

__all__ = [
    "BENCHMARKS",
    "BenchmarkModel",
    "SIMPLE_CPUTASK",
    "benchmark_names",
    "build_afc",
    "build_cputask",
    "build_lanswitch",
    "build_ledlc",
    "build_nicprotocol",
    "build_simple_cputask",
    "build_tcp",
    "build_twc",
    "build_utpc",
    "get_benchmark",
]
