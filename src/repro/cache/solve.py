"""Fingerprint-keyed caches for the STCG solve hot path.

One :class:`SolveCache` serves one model (its ``model_key``) and bundles
the two memoizations Algorithm 1 profits from:

* the **encoding cache** — a bounded LRU from state fingerprint to
  :class:`~repro.solver.encoder.OneStepEncoding`.  Building an encoding is
  a full symbolic execution of the model; revisiting a tree node whose
  state was already encoded is a dictionary lookup instead.
* the **verdict cache** — (state fingerprint, solve target) pairs the
  solver *refuted deterministically*.  A later attempt on the same pair
  (typically a fresh generator re-solving the same cell, or a new tree
  node that reaches an already-known state) skips the solver call
  entirely.
* the **compiled-constraint cache** — a bounded LRU from (state
  fingerprint, solve target) to the solver kernel's
  :class:`~repro.solverc.compiler.CompiledConstraint` bundle.  The
  one-step constraint is a pure function of that key, so the compiled
  contractor, distance closures, batch tapes — and the cached
  contraction *result* the bundle carries — replay exactly.

Cache-key soundness (see DESIGN.md for the full argument): a one-step
constraint is a pure function of (model, state value, target), so the
fingerprint fully determines it.  An UNSAT verdict is a *proof* — it holds
for every input, independent of search randomness — so it may be cached
per (fingerprint, target) forever.  UNKNOWN is a *budget artifact* (the
search ran out of samples or time) and must stay retryable; it is never
cached.  SAT is not cached either: the generator wants fresh, diverse
models, and a SAT branch leaves the uncovered set immediately anyway.

Only verdicts from the randomness-free pipeline stages
(:data:`CACHEABLE_UNSAT_STAGES`) are recorded: a ``fold``/``contract``
refutation consumes zero RNG draws, so skipping its replay leaves the
generator's random stream — and therefore every downstream decision —
bit-identical.  A ``split``-stage UNSAT is only reached *after* the
randomized sampling stage has consumed draws; caching it would make a warm
run diverge from a cold one, so it is deliberately left out.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.lru import LRUCache

__all__ = [
    "CACHEABLE_UNSAT_STAGES",
    "DEFAULT_COMPILED_CAPACITY",
    "DEFAULT_ENCODING_CAPACITY",
    "SolveCache",
]

#: Solver stages whose UNSAT verdicts are deterministic *and* consume no
#: RNG draws — the two properties that make them safe to cache without
#: perturbing a fixed-seed run (``canonical_stage`` tags).
CACHEABLE_UNSAT_STAGES = ("fold", "contract")

#: Default bound of the encoding LRU (``CacheConfig.encoding_size``).
DEFAULT_ENCODING_CAPACITY = 512

#: Default bound of the compiled-constraint LRU
#: (``CacheConfig.compiled_size``).
DEFAULT_COMPILED_CAPACITY = 256

#: Marker for a (fingerprint, target) key seen exactly once — see
#: :meth:`SolveCache.compiled_constraint`.
_FIRST_VISIT = object()


class SolveCache:
    """Encoding + verdict caches for one model, keyed by state fingerprint.

    Instances are cheap and by default private to one generator; passing
    the same instance to several generators of the *same compiled model*
    (repeated repetitions of a matrix cell, a re-run of an experiment)
    shares the learned encodings and dead verdicts across runs.  The cache
    is observationally transparent: with it warm or cold, a fixed-seed
    generation run produces bit-identical suites and coverage.
    """

    __slots__ = (
        "model_key",
        "encodings",
        "compiled",
        "verdicts_enabled",
        "verdict_hits",
        "_dead",
        "_restored_contraction",
    )

    def __init__(
        self,
        model_key: str,
        *,
        encoding_capacity: int = DEFAULT_ENCODING_CAPACITY,
        compiled_capacity: int = DEFAULT_COMPILED_CAPACITY,
        verdicts: bool = True,
    ):
        self.model_key = str(model_key)
        self.encodings = LRUCache(encoding_capacity)
        self.compiled = LRUCache(compiled_capacity)
        self.verdicts_enabled = bool(verdicts)
        self.verdict_hits = 0
        #: (fingerprint, target key) -> whether the refutation counted as
        #: a solver failure when first seen (a skip must replicate the
        #: failure-backoff bookkeeping exactly to stay transparent).
        self._dead: Dict[Tuple[str, object], bool] = {}
        #: Contraction results restored from the warm-start store, keyed
        #: like ``compiled`` and attached to a bundle the moment the
        #: factory builds it (see :meth:`compiled_constraint`).
        self._restored_contraction: Dict[tuple, tuple] = {}

    # -- encodings -----------------------------------------------------

    def encoding(self, fingerprint: str, factory):
        """The cached one-step encoding for ``fingerprint``, else build it.

        ``factory`` is a zero-argument callable; a rebuild after eviction
        is deterministic, so a bounded cache never changes results — only
        how often the symbolic executor runs.
        """
        encoding = self.encodings.get(fingerprint)
        if encoding is None:
            encoding = factory()
            self.encodings.put(fingerprint, encoding)
        return encoding

    # -- compiled constraints ------------------------------------------

    def compiled_constraint(self, fingerprint: str, target_key, factory):
        """The cached solver-kernel bundle for (fingerprint, target).

        Compilation is deferred to the *second* visit of a key: most
        (state, target) pairs are solved exactly once per run (the
        verdict cache retires dead pairs, SAT retires the target), so a
        first visit only leaves a marker and returns ``None`` — the
        caller solves through the plain interpreter at zero extra cost.
        A revisit calls ``factory`` to build the
        :class:`~repro.solverc.compiler.CompiledConstraint` and every
        visit after that reuses it, contraction snapshots included.

        The constraint is a pure function of the key, so a rebuild after
        eviction is deterministic — the bound changes how often the
        compiler runs, never what the solver returns.
        """
        key = (fingerprint, target_key)
        entry = self.compiled.get(key)
        if entry is None:
            self.compiled.put(key, _FIRST_VISIT)
            return None
        if entry is _FIRST_VISIT:
            entry = factory()
            if self._restored_contraction:
                # A warm-started bundle replays the previous run's
                # contraction result — a pure function of the constraint
                # and the initial box, so attaching it is equivalent to
                # the bundle having computed it on this visit.
                cached = self._restored_contraction.pop(key, None)
                if cached is not None and entry.contract_result is None:
                    entry.contract_result = cached
            self.compiled.put(key, entry)
        return entry

    # -- verdicts ------------------------------------------------------

    def dead_verdict(self, fingerprint: str, target_key) -> Optional[bool]:
        """``None`` if the pair is not known dead; else whether the
        original refutation counted toward failure backoff."""
        counts_failure = self._dead.get((fingerprint, target_key))
        if counts_failure is not None:
            self.verdict_hits += 1
        return counts_failure

    def mark_dead(
        self, fingerprint: str, target_key, *, counts_failure: bool
    ) -> None:
        """Record a deterministic refutation of (state, target)."""
        if self.verdicts_enabled:
            self._dead[(fingerprint, target_key)] = counts_failure

    @property
    def verdict_entries(self) -> int:
        return len(self._dead)

    # -- warm-start store folds ----------------------------------------

    def export_folds(self) -> Dict[str, object]:
        """The cache's persistable derived state (see :mod:`repro.store`).

        Four folds: dead verdicts, compiled-LRU keys (persisted as
        first-visit *markers* — a warm run recompiles the bundle, which
        is pinned bit-identical to interpreting), the contraction
        snapshots those bundles carried, and the one-step encodings.
        LRU folds are emitted in eviction order so a restore reproduces
        the original eviction behaviour exactly.  Export reads the LRUs
        through :meth:`~repro.cache.lru.LRUCache.items` — no counter or
        recency traffic, so exporting is pure observation.
        """
        from repro.store.codec import (
            ExprTable,
            encode_encoding,
            encode_target_key,
        )

        fps: list = []
        fp_index: Dict[str, int] = {}

        def intern(fingerprint: str) -> int:
            index = fp_index.get(fingerprint)
            if index is None:
                index = len(fps)
                fps.append(fingerprint)
                fp_index[fingerprint] = index
            return index

        verdicts = [
            [
                intern(fingerprint),
                encode_target_key(target_key),
                bool(counts_failure),
            ]
            for (fingerprint, target_key), counts_failure in self._dead.items()
        ]
        markers = []
        snapshots = []
        for (fingerprint, target_key), entry in self.compiled.items():
            encoded_key = encode_target_key(target_key)
            markers.append([intern(fingerprint), encoded_key])
            contract_result = getattr(entry, "contract_result", None)
            if contract_result is not None:
                feasible, snapshot = contract_result
                snapshots.append(
                    [
                        intern(fingerprint),
                        encoded_key,
                        bool(feasible),
                        {
                            name: [interval.lo, interval.hi]
                            for name, interval in snapshot.items()
                        },
                    ]
                )
        # Pending restored snapshots that were never consumed this run
        # are still valid — carry them forward instead of dropping them.
        for (fingerprint, target_key), (feasible, snapshot) in (
            self._restored_contraction.items()
        ):
            snapshots.append(
                [
                    intern(fingerprint),
                    encode_target_key(target_key),
                    bool(feasible),
                    {
                        name: [interval.lo, interval.hi]
                        for name, interval in snapshot.items()
                    },
                ]
            )
        table = ExprTable()
        items = [
            [intern(fingerprint), encode_encoding(encoding, table)]
            for fingerprint, encoding in self.encodings.items()
        ]
        return {
            "fps": fps,
            "verdicts": verdicts,
            "markers": markers,
            "snapshots": snapshots,
            "encodings": {"table": table.nodes, "items": items},
        }

    def restore_folds(self, payload, compiled_model) -> Dict[str, int]:
        """Load :meth:`export_folds` output; returns per-fold counts.

        Decode-then-apply: every artifact is decoded into staging lists
        first, so a malformed payload raises *before* the cache mutates
        and the caller can fall back to a fully cold start.
        """
        from repro.solver.interval import Interval
        from repro.store.codec import (
            CodecError,
            decode_encoding,
            decode_expr_table,
            decode_target_key,
        )

        fps = payload.get("fps", [])
        if not isinstance(fps, list):
            raise CodecError(f"malformed fps table {type(fps).__name__}")

        def fp(obj) -> str:
            index = int(obj)
            if not 0 <= index < len(fps):
                raise CodecError(f"fingerprint index {obj!r} out of range")
            return str(fps[index])

        staged_verdicts = [
            (fp(index), decode_target_key(key), bool(counts_failure))
            for index, key, counts_failure in payload.get("verdicts", [])
        ]
        staged_markers = [
            (fp(index), decode_target_key(key))
            for index, key in payload.get("markers", [])
        ]
        staged_snapshots = [
            (
                fp(index),
                decode_target_key(key),
                bool(feasible),
                {
                    str(name): Interval(float(lo), float(hi))
                    for name, (lo, hi) in snapshot.items()
                },
            )
            for index, key, feasible, snapshot in payload.get("snapshots", [])
        ]
        raw_encodings = payload.get("encodings", {})
        if not isinstance(raw_encodings, dict):
            raise CodecError(
                f"malformed encodings fold {type(raw_encodings).__name__}"
            )
        exprs = decode_expr_table(raw_encodings.get("table", []))
        staged_encodings = [
            (fp(index), decode_encoding(encoded, compiled_model, exprs))
            for index, encoded in raw_encodings.get("items", [])
        ]
        if self.verdicts_enabled:
            for fingerprint, target_key, counts_failure in staged_verdicts:
                self._dead[(fingerprint, target_key)] = counts_failure
        for fingerprint, target_key in staged_markers:
            self.compiled.put((fingerprint, target_key), _FIRST_VISIT)
        for fingerprint, target_key, feasible, snapshot in staged_snapshots:
            self._restored_contraction[(fingerprint, target_key)] = (
                feasible, snapshot,
            )
        for fingerprint, encoding in staged_encodings:
            self.encodings.put(fingerprint, encoding)
        return {
            "verdicts": len(staged_verdicts) if self.verdicts_enabled else 0,
            "markers": len(staged_markers),
            "snapshots": len(staged_snapshots),
            "encodings": len(staged_encodings),
        }

    # -- telemetry -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters in the canonical ``CACHE_COUNTERS`` naming."""
        return {
            "encoding_hits": self.encodings.hits,
            "encoding_misses": self.encodings.misses,
            "encoding_evictions": self.encodings.evictions,
            "compiled_hits": self.compiled.hits,
            "compiled_misses": self.compiled.misses,
            "compiled_evictions": self.compiled.evictions,
            "verdict_hits": self.verdict_hits,
            "verdict_entries": len(self._dead),
        }

    def clear(self) -> None:
        self.encodings.clear()
        self.compiled.clear()
        self._dead.clear()

    def __repr__(self) -> str:
        return (
            f"SolveCache({self.model_key!r}, encodings={self.encodings!r}, "
            f"dead={len(self._dead)})"
        )
