"""Fingerprint-keyed caching for the solve hot path.

Three pieces:

* :func:`~repro.cache.fingerprint.state_fingerprint` — a stable,
  order-independent, ``PYTHONHASHSEED``-proof content digest of a model
  state (the cache key everything else shares);
* :class:`~repro.cache.lru.LRUCache` — a bounded LRU with hit / miss /
  eviction counters;
* :class:`~repro.cache.solve.SolveCache` — the per-model bundle the
  generator uses: an encoding LRU plus a cache of deterministic UNSAT
  verdicts, both keyed on (model, state fingerprint).

See DESIGN.md ("Cache-key soundness") for why UNSAT verdicts are safe to
cache per state while UNKNOWN must stay retryable.
"""

from repro.cache.fingerprint import fingerprint_value, state_fingerprint
from repro.cache.lru import LRUCache
from repro.cache.solve import (
    CACHEABLE_UNSAT_STAGES,
    DEFAULT_ENCODING_CAPACITY,
    SolveCache,
)

__all__ = [
    "CACHEABLE_UNSAT_STAGES",
    "DEFAULT_ENCODING_CAPACITY",
    "LRUCache",
    "SolveCache",
    "fingerprint_value",
    "state_fingerprint",
]
