"""Stable content fingerprints for model-state snapshots.

:func:`state_fingerprint` reduces a state mapping (path -> value) to a
fixed-width hex digest with three guarantees the solve caches rely on:

* **order independence** — entries are folded in sorted-key order, so two
  mappings built in different insertion orders fingerprint identically;
* **equality consistency** — mappings that compare equal under ``==``
  fingerprint identically.  Numerics are canonicalized the way Python
  compares them (``True == 1 == 1.0``), so the fingerprint partitions
  states exactly like :meth:`ModelState.signature` tuple equality does;
* **process stability** — the digest is SHA-256 over a canonical byte
  encoding, never Python's randomized ``hash``, so it is identical across
  processes, interpreters and ``PYTHONHASHSEED`` values.  Fingerprints can
  therefore key on-disk artifacts and cross-process caches safely.

The value encoder is deliberately closed over the types a
:class:`~repro.model.state.ModelState` may contain (scalars, strings,
``None``, tuples — plus lists, byte strings, mappings, sets and numpy
scalars/arrays defensively).  Anything else raises :class:`TypeError`
rather than silently fingerprinting by identity.
"""

from __future__ import annotations

import hashlib
import math
import numbers
from typing import Mapping

__all__ = ["state_fingerprint", "fingerprint_value"]

#: Hex characters kept from the SHA-256 digest (128 bits: collision-safe
#: for any conceivable state population, half the string-storage cost).
_DIGEST_HEX = 32

# One-byte type tags.  Every variable-length payload is preceded by a
# 4-byte big-endian length so distinct structures cannot collide by
# concatenation (e.g. ("ab", "c") vs ("a", "bc")).
_TAG_INT = b"n"
_TAG_FLOAT = b"f"
_TAG_NAN = b"N"
_TAG_INF = b"I"
_TAG_NEG_INF = b"J"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_NONE = b"z"
_TAG_TUPLE = b"t"
_TAG_LIST = b"l"
_TAG_MAP = b"m"
_TAG_SET = b"S"
_TAG_KEY = b"k"


def _update_sized(h, tag: bytes, payload: bytes) -> None:
    h.update(tag)
    h.update(len(payload).to_bytes(4, "big"))
    h.update(payload)


def _update_number(h, value) -> None:
    """Canonical numeric encoding: equal numbers encode identically.

    ``bool``/``int``/integral-``float`` (and their numpy counterparts) all
    collapse onto the exact-integer encoding, mirroring Python's numeric
    equality; non-integral floats use their exact hex representation.
    """
    if isinstance(value, numbers.Integral):
        _update_sized(h, _TAG_INT, repr(int(value)).encode("ascii"))
        return
    value = float(value)
    if math.isnan(value):
        h.update(_TAG_NAN)
    elif math.isinf(value):
        h.update(_TAG_INF if value > 0 else _TAG_NEG_INF)
    elif value.is_integer():
        _update_sized(h, _TAG_INT, repr(int(value)).encode("ascii"))
    else:
        _update_sized(h, _TAG_FLOAT, value.hex().encode("ascii"))


def _update_value(h, value) -> None:
    # Ordered roughly by frequency in real model states.
    if isinstance(value, numbers.Number):  # bool, int, float, numpy scalars
        _update_number(h, value)
    elif isinstance(value, str):
        _update_sized(h, _TAG_STR, value.encode("utf-8"))
    elif value is None:
        h.update(_TAG_NONE)
    elif isinstance(value, tuple):
        h.update(_TAG_TUPLE)
        h.update(len(value).to_bytes(4, "big"))
        for item in value:
            _update_value(h, item)
    elif isinstance(value, list):
        h.update(_TAG_LIST)
        h.update(len(value).to_bytes(4, "big"))
        for item in value:
            _update_value(h, item)
    elif isinstance(value, (bytes, bytearray)):
        _update_sized(h, _TAG_BYTES, bytes(value))
    elif isinstance(value, Mapping):
        h.update(_TAG_MAP)
        h.update(len(value).to_bytes(4, "big"))
        for key in sorted(value):
            _update_sized(h, _TAG_KEY, str(key).encode("utf-8"))
            _update_value(h, value[key])
    elif isinstance(value, (set, frozenset)):
        # Order-independent: fold the sorted element digests.
        digests = sorted(fingerprint_value(item) for item in value)
        h.update(_TAG_SET)
        h.update(len(digests).to_bytes(4, "big"))
        for digest in digests:
            h.update(digest.encode("ascii"))
    elif hasattr(value, "tolist"):  # numpy arrays
        _update_value(h, value.tolist())
    else:
        raise TypeError(
            "cannot fingerprint a state value of type "
            f"{type(value).__name__}: {value!r}"
        )


def fingerprint_value(value) -> str:
    """Digest of one value under the canonical encoding (hex string)."""
    h = hashlib.sha256()
    _update_value(h, value)
    return h.hexdigest()[:_DIGEST_HEX]


def state_fingerprint(values: Mapping[str, object]) -> str:
    """Order-independent content digest of a state mapping (hex string).

    ``values`` is a path -> value mapping (a :class:`ModelState`'s
    ``values``, or any plain dict with the same shape).  Two mappings that
    are ``==``-equal produce the same fingerprint regardless of insertion
    order; any single ``!=`` value change produces a different one.
    """
    h = hashlib.sha256()
    h.update(len(values).to_bytes(4, "big"))
    for key in sorted(values):
        _update_sized(h, _TAG_KEY, key.encode("utf-8"))
        _update_value(h, values[key])
    return h.hexdigest()[:_DIGEST_HEX]
