"""A small bounded LRU cache with traffic counters.

The standard-library alternatives don't fit the solve hot path:
``functools.lru_cache`` keys on call arguments (the cache key here is a
precomputed fingerprint, and the factory closes over non-hashable model
objects) and hides its eviction count.  This one is a thin
``OrderedDict`` wrapper exposing exactly what the telemetry layer wants:
``hits`` / ``misses`` / ``evictions``.

``capacity == 0`` disables the cache entirely — every ``get`` misses and
``put`` is a no-op — which is how ``caches.encoding_size=0`` turns the
encoding cache off without a second code path in the generator.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts
    the oldest entries down to ``capacity``.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data")

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key, default=None):
        """Look up ``key``, counting the hit/miss and refreshing recency."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``; evict oldest entries past capacity."""
        if self.capacity == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key) -> bool:  # no counter traffic
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def items(self) -> Iterator:  # no counter traffic, no recency updates
        """(key, value) pairs, oldest (least recently used) first.

        Iteration order is the eviction order, which is what the
        warm-start store persists: restoring entries via ``put`` in this
        order reproduces the original cache's eviction behaviour.
        """
        return iter(self._data.items())

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
        }

    def __repr__(self) -> str:
        return (
            f"LRUCache({len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
