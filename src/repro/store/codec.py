"""Exact JSON codecs for the warm-start store (:mod:`repro.store`).

Everything the store persists reduces to three value families:

* **state/input values** — the immutable Python scalars and tuples held
  by :class:`~repro.model.state.ModelState` snapshots and test inputs,
* **expression ASTs** — the pure immutable nodes of
  :mod:`repro.expr.ast` (one-step encodings, contraction constraints),
* **solve-target keys** — the ``("branch", id)`` /
  ``("obligation", ConditionObligation)`` tuples keying the verdict and
  compiled-constraint caches.

All three codecs are *exact*: ``decode(encode(x))`` is structurally
equal to ``x`` (``==`` for values, structural ``Expr.__eq__`` for ASTs,
tuple equality for target keys).  Exactness is what lets a warm run
treat restored artifacts as if it had just computed them — floats
round-trip through ``repr`` (the stdlib ``json`` default, which also
admits ``Infinity``/``NaN``), booleans stay ``bool`` (so the generator's
``Const.value is False`` fold check still fires), and tuples are tagged
so :func:`~repro.cache.fingerprint.state_fingerprint` sees the same
type tags after a round trip.

Decoding constructs AST nodes through the *raw* class constructors, not
the folding smart constructors of :mod:`repro.expr.ops` — the stored
tree is already the folded form the cold run built, and re-folding could
only diverge from it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.expr.ast import (
    Binary,
    Const,
    Expr,
    Ite,
    Select,
    Store,
    Unary,
    Var,
)
from repro.expr.types import ArrayType, BOOL, INT, REAL, Type

__all__ = [
    "ExprTable",
    "decode_encoding",
    "decode_expr",
    "decode_expr_table",
    "decode_target_key",
    "decode_type",
    "decode_value",
    "encode_encoding",
    "encode_expr",
    "encode_target_key",
    "encode_type",
    "encode_value",
]


class CodecError(ReproError):
    """A store payload does not decode to a valid artifact."""


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------

_SCALARS = {"bool": BOOL, "int": INT, "real": REAL}


def encode_type(ty: Type):
    if isinstance(ty, ArrayType):
        return ["array", encode_type(ty.elem), ty.length]
    name = getattr(ty, "name", None)
    if name in _SCALARS:
        return name
    raise CodecError(f"unencodable type {ty!r}")


def decode_type(obj) -> Type:
    if isinstance(obj, str):
        try:
            return _SCALARS[obj]
        except KeyError:
            raise CodecError(f"unknown scalar type {obj!r}") from None
    if isinstance(obj, list) and len(obj) == 3 and obj[0] == "array":
        return ArrayType(decode_type(obj[1]), int(obj[2]))
    raise CodecError(f"malformed type payload {obj!r}")


# ---------------------------------------------------------------------------
# state / input values
# ---------------------------------------------------------------------------


def encode_value(value):
    """Encode one state/input value; tuples are tagged to survive JSON."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"t": [encode_value(item) for item in value]}
    raise CodecError(f"unencodable value {value!r} ({type(value).__name__})")


def decode_value(obj):
    if isinstance(obj, dict):
        try:
            items = obj["t"]
        except KeyError:
            raise CodecError(f"malformed value payload {obj!r}") from None
        return tuple(decode_value(item) for item in items)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise CodecError(f"malformed value payload {obj!r}")


def encode_values(values: Dict[str, object]) -> Dict[str, object]:
    return {name: encode_value(value) for name, value in values.items()}


def decode_values(obj: Dict[str, object]) -> Dict[str, object]:
    if not isinstance(obj, dict):
        raise CodecError(f"malformed values payload {obj!r}")
    return {str(name): decode_value(value) for name, value in obj.items()}


# ---------------------------------------------------------------------------
# expression ASTs
# ---------------------------------------------------------------------------


def encode_expr(expr: Expr):
    """Encode an AST bottom-up (explicit stack — trees can be deep)."""
    if isinstance(expr, Const):
        return ["c", encode_value(expr.value), encode_type(expr.ty)]
    if isinstance(expr, Var):
        return ["v", expr.name, encode_type(expr.ty), expr.lo, expr.hi]
    if isinstance(expr, Unary):
        return ["u", expr.op, encode_expr(expr.arg), encode_type(expr.ty)]
    if isinstance(expr, Binary):
        return [
            "b",
            expr.op,
            encode_expr(expr.left),
            encode_expr(expr.right),
            encode_type(expr.ty),
        ]
    if isinstance(expr, Ite):
        return [
            "i",
            encode_expr(expr.cond),
            encode_expr(expr.then),
            encode_expr(expr.orelse),
            encode_type(expr.ty),
        ]
    if isinstance(expr, Select):
        return [
            "sel",
            encode_expr(expr.array),
            encode_expr(expr.index),
            encode_type(expr.ty),
        ]
    if isinstance(expr, Store):
        return [
            "sto",
            encode_expr(expr.array),
            encode_expr(expr.index),
            encode_expr(expr.value),
            encode_type(expr.ty),
        ]
    raise CodecError(f"unencodable expression node {type(expr).__name__}")


def decode_expr(obj) -> Expr:
    if not isinstance(obj, list) or not obj:
        raise CodecError(f"malformed expression payload {obj!r}")
    tag = obj[0]
    try:
        if tag == "c":
            return Const(decode_value(obj[1]), decode_type(obj[2]))
        if tag == "v":
            return Var(str(obj[1]), decode_type(obj[2]), obj[3], obj[4])
        if tag == "u":
            return Unary(obj[1], decode_expr(obj[2]), decode_type(obj[3]))
        if tag == "b":
            return Binary(
                obj[1],
                decode_expr(obj[2]),
                decode_expr(obj[3]),
                decode_type(obj[4]),
            )
        if tag == "i":
            return Ite(
                decode_expr(obj[1]),
                decode_expr(obj[2]),
                decode_expr(obj[3]),
                decode_type(obj[4]),
            )
        if tag == "sel":
            return Select(
                decode_expr(obj[1]), decode_expr(obj[2]), decode_type(obj[3])
            )
        if tag == "sto":
            return Store(
                decode_expr(obj[1]),
                decode_expr(obj[2]),
                decode_expr(obj[3]),
                decode_type(obj[4]),
            )
    except (IndexError, TypeError, ValueError) as err:
        raise CodecError(f"malformed {tag!r} node: {err}") from err
    raise CodecError(f"unknown expression tag {tag!r}")


# ---------------------------------------------------------------------------
# shared expression tables
# ---------------------------------------------------------------------------


class ExprTable:
    """Identity-memoized DAG encoder for a *set* of expression ASTs.

    One-step encodings share subtrees massively — every outcome
    condition of a state substitutes the same state constants into the
    same model template — and :func:`encode_expr` re-serializes each
    shared subtree at every reference.  The table instead assigns each
    distinct *object* one index in a flat, children-before-parents node
    list; references become integers.  On CPUTask this shrinks the
    encodings fold roughly 20x and makes encode/decode near-linear in
    the number of unique nodes.

    Identity (not structural) memoization is sound and cheap here: the
    table pins every encoded node alive (``_keep``), so an ``id`` can
    never be recycled while the table exists.  Two structurally equal
    but distinct objects simply encode twice — a size, never a
    correctness, concern.  Digests must NOT use tables for exactly that
    reason: sharing structure varies run to run, content does not.
    """

    def __init__(self) -> None:
        self.nodes: List[list] = []
        self._index: Dict[int, int] = {}
        self._keep: List[Expr] = []

    def add(self, expr: Expr) -> int:
        """Intern ``expr`` (children first) and return its node index."""
        index = self._index.get(id(expr))
        if index is not None:
            return index
        if isinstance(expr, Const):
            node = ["c", encode_value(expr.value), encode_type(expr.ty)]
        elif isinstance(expr, Var):
            node = ["v", expr.name, encode_type(expr.ty), expr.lo, expr.hi]
        elif isinstance(expr, Unary):
            node = ["u", expr.op, self.add(expr.arg), encode_type(expr.ty)]
        elif isinstance(expr, Binary):
            node = [
                "b",
                expr.op,
                self.add(expr.left),
                self.add(expr.right),
                encode_type(expr.ty),
            ]
        elif isinstance(expr, Ite):
            node = [
                "i",
                self.add(expr.cond),
                self.add(expr.then),
                self.add(expr.orelse),
                encode_type(expr.ty),
            ]
        elif isinstance(expr, Select):
            node = [
                "sel",
                self.add(expr.array),
                self.add(expr.index),
                encode_type(expr.ty),
            ]
        elif isinstance(expr, Store):
            node = [
                "sto",
                self.add(expr.array),
                self.add(expr.index),
                self.add(expr.value),
                encode_type(expr.ty),
            ]
        else:
            raise CodecError(
                f"unencodable expression node {type(expr).__name__}"
            )
        self.nodes.append(node)
        index = len(self.nodes) - 1
        self._index[id(expr)] = index
        self._keep.append(expr)
        return index


def decode_expr_table(nodes) -> List[Expr]:
    """Decode an :class:`ExprTable` node list back into live ASTs.

    Returns one ``Expr`` per node, in table order; consumers look their
    expressions up by index.  Node references decode to *shared* Python
    objects, reproducing (at least) the sharing the encoder saw — the
    ASTs are immutable, so sharing is invisible to every consumer.
    """
    if not isinstance(nodes, list):
        raise CodecError(f"malformed expression table {nodes!r}")
    exprs: List[Expr] = []

    def child(obj) -> Expr:
        index = int(obj)
        if not 0 <= index < len(exprs):
            raise CodecError(f"expression table index {obj!r} out of range")
        return exprs[index]

    for obj in nodes:
        if not isinstance(obj, list) or not obj:
            raise CodecError(f"malformed expression table node {obj!r}")
        tag = obj[0]
        try:
            if tag == "c":
                expr = Const(decode_value(obj[1]), decode_type(obj[2]))
            elif tag == "v":
                expr = Var(str(obj[1]), decode_type(obj[2]), obj[3], obj[4])
            elif tag == "u":
                expr = Unary(obj[1], child(obj[2]), decode_type(obj[3]))
            elif tag == "b":
                expr = Binary(
                    obj[1], child(obj[2]), child(obj[3]), decode_type(obj[4])
                )
            elif tag == "i":
                expr = Ite(
                    child(obj[1]),
                    child(obj[2]),
                    child(obj[3]),
                    decode_type(obj[4]),
                )
            elif tag == "sel":
                expr = Select(child(obj[1]), child(obj[2]), decode_type(obj[3]))
            elif tag == "sto":
                expr = Store(
                    child(obj[1]),
                    child(obj[2]),
                    child(obj[3]),
                    decode_type(obj[4]),
                )
            else:
                raise CodecError(f"unknown expression tag {tag!r}")
        except (IndexError, TypeError, ValueError) as err:
            raise CodecError(f"malformed {tag!r} node: {err}") from err
        exprs.append(expr)
    return exprs


# ---------------------------------------------------------------------------
# solve-target keys
# ---------------------------------------------------------------------------


def encode_target_key(target_key) -> List:
    kind, payload = target_key
    if kind == "branch":
        return ["b", int(payload)]
    if kind == "obligation":
        return [
            "o",
            int(payload.point_id),
            int(payload.atom),
            bool(payload.polarity),
            bool(payload.determining),
        ]
    raise CodecError(f"unencodable target key {target_key!r}")


def decode_target_key(obj) -> Tuple[str, object]:
    from repro.coverage.collector import ConditionObligation

    if not isinstance(obj, list) or not obj:
        raise CodecError(f"malformed target key {obj!r}")
    if obj[0] == "b" and len(obj) == 2:
        return ("branch", int(obj[1]))
    if obj[0] == "o" and len(obj) == 5:
        return (
            "obligation",
            ConditionObligation(
                int(obj[1]), int(obj[2]), bool(obj[3]), bool(obj[4])
            ),
        )
    raise CodecError(f"malformed target key {obj!r}")


# ---------------------------------------------------------------------------
# one-step encodings
# ---------------------------------------------------------------------------


def encode_encoding(encoding, table: ExprTable) -> Dict[str, object]:
    """Serialize the STCG-visible face of a one-step encoding.

    The generator consumes exactly four things from an encoding after
    construction: ``variables`` (rebuilt from the compiled model on
    decode), ``compiled`` (re-attached on decode), the per-decision
    outcome conditions, and the per-point condition atoms.  The
    ``outputs``/next-state expressions exist only as construction
    byproducts, so they are deliberately not persisted — a decoded
    encoding answers ``branch_condition``/``path_constraint``/
    ``obligation_constraint`` identically to the cold-built original.

    Every expression goes through the shared ``table`` (encodings of
    neighbouring states share most of their subtrees), so the payload
    holds integer node references, not trees.
    """
    return {
        "state": encode_values(encoding.state.values),
        "outcomes": {
            str(decision_id): [table.add(cond) for cond in conditions]
            for decision_id, conditions in encoding._outcome_conditions.items()
        },
        "atoms": {
            str(point_id): [
                [table.add(atom) for atom in atoms],
                table.add(context),
            ]
            for point_id, (atoms, context) in encoding._condition_atoms.items()
        },
    }


def decode_encoding(payload, compiled, exprs: List[Expr]):
    """Rebuild a :class:`~repro.solver.encoder.OneStepEncoding`.

    ``exprs`` is the decoded expression table
    (:func:`decode_expr_table`) the payload's node references index
    into.  The restored object is observationally identical to a cold
    build for every method the generator calls: conditions/atoms are
    structurally equal ASTs, ``variables`` comes from the same
    ``compiled.input_variables()`` call, and ``compiled`` is the live
    model (so ``obligation_constraint`` resolves registry points).
    """
    from repro.model.state import ModelState
    from repro.solver.encoder import OneStepEncoding

    if not isinstance(payload, dict):
        raise CodecError(f"malformed encoding payload {payload!r}")

    def expr(obj) -> Expr:
        index = int(obj)
        if not 0 <= index < len(exprs):
            raise CodecError(f"encoding node index {obj!r} out of range")
        return exprs[index]

    try:
        encoding = OneStepEncoding.__new__(OneStepEncoding)
        encoding.compiled = compiled
        encoding.state = ModelState(decode_values(payload["state"]))
        encoding.variables = compiled.input_variables()
        encoding.outputs = {}
        encoding._outcome_conditions = {
            int(decision_id): [expr(cond) for cond in conditions]
            for decision_id, conditions in payload["outcomes"].items()
        }
        encoding._condition_atoms = {
            int(point_id): (
                [expr(atom) for atom in pair[0]],
                expr(pair[1]),
            )
            for point_id, pair in payload["atoms"].items()
        }
        encoding._next_state = {}
    except (KeyError, TypeError, ValueError, AttributeError) as err:
        raise CodecError(f"malformed encoding payload: {err}") from err
    return encoding
