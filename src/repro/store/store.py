"""The content-addressed on-disk warm-start store.

One :class:`WarmStore` binds one (compiled model, generator config) pair
to one JSON document on disk.  The document is addressed by a SHA-256
key over

* the **model digest** — the model's structural surface (inports with
  types and bounds, state table with initial values, every registry
  decision/branch/condition point) *plus* the symbolic one-step
  semantics from the initial state, so an edit to a guard constant or a
  threshold invalidates the key even when the structure is unchanged;
* the **config-relevant digest** — exactly the :class:`StcgConfig`
  fields that change what derived state means (kernel switches, cache
  bounds/switches, ``skip_constant_false``, ``prove_dead_branches``).
  Budgets and seeds are deliberately excluded: a cached UNSAT verdict is
  a proof, valid under any budget, and the store key must let a rerun of
  the same cell (same seed, per-cell scope) find yesterday's folds;
* the **store schema version** — bumping :data:`STORE_SCHEMA` retires
  every existing document at once;
* a **scope** string — the per-cell discriminator (tool + seed), so
  matrix workers writing concurrently never contend on one file.

Writes go through a tmp file + ``os.replace`` so readers only ever see
a complete document.  Loads re-derive both digests from the *live*
model/config and reject on any mismatch, wrong schema, or parse error —
the caller then simply runs cold (``store_rejected``); a store problem
must never take a generation run down.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

from repro.store.codec import encode_expr, encode_type, encode_value

__all__ = ["STORE_SCHEMA", "WarmStore", "config_digest", "model_digest"]

#: Schema tag of the store document; bump to invalidate all stored state.
STORE_SCHEMA = "repro.store/1"


def _sha(blob: str) -> str:
    return hashlib.sha256(blob.encode()).hexdigest()


def model_digest(compiled) -> str:
    """Digest of everything solve/tree artifacts depend on in the model.

    Structure alone is not enough: two models can share every inport,
    state element and registry entry while differing in a block constant
    that changes the one-step constraints.  The digest therefore also
    folds in the symbolic encoding of one step from the initial state
    (outcome conditions and condition atoms), which is where any
    semantic edit to the step function surfaces.
    """
    from repro.model.state import ModelState
    from repro.solver.encoder import OneStepEncoding

    registry = compiled.registry
    encoding = OneStepEncoding(compiled, ModelState(compiled.initial_state()))
    description = {
        "name": compiled.name,
        "n_blocks": compiled.n_blocks,
        "inports": [
            [spec.name, encode_type(spec.ty), spec.lo, spec.hi]
            for spec in compiled.inports
        ],
        "state": sorted(
            [path, encode_type(element.ty), encode_value(element.init),
             element.category]
            for path, element in compiled.state_elements.items()
        ),
        "decisions": [
            [d.decision_id, d.path, d.kind.value, d.n_outcomes]
            for d in registry.decisions
        ],
        "branches": [branch.label for branch in registry.branches],
        "points": [
            [p.point_id, p.path, p.n_atoms, encode_expr(p.structure)]
            for p in registry.condition_points
        ],
        "step": {
            "outcomes": {
                str(decision_id): [encode_expr(cond) for cond in conditions]
                for decision_id, conditions in sorted(
                    encoding._outcome_conditions.items()
                )
            },
            "atoms": {
                str(point_id): [
                    [encode_expr(atom) for atom in atoms],
                    encode_expr(context),
                ]
                for point_id, (atoms, context) in sorted(
                    encoding._condition_atoms.items()
                )
            },
        },
    }
    return _sha(json.dumps(description, sort_keys=True))


def config_digest(config) -> str:
    """Digest of the config fields that change what cached folds *mean*.

    ``skip_constant_false`` is included because it decides whether a
    const-false refutation (``counts_failure=False``) is ever recorded —
    replaying one into a run that would have solved the pair instead
    would desynchronize the failure-backoff bookkeeping.  Budgets, seeds
    and observation flags (trace/metrics/provenance) are excluded: none
    of them changes the validity of a verdict, a snapshot, or an
    encoding.
    """
    description = {
        "kernels": [bool(config.kernels.sim), bool(config.kernels.solver)],
        "caches": [
            int(config.caches.encoding_size),
            int(config.caches.compiled_size),
            bool(config.caches.verdicts),
            bool(config.caches.tree_dedup),
        ],
        "skip_constant_false": bool(config.skip_constant_false),
        "prove_dead_branches": bool(config.prove_dead_branches),
    }
    return _sha(json.dumps(description, sort_keys=True))


class WarmStore:
    """One model/config-keyed warm-start document in a store directory."""

    def __init__(self, store_config, compiled, stcg_config, scope: str = ""):
        self.directory = store_config.path
        self.model_name = compiled.name
        self.model_digest = model_digest(compiled)
        self.config_digest = config_digest(stcg_config)
        #: Per-cell discriminator (tool + seed); mutable so the fuzz
        #: generators can re-scope the host's store before first use.
        self.scope = scope

    # -- addressing ----------------------------------------------------

    @property
    def key(self) -> str:
        return _sha(
            f"{self.model_digest}|{self.config_digest}|"
            f"{STORE_SCHEMA}|{self.scope}"
        )[:16]

    @property
    def path(self) -> str:
        return os.path.join(
            self.directory, f"{self.model_name}-{self.key}.json"
        )

    # -- IO ------------------------------------------------------------

    def load(self) -> Tuple[Optional[Dict[str, object]], str]:
        """Read and validate the document: ``(payload, status)``.

        ``status`` is ``"hit"`` (payload valid), ``"miss"`` (no file), or
        ``"rejected"`` (unreadable, wrong schema, or digest mismatch).
        Never raises.
        """
        try:
            with open(self.path, "r") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None, "miss"
        except Exception:
            return None, "rejected"
        try:
            if document.get("schema") != STORE_SCHEMA:
                return None, "rejected"
            if document.get("model_digest") != self.model_digest:
                return None, "rejected"
            if document.get("config_digest") != self.config_digest:
                return None, "rejected"
            payload = document["payload"]
            if not isinstance(payload, dict):
                return None, "rejected"
        except Exception:
            return None, "rejected"
        return payload, "hit"

    def save(self, payload: Dict[str, object]) -> bool:
        """Atomically write the document; False (never raise) on failure."""
        document = {
            "schema": STORE_SCHEMA,
            "model": self.model_name,
            "model_digest": self.model_digest,
            "config_digest": self.config_digest,
            "scope": self.scope,
            "payload": payload,
        }
        tmp_path = f"{self.path}.tmp.{os.getpid()}"
        try:
            os.makedirs(self.directory, exist_ok=True)
            # dumps-then-write: one buffer, one syscall-ish write — the
            # streaming json.dump is several times slower on big folds.
            blob = json.dumps(document)
            with open(tmp_path, "w") as handle:
                handle.write(blob)
            os.replace(tmp_path, self.path)
        except Exception:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        return True

    def __repr__(self) -> str:
        return f"WarmStore({self.path!r})"
