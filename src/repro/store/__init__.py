"""Persistent cross-run warm-start store (ROADMAP item 2, first half).

The store persists a generation run's *derived* state — the state tree,
the solve-cache folds (UNSAT verdicts, compiled-bundle first-visit
markers, contraction snapshots, one-step encodings) and the fuzz corpus
— keyed by ``(model digest, config-relevant digest, schema version)``,
so a later run on the same model warm-starts instead of re-deriving
everything from scratch.  See DESIGN.md, "Store integrity and
invalidation", for the key-derivation and bit-identity arguments.
"""

from repro.store.codec import CodecError
from repro.store.store import (
    STORE_SCHEMA,
    WarmStore,
    config_digest,
    model_digest,
)

__all__ = [
    "CodecError",
    "STORE_SCHEMA",
    "WarmStore",
    "config_digest",
    "model_digest",
]
