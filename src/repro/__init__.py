"""STCG: state-aware test case generation for Simulink-like models.

A from-scratch Python reproduction of *STCG: State-Aware Test Case
Generation for Simulink Models* (DAC 2023), including:

* a Simulink-like block-diagram simulator with Stateflow-like charts
  (:mod:`repro.model`, :mod:`repro.stateflow`),
* Decision / Condition / masking-MCDC coverage (:mod:`repro.coverage`),
* a constraint-solving stack — interval contraction plus AVM search —
  over a typed expression IR (:mod:`repro.expr`, :mod:`repro.solver`),
* the STCG generator itself (:mod:`repro.core`),
* SLDV-like and SimCoTest-like baselines (:mod:`repro.baselines`),
* re-creations of the paper's eight benchmark models
  (:mod:`repro.models`) and the experiment harness
  (:mod:`repro.harness`).

Quick start::

    from repro.models import get_benchmark
    from repro.core import StcgGenerator, StcgConfig

    model = get_benchmark("CPUTask").build()
    result = StcgGenerator(model, StcgConfig(budget_s=10)).run()
    print(result.summary)
"""

from repro.core import StcgConfig, StcgGenerator, generate
from repro.coverage import CoverageCollector
from repro.model import ModelBuilder, Simulator

__version__ = "1.0.0"

__all__ = [
    "CoverageCollector",
    "ModelBuilder",
    "Simulator",
    "StcgConfig",
    "StcgGenerator",
    "__version__",
    "generate",
]
