"""STCG: state-aware test case generation for Simulink-like models.

A from-scratch Python reproduction of *STCG: State-Aware Test Case
Generation for Simulink Models* (DAC 2023), including:

* a Simulink-like block-diagram simulator with Stateflow-like charts
  (:mod:`repro.model`, :mod:`repro.stateflow`),
* Decision / Condition / masking-MCDC coverage (:mod:`repro.coverage`),
* a constraint-solving stack — interval contraction plus AVM search —
  over a typed expression IR (:mod:`repro.expr`, :mod:`repro.solver`),
* the STCG generator itself (:mod:`repro.core`),
* SLDV-like and SimCoTest-like baselines (:mod:`repro.baselines`),
* re-creations of the paper's eight benchmark models
  (:mod:`repro.models`) and the experiment harness
  (:mod:`repro.harness`).

* a parallel experiment executor with per-cell timeouts and crash
  isolation (:mod:`repro.exec`) and structured JSONL run telemetry
  (:mod:`repro.telemetry`), fronted by the stable facade
  :mod:`repro.api`.

Quick start::

    from repro import api

    result = api.generate("CPUTask", tool="STCG", budget_s=10.0, seed=0)
    print(result.summary)

    experiment = api.run_experiment(
        models=["CPUTask", "TCP"], budget_s=10.0, repetitions=3,
        workers=4, events_out="run.jsonl",
    )
    print(api.table3(experiment.outcomes))
"""

from repro.core import StcgConfig, StcgGenerator, generate
from repro.coverage import CoverageCollector
from repro.model import ModelBuilder, Simulator

__version__ = "1.1.0"

__all__ = [
    "CoverageCollector",
    "ModelBuilder",
    "Simulator",
    "StcgConfig",
    "StcgGenerator",
    "__version__",
    "generate",
]
