"""Masking MCDC analysis over recorded condition vectors.

For each condition point we record the set of observed condition vectors.
A condition ``c_i`` is *masking-MCDC covered* when two observed vectors
exist such that

* ``c_i`` takes different values in the two vectors,
* the decision outcome differs between them, and
* in **both** vectors ``c_i`` *determines* the outcome — flipping ``c_i``
  alone (holding the other recorded conditions fixed) flips the outcome.

The "determines" check is the boolean derivative of the decision structure
with respect to ``c_i``, evaluated at the recorded vector; it implements the
masking requirement that other differing conditions must not influence the
outcome change.  This matches how Simulink's coverage tool assesses MCDC
for Logic blocks and Stateflow transition guards.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.expr.evaluator import evaluate
from repro.coverage.registry import ConditionPoint

Vector = Tuple[bool, ...]


def outcome_of(point: ConditionPoint, vector: Vector) -> bool:
    """Evaluate the decision structure at a condition vector."""
    env = {f"c{i}": value for i, value in enumerate(vector)}
    return bool(evaluate(point.structure, env))


def determines(point: ConditionPoint, vector: Vector, index: int) -> bool:
    """Boolean derivative: does flipping condition ``index`` flip the outcome?"""
    flipped = list(vector)
    flipped[index] = not flipped[index]
    return outcome_of(point, vector) != outcome_of(point, tuple(flipped))


def mcdc_covered_atoms(
    point: ConditionPoint, vectors: Iterable[Vector]
) -> Set[int]:
    """Indices of atoms that achieve masking MCDC over the observed vectors."""
    observed: List[Vector] = sorted(set(vectors))
    if not observed:
        return set()
    outcomes: Dict[Vector, bool] = {v: outcome_of(point, v) for v in observed}
    covered: Set[int] = set()
    for index in range(point.n_atoms):
        # Partition observed vectors where this condition determines the
        # outcome, by the condition's value.
        true_side = False
        false_side = False
        for vector in observed:
            if not determines(point, vector, index):
                continue
            if vector[index]:
                true_side = True
            else:
                false_side = True
            if true_side and false_side:
                break
        if not (true_side and false_side):
            continue
        # A determining pair with differing condition values necessarily has
        # differing outcomes for points where the derivative holds on both
        # sides; require the outcome difference explicitly for strictness.
        if _has_flipping_pair(observed, outcomes, point, index):
            covered.add(index)
    return covered


def _has_flipping_pair(
    observed: List[Vector],
    outcomes: Dict[Vector, bool],
    point: ConditionPoint,
    index: int,
) -> bool:
    positives = [
        v for v in observed if v[index] and determines(point, v, index)
    ]
    negatives = [
        v for v in observed if not v[index] and determines(point, v, index)
    ]
    for vp in positives:
        for vn in negatives:
            if outcomes[vp] != outcomes[vn]:
                return True
    return False


def independence_pairs(
    point: ConditionPoint, vectors: Iterable[Vector]
) -> Dict[int, Tuple[Vector, Vector]]:
    """For covered atoms, one witnessing (true-side, false-side) pair each."""
    observed = sorted(set(vectors))
    outcomes = {v: outcome_of(point, v) for v in observed}
    pairs: Dict[int, Tuple[Vector, Vector]] = {}
    for index in range(point.n_atoms):
        positives = [v for v in observed if v[index] and determines(point, v, index)]
        negatives = [
            v for v in observed if not v[index] and determines(point, v, index)
        ]
        for vp in positives:
            found = False
            for vn in negatives:
                if outcomes[vp] != outcomes[vn]:
                    pairs[index] = (vp, vn)
                    found = True
                    break
            if found:
                break
    return pairs
