"""Human-readable coverage reports (per-decision detail, gap listing).

The harness tables aggregate to three percentages; this module renders the
drill-down a test engineer actually reads: which outcomes of which decision
are missing, which condition atoms lack an MCDC pair, and why (dead logic
is called out when a branch is annotated unreachable).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.coverage.collector import CoverageCollector
from repro.coverage.mcdc import mcdc_covered_atoms


def decision_report(collector: CoverageCollector) -> str:
    """Per-decision outcome table: ``[x]`` covered, ``[ ]`` missing."""
    registry = collector.registry
    lines: List[str] = []
    for decision in registry.decisions:
        outcomes = []
        for branch in decision.branches:
            mark = "x" if collector.is_branch_covered(branch) else " "
            outcomes.append(
                f"[{mark}] {decision.outcome_labels[branch.outcome]}"
            )
        lines.append(f"{decision.path}  ({decision.kind.value})")
        lines.append("    " + "  ".join(outcomes))
    return "\n".join(lines)


def uncovered_report(
    collector: CoverageCollector, known_dead: Iterable[str] = ()
) -> str:
    """Listing of uncovered branches, annotating known-dead logic."""
    dead: Set[str] = set(known_dead)
    lines: List[str] = []
    for branch in collector.uncovered_branches():
        note = "  (documented dead logic)" if branch.label in dead else ""
        lines.append(f"- {branch.label} depth={branch.depth}{note}")
    if not lines:
        return "all branches covered"
    return "\n".join(lines)


def mcdc_report(collector: CoverageCollector) -> str:
    """Per-condition-point MCDC detail: which atoms have independence pairs."""
    registry = collector.registry
    lines: List[str] = []
    for point in registry.condition_points:
        vectors = collector.vectors_for(point)
        covered = mcdc_covered_atoms(point, vectors) if vectors else set()
        atoms = []
        for index, label in enumerate(point.atom_labels):
            mark = "x" if index in covered else " "
            atoms.append(f"[{mark}] {label}")
        lines.append(
            f"{point.path}  ({len(covered)}/{point.n_atoms} atoms, "
            f"{len(vectors)} vectors seen)"
        )
        lines.append("    " + "  ".join(atoms))
    if not lines:
        return "model has no condition points"
    return "\n".join(lines)


def full_report(
    collector: CoverageCollector, known_dead: Iterable[str] = ()
) -> str:
    """The complete report: summary + gaps + decision + MCDC sections."""
    summary = collector.summary()
    sections = [
        "== summary ==",
        (
            f"decision  {summary.decision:7.1%}  "
            f"({summary.covered_branches}/{summary.total_branches} branches)"
        ),
        f"condition {collector.condition_coverage():7.1%}",
        f"mcdc      {collector.mcdc_coverage():7.1%}",
        "",
        "== uncovered branches ==",
        uncovered_report(collector, known_dead),
        "",
        "== decisions ==",
        decision_report(collector),
        "",
        "== mcdc ==",
        mcdc_report(collector),
    ]
    return "\n".join(sections)
