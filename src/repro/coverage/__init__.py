"""Decision / Condition / MCDC coverage instrumentation.

* :class:`CoverageRegistry` — instrumentation points, populated at compile
  time (decisions with branches per Definition 1; condition points for logic
  blocks and transition guards).
* :class:`CoverageCollector` — accumulates concrete-execution events and
  computes the three metrics the paper reports.
* :mod:`repro.coverage.mcdc` — masking-MCDC analysis over recorded vectors.
"""

from repro.coverage.collector import CoverageCollector, CoverageSummary
from repro.coverage.mcdc import determines, independence_pairs, mcdc_covered_atoms, outcome_of
from repro.coverage.registry import (
    Branch,
    ConditionPoint,
    CoverageRegistry,
    Decision,
    DecisionKind,
)

__all__ = [
    "Branch",
    "ConditionPoint",
    "CoverageCollector",
    "CoverageRegistry",
    "CoverageSummary",
    "Decision",
    "DecisionKind",
    "determines",
    "independence_pairs",
    "mcdc_covered_atoms",
    "outcome_of",
]
