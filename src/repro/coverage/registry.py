"""Registry of instrumentation points: decisions, branches, condition points.

Mirrors the paper's Definition 1: a *model branch* is one outcome of a block
decision, with a parent branch (the enabling outcome of the enclosing
conditional context) and a depth (number of ancestor branches).  The registry
is populated at model-compile time and is immutable afterwards; both the
coverage collector (concrete runs) and the symbolic encoder (one-step
solving) refer to its ids.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import CoverageError
from repro.expr.ast import Expr


class DecisionKind(enum.Enum):
    """What sort of block produced a decision."""

    SWITCH = "switch"
    MULTIPORT = "multiport_switch"
    IF = "if"
    SWITCH_CASE = "switch_case"
    TRANSITION = "transition"


@dataclass
class Decision:
    """A block decision with a fixed set of mutually exclusive outcomes."""

    decision_id: int
    path: str
    kind: DecisionKind
    outcome_labels: Tuple[str, ...]
    branches: List["Branch"] = field(default_factory=list)

    @property
    def n_outcomes(self) -> int:
        return len(self.outcome_labels)

    def __repr__(self) -> str:
        return f"Decision({self.path}, {self.kind.value}, {self.n_outcomes} outcomes)"


@dataclass
class Branch:
    """One outcome of a decision (the paper's model branch ⟨C, F, D⟩).

    ``C`` is not stored statically: the branch condition is produced per
    model state by the symbolic encoder.  ``parent`` is ``F``; ``depth``
    is ``D``.
    """

    branch_id: int
    decision: Decision
    outcome: int
    parent: Optional["Branch"]
    depth: int

    @property
    def label(self) -> str:
        return f"{self.decision.path}:{self.decision.outcome_labels[self.outcome]}"

    def ancestors(self) -> List["Branch"]:
        """Parent chain from nearest to root (excludes self)."""
        chain: List[Branch] = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def __repr__(self) -> str:
        return f"Branch#{self.branch_id}({self.label}, depth={self.depth})"


@dataclass
class ConditionPoint:
    """An MCDC-capable expression: a logic block or a transition guard.

    ``structure`` is a boolean expression over placeholder variables named
    ``c0 .. c{n-1}``; ``atom_labels`` documents what each placeholder is.
    Condition and MCDC coverage are computed from recorded placeholder
    vectors against this structure.
    """

    point_id: int
    path: str
    atom_labels: Tuple[str, ...]
    structure: Expr

    @property
    def n_atoms(self) -> int:
        return len(self.atom_labels)

    def __repr__(self) -> str:
        return f"ConditionPoint({self.path}, {self.n_atoms} atoms)"


class CoverageRegistry:
    """All instrumentation points of one compiled model."""

    def __init__(self):
        self._decisions: List[Decision] = []
        self._branches: List[Branch] = []
        self._points: List[ConditionPoint] = []
        self._frozen = False

    # -- registration (compile time) ----------------------------------------

    def register_decision(
        self,
        path: str,
        kind: DecisionKind,
        outcome_labels: Sequence[str],
        parent: Optional[Branch] = None,
        extra_depth: int = 0,
    ) -> Decision:
        """Add a decision; creates one :class:`Branch` per outcome.

        ``parent`` is the enabling branch of the enclosing conditional
        context (or None at top level).  ``extra_depth`` adds hierarchy that
        contributes depth without a branch of its own (chart state nesting).
        """
        self._check_mutable()
        if len(outcome_labels) < 2:
            raise CoverageError(f"decision at {path!r} needs >= 2 outcomes")
        decision = Decision(
            decision_id=len(self._decisions),
            path=path,
            kind=kind,
            outcome_labels=tuple(outcome_labels),
        )
        self._decisions.append(decision)
        depth = (parent.depth + 1 if parent is not None else 0) + extra_depth
        for outcome in range(decision.n_outcomes):
            branch = Branch(
                branch_id=len(self._branches),
                decision=decision,
                outcome=outcome,
                parent=parent,
                depth=depth,
            )
            decision.branches.append(branch)
            self._branches.append(branch)
        return decision

    def register_condition_point(
        self, path: str, atom_labels: Sequence[str], structure: Expr
    ) -> ConditionPoint:
        """Add a logic-block / transition-guard condition point."""
        self._check_mutable()
        if not atom_labels:
            raise CoverageError(f"condition point at {path!r} needs >= 1 atom")
        point = ConditionPoint(
            point_id=len(self._points),
            path=path,
            atom_labels=tuple(atom_labels),
            structure=structure,
        )
        self._points.append(point)
        return point

    def freeze(self) -> None:
        self._frozen = True

    def _check_mutable(self) -> None:
        if self._frozen:
            raise CoverageError("registry is frozen; model already compiled")

    # -- queries ---------------------------------------------------------------

    @property
    def decisions(self) -> Tuple[Decision, ...]:
        return tuple(self._decisions)

    @property
    def branches(self) -> Tuple[Branch, ...]:
        return tuple(self._branches)

    @property
    def condition_points(self) -> Tuple[ConditionPoint, ...]:
        return tuple(self._points)

    @property
    def n_branches(self) -> int:
        return len(self._branches)

    @property
    def n_condition_atoms(self) -> int:
        return sum(p.n_atoms for p in self._points)

    def decision(self, decision_id: int) -> Decision:
        return self._decisions[decision_id]

    def branch(self, branch_id: int) -> Branch:
        return self._branches[branch_id]

    def condition_point(self, point_id: int) -> ConditionPoint:
        return self._points[point_id]

    def branches_by_depth(self) -> List[Branch]:
        """Branches sorted ascending by depth (the paper's solving order)."""
        return sorted(self._branches, key=lambda b: (b.depth, b.branch_id))
