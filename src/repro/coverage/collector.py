"""Coverage collection during concrete simulation.

Besides the three metrics, the collector tracks *obligations* — the unit
targets STCG solves for:

* a **branch** obligation per decision outcome (Definition 1),
* a **value** obligation per condition atom and polarity (condition
  coverage needs each atom observed both true and false),
* an **mcdc** obligation per condition atom and polarity: the atom must be
  observed at that polarity *while determining the decision outcome*
  (boolean-derivative check), which is what a masking-MCDC independence
  pair is made of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.coverage.mcdc import determines, mcdc_covered_atoms
from repro.coverage.registry import Branch, ConditionPoint, CoverageRegistry

Vector = Tuple[bool, ...]


@dataclass(frozen=True)
class ConditionObligation:
    """One atom-level target: observe ``atom == polarity`` at this point,
    optionally while the atom determines the outcome (``determining``)."""

    point_id: int
    atom: int
    polarity: bool
    determining: bool

    def __repr__(self) -> str:
        kind = "mcdc" if self.determining else "value"
        return (
            f"Obligation({kind} p{self.point_id}.c{self.atom}="
            f"{'T' if self.polarity else 'F'})"
        )


class CoverageCollector:
    """Accumulates decision outcomes and condition vectors across runs.

    One collector typically lives for a whole test-generation campaign; the
    simulator reports events into it every step.  ``new_coverage`` style
    queries let the generator detect progress (Algorithm 2's ``newCover``).
    """

    def __init__(self, registry: CoverageRegistry):
        self._registry = registry
        self._covered_branches: Set[int] = set()
        self._vectors: Dict[int, Set[Vector]] = {}
        self._atom_values: Dict[Tuple[int, int], Set[bool]] = {}
        self._det_seen: Set[Tuple[int, int, bool]] = set()
        self._step_events = 0

    # -- event intake ---------------------------------------------------------

    def on_branch(self, branch: Branch) -> bool:
        """Record a taken branch; returns True when it is newly covered."""
        self._step_events += 1
        if branch.branch_id in self._covered_branches:
            return False
        self._covered_branches.add(branch.branch_id)
        return True

    def on_condition_vector(
        self, point: ConditionPoint, vector: Vector
    ) -> List[ConditionObligation]:
        """Record the evaluated condition atoms of a logic block / guard.

        Returns the condition obligations newly satisfied by this vector
        (empty when the vector was seen before).
        """
        self._step_events += 1
        vector = tuple(bool(v) for v in vector)
        seen = self._vectors.setdefault(point.point_id, set())
        newly: List[ConditionObligation] = []
        if vector in seen:
            return newly
        seen.add(vector)
        for index, value in enumerate(vector):
            values = self._atom_values.setdefault((point.point_id, index), set())
            if value not in values:
                values.add(value)
                newly.append(
                    ConditionObligation(point.point_id, index, value, False)
                )
            if determines(point, vector, index):
                key = (point.point_id, index, value)
                if key not in self._det_seen:
                    self._det_seen.add(key)
                    newly.append(
                        ConditionObligation(point.point_id, index, value, True)
                    )
        return newly

    # -- queries ---------------------------------------------------------------

    @property
    def registry(self) -> CoverageRegistry:
        return self._registry

    @property
    def covered_branch_ids(self) -> Set[int]:
        return set(self._covered_branches)

    def is_branch_covered(self, branch: Branch) -> bool:
        return branch.branch_id in self._covered_branches

    def uncovered_branches(self) -> List[Branch]:
        return [
            b
            for b in self._registry.branches
            if b.branch_id not in self._covered_branches
        ]

    def vectors_for(self, point: ConditionPoint) -> Set[Vector]:
        return set(self._vectors.get(point.point_id, set()))

    # -- obligations --------------------------------------------------------------

    def all_condition_obligations(self) -> List[ConditionObligation]:
        """Every value/mcdc obligation of the model, value ones first."""
        obligations: List[ConditionObligation] = []
        for determining in (False, True):
            for point in self._registry.condition_points:
                for atom in range(point.n_atoms):
                    for polarity in (True, False):
                        obligations.append(
                            ConditionObligation(
                                point.point_id, atom, polarity, determining
                            )
                        )
        return obligations

    def is_obligation_satisfied(self, obligation: ConditionObligation) -> bool:
        if obligation.determining:
            return (
                obligation.point_id,
                obligation.atom,
                obligation.polarity,
            ) in self._det_seen
        values = self._atom_values.get((obligation.point_id, obligation.atom))
        return values is not None and obligation.polarity in values

    def unsatisfied_condition_obligations(self) -> List[ConditionObligation]:
        return [
            o for o in self.all_condition_obligations()
            if not self.is_obligation_satisfied(o)
        ]

    # -- metrics ---------------------------------------------------------------

    def decision_coverage(self) -> float:
        """Fraction of decision outcomes (branches) executed."""
        total = self._registry.n_branches
        if total == 0:
            return 1.0
        return len(self._covered_branches) / total

    def condition_coverage(self) -> float:
        """Fraction of condition outcomes (each atom counts true + false)."""
        total = 2 * self._registry.n_condition_atoms
        if total == 0:
            return 1.0
        seen = 0
        for point in self._registry.condition_points:
            for index in range(point.n_atoms):
                seen += len(self._atom_values.get((point.point_id, index), ()))
        return seen / total

    def mcdc_coverage(self) -> float:
        """Fraction of condition atoms with a masking-MCDC independence pair."""
        total = self._registry.n_condition_atoms
        if total == 0:
            return 1.0
        covered = 0
        for point in self._registry.condition_points:
            vectors = self._vectors.get(point.point_id)
            if not vectors:
                continue
            covered += len(mcdc_covered_atoms(point, vectors))
        return covered / total

    def summary(self) -> "CoverageSummary":
        return CoverageSummary(
            decision=self.decision_coverage(),
            condition=self.condition_coverage(),
            mcdc=self.mcdc_coverage(),
            covered_branches=len(self._covered_branches),
            total_branches=self._registry.n_branches,
        )

    def fork(self) -> "CoverageCollector":
        """Deep copy, for what-if executions that must not pollute this one."""
        clone = CoverageCollector(self._registry)
        clone._covered_branches = set(self._covered_branches)
        clone._vectors = {k: set(v) for k, v in self._vectors.items()}
        clone._atom_values = {k: set(v) for k, v in self._atom_values.items()}
        clone._det_seen = set(self._det_seen)
        return clone


class CoverageSummary:
    """Immutable snapshot of the three coverage metrics."""

    __slots__ = ("decision", "condition", "mcdc", "covered_branches", "total_branches")

    def __init__(self, decision, condition, mcdc, covered_branches, total_branches):
        self.decision = decision
        self.condition = condition
        self.mcdc = mcdc
        self.covered_branches = covered_branches
        self.total_branches = total_branches

    def as_dict(self) -> Dict[str, float]:
        return {
            "decision": self.decision,
            "condition": self.condition,
            "mcdc": self.mcdc,
        }

    def __repr__(self) -> str:
        return (
            f"CoverageSummary(decision={self.decision:.1%}, "
            f"condition={self.condition:.1%}, mcdc={self.mcdc:.1%})"
        )
