"""Dual-mode value operations for block computations.

Every block computes its outputs through a :class:`ValueOps` instance so the
same block code runs in two modes:

* **concrete** — operands are plain Python values (bool/int/float/tuple);
  operations are direct Python arithmetic.  This is the hot path for dynamic
  execution and the random-search baseline.
* **symbolic** — operands are expression nodes (or plain values, lifted);
  operations build expression trees via the smart constructors, folding
  wherever operands are constant.  This is how one-step encodings (STCG) and
  multi-step unrollings (the SLDV-like baseline) are produced.
"""

from __future__ import annotations

from repro.expr import ops as x
from repro.expr import semantics
from repro.expr.ast import Expr


class ValueOps:
    """Abstract operation table; see :data:`CONCRETE` and :data:`SYMBOLIC`."""

    symbolic = False
    #: True for the interval-domain table in :mod:`repro.analysis`.
    abstract = False

    def add(self, a, b):
        raise NotImplementedError

    # The remaining operations are defined by the concrete/symbolic tables.


class _ConcreteOps(ValueOps):
    """Plain Python arithmetic on canonical values."""

    symbolic = False

    @staticmethod
    def add(a, b):
        return a + b

    @staticmethod
    def sub(a, b):
        return a - b

    @staticmethod
    def mul(a, b):
        return a * b

    @staticmethod
    def div(a, b):
        return semantics.real_div(float(a), float(b))

    @staticmethod
    def idiv(a, b):
        return semantics.c_idiv(int(a), int(b))

    @staticmethod
    def mod(a, b):
        return semantics.c_mod(int(a), int(b))

    @staticmethod
    def minimum(a, b):
        return min(a, b)

    @staticmethod
    def maximum(a, b):
        return max(a, b)

    @staticmethod
    def absolute(a):
        return abs(a)

    @staticmethod
    def neg(a):
        return -a

    @staticmethod
    def saturate(v, lo, hi):
        return min(max(v, lo), hi)

    @staticmethod
    def lt(a, b):
        return a < b

    @staticmethod
    def le(a, b):
        return a <= b

    @staticmethod
    def gt(a, b):
        return a > b

    @staticmethod
    def ge(a, b):
        return a >= b

    @staticmethod
    def eq(a, b):
        return a == b

    @staticmethod
    def ne(a, b):
        return a != b

    @staticmethod
    def land(a, b):
        return bool(a) and bool(b)

    @staticmethod
    def lor(a, b):
        return bool(a) or bool(b)

    @staticmethod
    def lxor(a, b):
        return bool(a) != bool(b)

    @staticmethod
    def lnot(a):
        return not a

    @staticmethod
    def ite(c, t, e):
        return t if c else e

    @staticmethod
    def select(arr, idx):
        return arr[int(idx)]

    @staticmethod
    def store(arr, idx, val):
        items = list(arr)
        items[int(idx)] = val
        return tuple(items)

    @staticmethod
    def to_int(a):
        return int(a)

    @staticmethod
    def to_real(a):
        return float(a)

    @staticmethod
    def to_bool(a):
        return bool(a)

    @staticmethod
    def is_true(a) -> bool:
        """Concrete truth of a boolean value (always decidable here)."""
        return bool(a)

    @staticmethod
    def is_concrete(a) -> bool:
        return True


class _SymbolicOps(ValueOps):
    """Expression-building arithmetic via the smart constructors."""

    symbolic = True

    add = staticmethod(x.add)
    sub = staticmethod(x.sub)
    mul = staticmethod(x.mul)
    div = staticmethod(x.div)
    idiv = staticmethod(x.idiv)
    mod = staticmethod(x.mod)
    minimum = staticmethod(x.minimum)
    maximum = staticmethod(x.maximum)
    absolute = staticmethod(x.absolute)
    neg = staticmethod(x.neg)
    saturate = staticmethod(x.saturate)
    lt = staticmethod(x.lt)
    le = staticmethod(x.le)
    gt = staticmethod(x.gt)
    ge = staticmethod(x.ge)
    eq = staticmethod(x.eq)
    ne = staticmethod(x.ne)
    land = staticmethod(x.land)
    lor = staticmethod(x.lor)
    lxor = staticmethod(x.lxor)
    lnot = staticmethod(x.lnot)
    ite = staticmethod(x.ite)
    select = staticmethod(x.select)
    store = staticmethod(x.store)
    to_int = staticmethod(x.to_int)
    to_real = staticmethod(x.to_real)
    to_bool = staticmethod(x.to_bool)

    @staticmethod
    def is_true(a) -> bool:
        """Truth of a *constant* boolean expression; raises otherwise."""
        expr = x.lift(a)
        return bool(expr.const_value())

    @staticmethod
    def is_concrete(a) -> bool:
        if isinstance(a, Expr):
            return a.is_const
        return True


CONCRETE = _ConcreteOps()
SYMBOLIC = _SymbolicOps()
