"""Fluent construction API for models.

:class:`ModelBuilder` wraps :class:`~repro.model.graph.Model` with helpers
that create blocks, wire them and hand back :class:`Signal` references, so a
benchmark model reads like a netlist::

    b = ModelBuilder("AFC")
    rpm = b.inport("rpm", REAL, 0, 8000)
    high = b.compare(rpm, ">", 4000.0)
    cmd = b.switch(high, b.const(1.0), b.const(0.0))
    b.outport("cmd", cmd)
    compiled = b.compile()

Conditional subsystems use context managers::

    sc = b.switch_case(op, cases=[[1], [2]])
    with sc.case(0):
        ...blocks here execute only when op == 1...
        result = b.sub_output(value, init=0)

Blocks created inside a ``case``/``clause`` body are annotated with the
enabling decision outcome; their coverage registrations nest beneath it
(Definition 1 parent/depth) and their state writes are activation-gated.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ModelError
from repro.expr.types import Type
from repro.model import blocks as lib
from repro.model.block import Block
from repro.model.graph import CompiledModel, Enable, InportSpec, Model, Signal

Value = Union[Signal, bool, int, float, tuple]


class ModelBuilder:
    """Builds a model with automatic naming, wiring and enable scoping."""

    def __init__(self, name: str):
        self.model = Model(name)
        self._counters: Dict[str, int] = {}
        self._enable_stack: List[Enable] = []
        self._scope: List[str] = []
        self._const_cache: Dict[object, Signal] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _name(self, kind: str, name: Optional[str]) -> str:
        if name is None:
            self._counters[kind] = self._counters.get(kind, 0) + 1
            name = f"{kind}{self._counters[kind]}"
        return "/".join(self._scope + [name])

    def _add(self, block: Block) -> Block:
        enable = self._enable_stack[-1] if self._enable_stack else None
        self.model.add_block(block, enable)
        return block

    def _wire(self, block: Block, *sources: Value) -> None:
        for port, source in enumerate(sources):
            self.model.connect(self.signal(source), block, port)

    def signal(self, value: Value) -> Signal:
        """Coerce a plain value into a (cached, top-level) Constant signal."""
        if isinstance(value, Signal):
            return value
        key = (type(value).__name__, value)
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        name = self._name("Constant", None)
        block = lib.Constant(name, value)
        # Constants live outside any enable scope: they are pure and shared.
        self.model.add_block(block, None)
        signal = Signal(block, 0)
        self._const_cache[key] = signal
        return signal

    @contextlib.contextmanager
    def scope(self, label: str):
        """Prefix block names with ``label/`` (documentation only)."""
        self._scope.append(label)
        try:
            yield self
        finally:
            self._scope.pop()

    # ------------------------------------------------------------------
    # ports, constants, stores
    # ------------------------------------------------------------------

    def inport(self, name: str, ty: Type, lo=None, hi=None) -> Signal:
        self.model.add_inport(InportSpec(name, ty, lo, hi))
        block = self._add(lib.Inport(self._name("Inport", f"in_{name}"), name))
        return Signal(block, 0)

    def outport(self, name: str, value: Value) -> None:
        self.model.add_outport(name, self.signal(value))

    def const(self, value, name: Optional[str] = None) -> Signal:
        if name is None:
            return self.signal(value)
        block = self._add(lib.Constant(self._name("Constant", name), value))
        return Signal(block, 0)

    def data_store(self, name: str, ty: Type, init) -> str:
        self.model.declare_store(name, ty, init)
        return name

    def store_read(
        self, store: str, current: bool = False, name: Optional[str] = None
    ) -> Signal:
        block = self._add(
            lib.DataStoreRead(self._name("Read", name), store, read_current=current)
        )
        self.model.note_store_read(block, store, current)
        return Signal(block, 0)

    def store_write(self, store: str, value: Value, name: Optional[str] = None):
        block = self._add(lib.DataStoreWrite(self._name("Write", name), store))
        self.model.note_store_write(block, store)
        self._wire(block, value)
        return block

    # ------------------------------------------------------------------
    # math
    # ------------------------------------------------------------------

    def gain(self, value: Value, k, name=None) -> Signal:
        block = self._add(lib.Gain(self._name("Gain", name), k))
        self._wire(block, value)
        return Signal(block, 0)

    def bias(self, value: Value, b, name=None) -> Signal:
        block = self._add(lib.Bias(self._name("Bias", name), b))
        self._wire(block, value)
        return Signal(block, 0)

    def add(self, *values: Value, name=None) -> Signal:
        block = self._add(lib.Sum(self._name("Sum", name), "+" * len(values)))
        self._wire(block, *values)
        return Signal(block, 0)

    def sub(self, a: Value, b: Value, name=None) -> Signal:
        block = self._add(lib.Sum(self._name("Sum", name), "+-"))
        self._wire(block, a, b)
        return Signal(block, 0)

    def mul(self, *values: Value, name=None) -> Signal:
        block = self._add(lib.Product(self._name("Product", name), "*" * len(values)))
        self._wire(block, *values)
        return Signal(block, 0)

    def div(self, a: Value, b: Value, name=None) -> Signal:
        block = self._add(lib.Product(self._name("Product", name), "*/"))
        self._wire(block, a, b)
        return Signal(block, 0)

    def abs(self, value: Value, name=None) -> Signal:
        block = self._add(lib.Abs(self._name("Abs", name)))
        self._wire(block, value)
        return Signal(block, 0)

    def min(self, *values: Value, name=None) -> Signal:
        block = self._add(lib.MinMax(self._name("MinMax", name), "min", len(values)))
        self._wire(block, *values)
        return Signal(block, 0)

    def max(self, *values: Value, name=None) -> Signal:
        block = self._add(lib.MinMax(self._name("MinMax", name), "max", len(values)))
        self._wire(block, *values)
        return Signal(block, 0)

    def saturate(self, value: Value, lo, hi, name=None) -> Signal:
        block = self._add(lib.Saturation(self._name("Saturation", name), lo, hi))
        self._wire(block, value)
        return Signal(block, 0)

    def cast(self, value: Value, ty: Type, name=None) -> Signal:
        block = self._add(lib.TypeCast(self._name("Cast", name), ty))
        self._wire(block, value)
        return Signal(block, 0)

    def quantize(self, value: Value, interval: float, name=None) -> Signal:
        block = self._add(lib.Quantizer(self._name("Quantizer", name), interval))
        self._wire(block, value)
        return Signal(block, 0)

    def fcn(self, text: str, name=None, **named_inputs: Value) -> Signal:
        """Expression block; keyword arguments bind DSL names to signals.

        Values that should be int/bool typed inside the expression can be
        passed as ``name=(signal, INT)`` tuples.
        """
        args = []
        sources = []
        for arg_name, bound in named_inputs.items():
            if isinstance(bound, tuple) and len(bound) == 2 and isinstance(
                bound[1], Type
            ):
                args.append((arg_name, bound[1]))
                sources.append(bound[0])
            else:
                args.append(arg_name)
                sources.append(bound)
        block = self._add(lib.Fcn(self._name("Fcn", name), args, text))
        self._wire(block, *sources)
        return Signal(block, 0)

    def lookup(self, value: Value, breakpoints, values, name=None) -> Signal:
        block = self._add(
            lib.Lookup1D(self._name("Lookup", name), breakpoints, values)
        )
        self._wire(block, value)
        return Signal(block, 0)

    # ------------------------------------------------------------------
    # logic and comparison
    # ------------------------------------------------------------------

    def compare(self, a: Value, op: str, b: Value, name=None) -> Signal:
        if not isinstance(b, Signal):
            block = self._add(
                lib.CompareToConstant(self._name("Compare", name), op, b)
            )
            self._wire(block, a)
            return Signal(block, 0)
        block = self._add(lib.RelationalOperator(self._name("Relop", name), op))
        self._wire(block, a, b)
        return Signal(block, 0)

    def logic(self, op: str, *values: Value, name=None) -> Signal:
        block = self._add(lib.Logic(self._name("Logic", name), op, len(values)))
        self._wire(block, *values)
        return Signal(block, 0)

    def logic_not(self, value: Value, name=None) -> Signal:
        return self.logic("not", value, name=name)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def unit_delay(self, value: Value, init, name=None) -> Signal:
        block = self._add(lib.UnitDelay(self._name("UnitDelay", name), init))
        self._wire(block, value)
        return Signal(block, 0)

    def integrator(self, value: Value, gain=1.0, init=0.0, lo=-1e9, hi=1e9, name=None):
        block = self._add(
            lib.DiscreteIntegrator(self._name("Integrator", name), gain, init, lo, hi)
        )
        self._wire(block, value)
        return Signal(block, 0)

    def rate_limit(self, value: Value, up: float, down: float, init=0.0, name=None):
        block = self._add(
            lib.RateLimiter(self._name("RateLimiter", name), up, down, init)
        )
        self._wire(block, value)
        return Signal(block, 0)

    def counter(self, period: int, step: int = 1, init: int = 0, name=None) -> Signal:
        block = self._add(lib.Counter(self._name("Counter", name), period, step, init))
        return Signal(block, 0)

    # ------------------------------------------------------------------
    # arrays
    # ------------------------------------------------------------------

    def select(self, array: Value, index: Value, length: int, name=None) -> Signal:
        block = self._add(lib.Selector(self._name("Selector", name), length))
        self._wire(block, array, index)
        return Signal(block, 0)

    def array_update(
        self, array: Value, index: Value, value: Value, length: int, name=None
    ) -> Signal:
        block = self._add(lib.ArrayUpdate(self._name("ArrayUpdate", name), length))
        self._wire(block, array, index, value)
        return Signal(block, 0)

    def mux(self, *values: Value, name=None) -> Signal:
        block = self._add(lib.Mux(self._name("Mux", name), len(values)))
        self._wire(block, *values)
        return Signal(block, 0)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def switch(
        self,
        control: Value,
        on_true: Value,
        on_false: Value,
        criterion: str = "bool",
        threshold=0,
        name=None,
    ) -> Signal:
        block = self._add(
            lib.Switch(self._name("Switch", name), criterion, threshold)
        )
        self._wire(block, on_true, control, on_false)
        return Signal(block, 0)

    def multiport(
        self,
        control: Value,
        cases: Sequence,
        default: Optional[Value] = None,
        name=None,
    ) -> Signal:
        """Multiport switch; ``cases`` is ``[(label, signal), ...]``."""
        labels = [label for label, _ in cases]
        block = self._add(
            lib.MultiportSwitch(
                self._name("Multiport", name), labels, has_default=default is not None
            )
        )
        sources = [control] + [value for _, value in cases]
        if default is not None:
            sources.append(default)
        self._wire(block, *sources)
        return Signal(block, 0)

    def if_block(self, conditions: Sequence[Value], has_else=True, name=None):
        block = self._add(
            lib.IfBlock(self._name("If", name), len(conditions), has_else)
        )
        self._wire(block, *conditions)
        return _ConditionalScope(self, block, len(conditions), has_else)

    def switch_case(self, control: Value, cases: Sequence[Sequence[int]],
                    has_default=True, name=None):
        block = self._add(
            lib.SwitchCase(self._name("SwitchCase", name), cases, has_default)
        )
        self._wire(block, control)
        return _ConditionalScope(self, block, len(cases), has_default)

    def sub_output(self, value: Value, init, name=None) -> Signal:
        """Held-output latch of the *current* conditional scope."""
        if not self._enable_stack:
            raise ModelError("sub_output used outside a conditional scope")
        block = self._add(lib.SubsystemOutput(self._name("SubOut", name), init))
        self._wire(block, value)
        return Signal(block, 0)

    # ------------------------------------------------------------------
    # charts & finalization
    # ------------------------------------------------------------------

    def add_chart(self, chart, inputs: Dict[str, Value], name=None) -> "ChartSignals":
        """Instantiate a Stateflow-like chart; returns its output signals.

        ``chart`` is a :class:`repro.stateflow.ChartSpec`; ``inputs`` maps
        the chart's declared input names to signals.
        """
        from repro.stateflow.chart import ChartBlock

        block = self._add(ChartBlock(self._name("Chart", name or chart.name), chart))
        sources = []
        for input_name in chart.input_names:
            if input_name not in inputs:
                raise ModelError(
                    f"chart {chart.name!r} input {input_name!r} not wired"
                )
            sources.append(inputs[input_name])
        self._wire(block, *sources)
        return ChartSignals(block, chart.output_names)

    def compile(self) -> CompiledModel:
        return self.model.compile()


class ChartSignals:
    """Accessor for a chart block's named outputs."""

    def __init__(self, block: Block, output_names: Sequence[str]):
        self._block = block
        self._indices = {name: i for i, name in enumerate(output_names)}

    def __getitem__(self, name: str) -> Signal:
        try:
            return Signal(self._block, self._indices[name])
        except KeyError:
            raise ModelError(f"chart has no output {name!r}") from None

    @property
    def block(self) -> Block:
        return self._block


class _ConditionalScope:
    """Handle for an If / SwitchCase decision with per-outcome scopes."""

    def __init__(self, builder: ModelBuilder, block: Block, n_cases: int, has_tail: bool):
        self._builder = builder
        self.block = block
        self._n_cases = n_cases
        self._has_tail = has_tail

    @contextlib.contextmanager
    def case(self, index: int):
        """Scope for outcome ``index`` (an If clause or a SwitchCase case)."""
        if not 0 <= index < self._n_cases:
            raise ModelError(f"outcome index {index} out of range")
        yield from self._enter(index)

    @contextlib.contextmanager
    def default(self):
        """Scope for the else / default outcome."""
        if not self._has_tail:
            raise ModelError("decision has no else/default outcome")
        yield from self._enter(self._n_cases)

    def _enter(self, outcome: int):
        builder = self._builder
        builder._enable_stack.append(Enable(self.block, outcome))
        builder._scope.append(f"{self.block.name.rsplit('/', 1)[-1]}.o{outcome}")
        try:
            yield self
        finally:
            builder._scope.pop()
            builder._enable_stack.pop()
