"""Random input generation over a model's inport declarations.

Shared by STCG's fallback exploration (when the solved-input library is
empty or disabled) and by the SimCoTest-like baseline.  Integer draws are
biased toward small magnitudes because branch conditions in control models
overwhelmingly compare against small constants.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.expr.types import BOOL, INT
from repro.model.graph import InportSpec


def random_input(
    inports: Sequence[InportSpec], rng: random.Random
) -> Dict[str, object]:
    """One random assignment for every inport."""
    return {spec.name: _draw(spec, rng) for spec in inports}


def random_sequence(
    inports: Sequence[InportSpec], rng: random.Random, length: int
) -> List[Dict[str, object]]:
    """A sequence of independent random assignments."""
    return [random_input(inports, rng) for _ in range(length)]


def piecewise_constant_sequence(
    inports: Sequence[InportSpec],
    rng: random.Random,
    length: int,
    max_segments: int = 4,
) -> List[Dict[str, object]]:
    """A piecewise-constant signal per input (SimCoTest's signal shape).

    Each input holds a random value over a few random-length segments,
    which matches how SimCoTest generates input signals for controllers.
    """
    n_segments = rng.randint(1, max_segments)
    boundaries = sorted(rng.sample(range(1, max(2, length)), min(n_segments - 1, length - 1))) if length > 1 else []
    boundaries = boundaries + [length]
    sequence: List[Dict[str, object]] = []
    segment_values = {spec.name: _draw(spec, rng) for spec in inports}
    position = 0
    for boundary in boundaries:
        while position < boundary:
            sequence.append(dict(segment_values))
            position += 1
        segment_values = {spec.name: _draw(spec, rng) for spec in inports}
    return sequence[:length]


def _draw(spec: InportSpec, rng: random.Random):
    if spec.ty is BOOL:
        return rng.random() < 0.5
    lo = spec.lo if spec.lo is not None else -1000.0
    hi = spec.hi if spec.hi is not None else 1000.0
    if spec.ty is INT:
        ilo, ihi = int(lo), int(hi)
        if rng.random() < 0.5 and ilo <= 0 <= ihi:
            bound = min(16, max(abs(ilo), abs(ihi), 1))
            return rng.randint(max(ilo, -bound), min(ihi, bound))
        return rng.randint(ilo, ihi)
    return rng.uniform(float(lo), float(hi))
