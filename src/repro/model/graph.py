"""Model container, wiring, and compilation to an execution plan.

A :class:`Model` is a flat collection of blocks plus wiring, data-store
declarations and conditional-execution (enable) annotations.  ``compile()``
produces a :class:`CompiledModel`:

* a topologically sorted execution plan (networkx, deterministic
  tie-breaking by insertion order),
* the coverage registry with every decision/branch/condition point
  (branch parents follow the enable nesting, giving Definition 1's
  parent/depth),
* the flattened state-element table (Definition 2's G/GV + M/ML + I/IV).

Ordering rules:

* a wire adds an edge source → destination unless the destination port has
  no direct feedthrough (``UnitDelay`` & friends),
* an enable annotation adds an edge decision-block → enabled block,
* data-store readers execute before writers of the same store by default
  (read-before-write); a reader built with ``read_current=True`` reverses
  that and observes the value written earlier in the same step,
* ``add_ordering`` inserts explicit edges for anything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import CompileError, ModelError
from repro.coverage.registry import Branch, CoverageRegistry
from repro.expr.ast import Var
from repro.expr.types import Type
from repro.model.block import (
    Block,
    STATE_GLOBAL,
    StateElement,
)


@dataclass(frozen=True)
class Signal:
    """A block output port reference."""

    block: Block
    port: int = 0

    def __repr__(self) -> str:
        return f"Signal({self.block.path}:{self.port})"


@dataclass(frozen=True)
class InportSpec:
    """Declaration of a model input: name, type and value bounds."""

    name: str
    ty: Type
    lo: Optional[float] = None
    hi: Optional[float] = None

    def as_var(self, suffix: str = "") -> Var:
        """The symbolic variable standing for this input (optionally per-step)."""
        return Var(self.name + suffix, self.ty, self.lo, self.hi)


@dataclass(frozen=True)
class DataStore:
    """A model-global variable (the paper's G/GV state)."""

    name: str
    ty: Type
    init: object


@dataclass
class Enable:
    """Conditional-execution annotation: active iff ``decision`` takes ``outcome``."""

    block: Block  # the If / SwitchCase block owning the decision
    outcome: int


@dataclass
class PlanItem:
    """One executable entry of the compiled plan."""

    block: Block
    index: int
    input_signals: Tuple[Signal, ...]
    enable: Optional[Enable] = None
    #: Plan index of the enabling block (set during compile).
    enable_index: Optional[int] = None


class Model:
    """A flat block-diagram model under construction."""

    def __init__(self, name: str):
        self.name = name
        self._blocks: List[Block] = []
        self._block_ids: Dict[int, int] = {}  # id(block) -> insertion index
        self._wires: Dict[Tuple[int, int], Signal] = {}  # (blk idx, port) -> src
        self._enables: Dict[int, Enable] = {}
        self._stores: Dict[str, DataStore] = {}
        self._store_readers: List[Tuple[int, str, bool]] = []  # (idx, store, current)
        self._store_writers: List[Tuple[int, str]] = []
        self._orderings: List[Tuple[int, int]] = []
        self._inports: List[InportSpec] = []
        self._outports: List[Tuple[str, Signal]] = []
        self._names: set = set()

    # -- construction ---------------------------------------------------------

    def add_block(self, block: Block, enable: Optional[Enable] = None) -> Block:
        if id(block) in self._block_ids:
            raise ModelError(f"block {block.path!r} added twice")
        if block.path in self._names:
            raise ModelError(f"duplicate block path {block.path!r}")
        self._names.add(block.path)
        index = len(self._blocks)
        self._blocks.append(block)
        self._block_ids[id(block)] = index
        if enable is not None:
            self._require_known(enable.block, "enable source")
            self._enables[index] = enable
        return block

    def connect(self, signal: Signal, dst: Block, port: int) -> None:
        self._require_known(dst, "destination")
        self._require_known(signal.block, "source")
        if not 0 <= port < dst.n_in:
            raise ModelError(f"{dst.path!r} has no input port {port}")
        if not 0 <= signal.port < signal.block.n_out:
            raise ModelError(
                f"{signal.block.path!r} has no output port {signal.port}"
            )
        key = (self._block_ids[id(dst)], port)
        if key in self._wires:
            raise ModelError(f"input {dst.path!r}:{port} wired twice")
        self._wires[key] = signal

    def declare_store(self, name: str, ty: Type, init) -> DataStore:
        if name in self._stores:
            raise ModelError(f"data store {name!r} declared twice")
        store = DataStore(name, ty, init)
        self._stores[name] = store
        return store

    def note_store_read(self, block: Block, store: str, current: bool) -> None:
        """Register a reader for ordering (called by DataStoreRead blocks)."""
        self._require_store(store)
        self._store_readers.append((self._block_ids[id(block)], store, current))

    def note_store_write(self, block: Block, store: str) -> None:
        self._require_store(store)
        self._store_writers.append((self._block_ids[id(block)], store))

    def add_ordering(self, before: Block, after: Block) -> None:
        """Force ``before`` to execute earlier than ``after``."""
        self._orderings.append(
            (self._block_ids[id(before)], self._block_ids[id(after)])
        )

    def add_inport(self, spec: InportSpec) -> None:
        if any(existing.name == spec.name for existing in self._inports):
            raise ModelError(f"duplicate inport {spec.name!r}")
        self._inports.append(spec)

    def add_outport(self, name: str, signal: Signal) -> None:
        if any(existing == name for existing, _ in self._outports):
            raise ModelError(f"duplicate outport {name!r}")
        self._require_known(signal.block, "outport source")
        self._outports.append((name, signal))

    # -- helpers -----------------------------------------------------------------

    def _require_known(self, block: Block, role: str) -> None:
        if id(block) not in self._block_ids:
            raise ModelError(f"{role} block {block.path!r} not in model")

    def _require_store(self, name: str) -> None:
        if name not in self._stores:
            raise ModelError(f"unknown data store {name!r}")

    @property
    def blocks(self) -> Tuple[Block, ...]:
        return tuple(self._blocks)

    @property
    def inports(self) -> Tuple[InportSpec, ...]:
        return tuple(self._inports)

    # -- compilation ----------------------------------------------------------------

    def compile(self) -> "CompiledModel":
        self._check_wiring()
        order = self._topological_order()
        plan = self._build_plan(order)
        registry = self._register_coverage(order)
        state = self._state_table()
        return CompiledModel(
            name=self.name,
            plan=plan,
            registry=registry,
            state_elements=state,
            inports=tuple(self._inports),
            outports=tuple(self._outports),
            n_blocks=len(self._blocks),
        )

    def _check_wiring(self) -> None:
        missing = []
        for index, block in enumerate(self._blocks):
            for port in range(block.n_in):
                if (index, port) not in self._wires:
                    missing.append(f"{block.path}:{port}")
        if missing:
            raise CompileError(f"unwired inputs: {', '.join(missing)}")

    def _topological_order(self) -> List[int]:
        graph = nx.DiGraph()
        graph.add_nodes_from(range(len(self._blocks)))
        for (dst_index, port), signal in self._wires.items():
            dst_block = self._blocks[dst_index]
            nondirect = dst_block.nondirect_ports or ()
            if port in nondirect:
                continue
            src_index = self._block_ids[id(signal.block)]
            graph.add_edge(src_index, dst_index)
        for index, enable in self._enables.items():
            graph.add_edge(self._block_ids[id(enable.block)], index)
        for reader_index, store, current in self._store_readers:
            for writer_index, wstore in self._store_writers:
                if wstore != store or writer_index == reader_index:
                    continue
                if current:
                    graph.add_edge(writer_index, reader_index)
                else:
                    graph.add_edge(reader_index, writer_index)
        for before, after in self._orderings:
            graph.add_edge(before, after)
        try:
            return list(nx.lexicographical_topological_sort(graph))
        except nx.NetworkXUnfeasible:
            cycle = nx.find_cycle(graph)
            names = " -> ".join(self._blocks[a].path for a, _ in cycle)
            raise CompileError(
                f"model {self.name!r} has an algebraic loop: {names}. "
                "Break it with a UnitDelay or adjust data-store ordering."
            ) from None

    def _build_plan(self, order: List[int]) -> Tuple[PlanItem, ...]:
        plan: List[PlanItem] = []
        position: Dict[int, int] = {}
        for plan_index, block_index in enumerate(order):
            block = self._blocks[block_index]
            inputs = tuple(
                self._wires[(block_index, port)] for port in range(block.n_in)
            )
            enable = self._enables.get(block_index)
            item = PlanItem(block, plan_index, inputs, enable)
            if enable is not None:
                item.enable_index = position[self._block_ids[id(enable.block)]]
            plan.append(item)
            position[block_index] = plan_index
        return tuple(plan)

    def _register_coverage(self, order: List[int]) -> CoverageRegistry:
        registry = CoverageRegistry()
        parents: Dict[int, Optional[Branch]] = {}
        for block_index in order:
            block = self._blocks[block_index]
            enable = self._enables.get(block_index)
            parent: Optional[Branch] = None
            if enable is not None:
                enabling = getattr(enable.block, "decision", None)
                if enabling is None:
                    raise CompileError(
                        f"enable source {enable.block.path!r} registered no decision"
                    )
                parent = enabling.branches[enable.outcome]
                # Nest under the enabling block's own parent chain implicitly:
                # the enabling decision was registered with its parent already.
            parents[block_index] = parent
            block.register_coverage(registry, parent)
        registry.freeze()
        return registry

    def _state_table(self) -> Dict[str, StateElement]:
        table: Dict[str, StateElement] = {}
        for store in self._stores.values():
            path = f"$store.{store.name}"
            table[path] = StateElement(path, store.ty, store.init, STATE_GLOBAL)
        for block in self._blocks:
            for element in block.state_spec():
                path = f"{block.path}.{element.name}"
                if path in table:
                    raise CompileError(f"duplicate state element {path!r}")
                table[path] = StateElement(
                    path, element.ty, element.init, element.category
                )
        return table


@dataclass
class CompiledModel:
    """An executable model: plan + instrumentation + state layout."""

    name: str
    plan: Tuple[PlanItem, ...]
    registry: CoverageRegistry
    state_elements: Dict[str, StateElement]
    inports: Tuple[InportSpec, ...]
    outports: Tuple[Tuple[str, Signal], ...]
    n_blocks: int

    def __post_init__(self) -> None:
        # Flat slot tables, resolved once per compiled model so the per-step
        # paths (executor and repro.kernel) never touch id()-keyed dicts.
        # Derived attributes, not fields: they are per-instance (never shared
        # between two compiles) and stay out of the dataclass eq/repr.
        index_of: Dict[int, int] = {
            id(item.block): item.index for item in self.plan
        }
        self.plan_index_of: Dict[int, int] = index_of
        #: Per plan item: ``((src_plan_index, src_port), ...)`` for each input.
        self.input_slots: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple(
                (index_of[id(signal.block)], signal.port)
                for signal in item.input_signals
            )
            for item in self.plan
        )
        #: Per outport: ``(name, src_plan_index, src_port)``.
        self.outport_slots: Tuple[Tuple[str, int, int], ...] = tuple(
            (name, index_of[id(signal.block)], signal.port)
            for name, signal in self.outports
        )

    def initial_state(self) -> Dict[str, object]:
        """Fresh state environment with every element at its initial value."""
        return {path: elem.init for path, elem in self.state_elements.items()}

    def input_variables(self, suffix: str = "") -> List[Var]:
        """Symbolic variables for every inport (optionally step-suffixed)."""
        return [spec.as_var(suffix) for spec in self.inports]

    @property
    def n_branches(self) -> int:
        return self.registry.n_branches
