"""Model-state snapshots (the paper's Definition 2).

A :class:`ModelState` maps state-element path to value, covering:

* ``G/GV`` — data stores (paths prefixed ``$store.``),
* ``M/ML`` — chart locations and chart locals (category ``chart``),
* ``I/IV`` — block internal state (category ``internal``).

Every value is an immutable Python scalar or tuple, so snapshots are cheap
(one dict copy) and hashable via :meth:`signature`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.cache.fingerprint import state_fingerprint
from repro.errors import StateError
from repro.model.block import STATE_CHART, STATE_GLOBAL, STATE_INTERNAL, StateElement


class ModelState:
    """An immutable snapshot of every state element of a model."""

    __slots__ = ("_values", "_signature", "_fingerprint")

    def __init__(self, values: Mapping[str, object]):
        self._values: Dict[str, object] = dict(values)
        self._signature: Tuple = ()
        self._fingerprint: str = ""

    # -- access ---------------------------------------------------------------

    @property
    def values(self) -> Mapping[str, object]:
        return dict(self._values)

    def get(self, path: str):
        try:
            return self._values[path]
        except KeyError:
            raise StateError(f"state element {path!r} not in snapshot") from None

    def __contains__(self, path: str) -> bool:
        return path in self._values

    def __len__(self) -> int:
        return len(self._values)

    # -- identity ----------------------------------------------------------------

    def signature(self) -> Tuple:
        """A hashable identity for duplicate-state detection."""
        if not self._signature:
            self._signature = tuple(sorted(self._values.items()))
        return self._signature

    def fingerprint(self) -> str:
        """Stable content digest (cached): the solve-cache key.

        Order-independent over the underlying mapping, consistent with
        ``==`` (equal states share a fingerprint), and identical across
        processes regardless of ``PYTHONHASHSEED`` — see
        :func:`repro.cache.fingerprint.state_fingerprint`.
        """
        if not self._fingerprint:
            self._fingerprint = state_fingerprint(self._values)
        return self._fingerprint

    def __eq__(self, other) -> bool:
        if not isinstance(other, ModelState):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self.signature())

    # -- categorised views (G/GV, M/ML, I/IV) ------------------------------------

    def split(
        self, elements: Mapping[str, StateElement]
    ) -> Dict[str, Dict[str, object]]:
        """Partition the snapshot by Definition 2 categories."""
        parts: Dict[str, Dict[str, object]] = {
            STATE_GLOBAL: {},
            STATE_CHART: {},
            STATE_INTERNAL: {},
        }
        for path, value in self._values.items():
            element = elements.get(path)
            category = element.category if element is not None else STATE_INTERNAL
            parts[category][path] = value
        return parts

    def diff(self, other: "ModelState") -> Dict[str, Tuple[object, object]]:
        """Elements whose values differ: path -> (self value, other value)."""
        changed = {}
        for path, value in self._values.items():
            other_value = other._values.get(path)
            if other_value != value:
                changed[path] = (value, other_value)
        return changed

    def __repr__(self) -> str:
        return f"ModelState({len(self._values)} elements)"
