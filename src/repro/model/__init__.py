"""The Simulink-like block-diagram substrate.

Public surface:

* :class:`ModelBuilder` — fluent model construction,
* :class:`Model` / :class:`CompiledModel` — container and compiled plan,
* :class:`Simulator` — concrete stepping with state snapshot/restore,
* :class:`ModelState` — Definition 2 snapshots,
* the block library under :mod:`repro.model.blocks`.
"""

from repro.model.block import (
    Block,
    STATE_CHART,
    STATE_GLOBAL,
    STATE_INTERNAL,
    StateElement,
)
from repro.model.builder import ModelBuilder
from repro.model.context import StepContext, concrete_context, symbolic_context
from repro.model.executor import execute_step
from repro.model.graph import (
    CompiledModel,
    DataStore,
    Enable,
    InportSpec,
    Model,
    PlanItem,
    Signal,
)
from repro.model.simulator import Simulator, StepResult
from repro.model.state import ModelState

__all__ = [
    "Block",
    "CompiledModel",
    "DataStore",
    "Enable",
    "InportSpec",
    "Model",
    "ModelBuilder",
    "ModelState",
    "PlanItem",
    "STATE_CHART",
    "STATE_GLOBAL",
    "STATE_INTERNAL",
    "Signal",
    "Simulator",
    "StateElement",
    "StepContext",
    "StepResult",
    "concrete_context",
    "execute_step",
    "symbolic_context",
]
