"""The block library."""

from repro.model.blocks.datastore import DataStoreRead, DataStoreWrite
from repro.model.blocks.discrete import (
    DiscreteIntegrator,
    Memory,
    MovingAccumulator,
    RateLimiter,
    UnitDelay,
)
from repro.model.blocks.logic import CompareToConstant, Logic, RelationalOperator
from repro.model.blocks.lookup import Lookup1D
from repro.model.blocks.math_ops import (
    Abs,
    Bias,
    Fcn,
    Gain,
    MinMax,
    Product,
    Quantizer,
    Saturation,
    Sum,
    TypeCast,
)
from repro.model.blocks.routing import (
    ArrayUpdate,
    IfBlock,
    MultiportSwitch,
    Mux,
    Selector,
    SubsystemOutput,
    Switch,
    SwitchCase,
)
from repro.model.blocks.sources import Constant, Counter, Inport

__all__ = [
    "Abs",
    "ArrayUpdate",
    "Bias",
    "CompareToConstant",
    "Constant",
    "Counter",
    "DataStoreRead",
    "DataStoreWrite",
    "DiscreteIntegrator",
    "Fcn",
    "Gain",
    "IfBlock",
    "Inport",
    "Logic",
    "Lookup1D",
    "Memory",
    "MinMax",
    "MovingAccumulator",
    "MultiportSwitch",
    "Mux",
    "Product",
    "Quantizer",
    "RateLimiter",
    "RelationalOperator",
    "Saturation",
    "Selector",
    "SubsystemOutput",
    "Sum",
    "Switch",
    "SwitchCase",
    "TypeCast",
    "UnitDelay",
]
