"""1-D lookup table with linear interpolation and end clipping."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ModelError
from repro.model.block import Block


class Lookup1D(Block):
    """Piecewise-linear interpolation over monotonically increasing
    breakpoints; input outside the table clips to the end values.

    In symbolic mode the table unfolds into an ITE chain over the segments,
    which is how a formal encoding of a Simulink lookup block behaves.
    """

    def __init__(self, name: str, breakpoints: Sequence[float], values: Sequence[float]):
        if len(breakpoints) != len(values):
            raise ModelError("breakpoints and values must have equal length")
        if len(breakpoints) < 2:
            raise ModelError("lookup table needs at least two points")
        bps = [float(b) for b in breakpoints]
        if any(b2 <= b1 for b1, b2 in zip(bps, bps[1:])):
            raise ModelError("breakpoints must be strictly increasing")
        super().__init__(name, 1, 1)
        self.breakpoints = tuple(bps)
        self.values = tuple(float(v) for v in values)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        u = vo.to_real(inputs[0])
        if not vo.symbolic:
            return [self._interp_concrete(float(u))]
        result = vo.to_real(self.values[-1])
        # Build the chain back to front: ... ite(u <= bp[i+1], seg_i, rest)
        for index in range(len(self.breakpoints) - 2, -1, -1):
            segment = self._segment_expr(vo, u, index)
            result = vo.ite(
                vo.le(u, self.breakpoints[index + 1]), segment, result
            )
        result = vo.ite(
            vo.le(u, self.breakpoints[0]), vo.to_real(self.values[0]), result
        )
        return [result]

    def _segment_expr(self, vo, u, index: int):
        b1 = self.breakpoints[index]
        b2 = self.breakpoints[index + 1]
        v1 = self.values[index]
        v2 = self.values[index + 1]
        slope = (v2 - v1) / (b2 - b1)
        return vo.add(v1, vo.mul(slope, vo.sub(u, b1)))

    def _interp_concrete(self, u: float) -> float:
        bps = self.breakpoints
        values = self.values
        if u <= bps[0]:
            return values[0]
        if u >= bps[-1]:
            return values[-1]
        for index in range(len(bps) - 1):
            if u <= bps[index + 1]:
                b1, b2 = bps[index], bps[index + 1]
                v1, v2 = values[index], values[index + 1]
                return v1 + (v2 - v1) * (u - b1) / (b2 - b1)
        return values[-1]
