"""Arithmetic blocks: gains, sums, products, saturation, casts, Fcn."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ModelError
from repro.expr.ast import Expr, Var
from repro.expr.evaluator import evaluate
from repro.expr.parser import parse_expr
from repro.expr.types import BOOL, INT, REAL, Type
from repro.expr.variables import substitute
from repro.model.block import Block


class Gain(Block):
    """``y = k * u``."""

    def __init__(self, name: str, gain):
        super().__init__(name, 1, 1)
        self.gain = gain

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return [ctx.vo.mul(self.gain, inputs[0])]


class Bias(Block):
    """``y = u + b``."""

    def __init__(self, name: str, bias):
        super().__init__(name, 1, 1)
        self.bias = bias

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return [ctx.vo.add(inputs[0], self.bias)]


class Sum(Block):
    """N-input sum with a sign string, e.g. ``"++-"``."""

    def __init__(self, name: str, signs: str = "++"):
        if not signs or any(s not in "+-" for s in signs):
            raise ModelError(f"invalid sign string {signs!r}")
        super().__init__(name, len(signs), 1)
        self.signs = signs

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        total = inputs[0] if self.signs[0] == "+" else vo.neg(inputs[0])
        for sign, value in zip(self.signs[1:], inputs[1:]):
            total = vo.add(total, value) if sign == "+" else vo.sub(total, value)
        return [total]


class Product(Block):
    """N-input product with an op string of ``*`` and ``/``, e.g. ``"**/"``."""

    def __init__(self, name: str, ops: str = "**"):
        if not ops or any(o not in "*/" for o in ops):
            raise ModelError(f"invalid op string {ops!r}")
        if ops[0] == "/":
            raise ModelError("first operand of Product must be '*'")
        super().__init__(name, len(ops), 1)
        self.ops = ops

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        total = inputs[0]
        for op, value in zip(self.ops[1:], inputs[1:]):
            total = vo.mul(total, value) if op == "*" else vo.div(total, value)
        return [total]


class Abs(Block):
    """``y = |u|``."""

    def __init__(self, name: str):
        super().__init__(name, 1, 1)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return [ctx.vo.absolute(inputs[0])]


class MinMax(Block):
    """N-input minimum or maximum."""

    def __init__(self, name: str, mode: str, n_in: int = 2):
        if mode not in ("min", "max"):
            raise ModelError(f"mode must be 'min' or 'max', got {mode!r}")
        if n_in < 2:
            raise ModelError("MinMax needs at least two inputs")
        super().__init__(name, n_in, 1)
        self.mode = mode

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        combine = vo.minimum if self.mode == "min" else vo.maximum
        total = inputs[0]
        for value in inputs[1:]:
            total = combine(total, value)
        return [total]


class Saturation(Block):
    """Clamp into ``[lo, hi]``."""

    def __init__(self, name: str, lo, hi):
        if not lo <= hi:
            raise ModelError(f"saturation bounds inverted: [{lo}, {hi}]")
        super().__init__(name, 1, 1)
        self.lo = lo
        self.hi = hi

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return [ctx.vo.saturate(inputs[0], self.lo, self.hi)]


class TypeCast(Block):
    """Cast to bool / int / real (Simulink Data Type Conversion)."""

    def __init__(self, name: str, target: Type):
        super().__init__(name, 1, 1)
        self.target = target

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        if self.target is BOOL:
            return [vo.to_bool(inputs[0])]
        if self.target is INT:
            return [vo.to_int(inputs[0])]
        if self.target is REAL:
            return [vo.to_real(inputs[0])]
        raise ModelError(f"cannot cast to {self.target!r}")


class Quantizer(Block):
    """Round to the nearest multiple of ``interval``."""

    def __init__(self, name: str, interval: float):
        if interval <= 0:
            raise ModelError("quantizer interval must be positive")
        super().__init__(name, 1, 1)
        self.interval = float(interval)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        import math

        if ctx.vo.abstract:
            from repro.analysis.intervalops import lift
            from repro.solver.interval import Interval

            value = lift(inputs[0])
            return [Interval(
                math.floor(value.lo / self.interval + 0.5) * self.interval,
                math.floor(value.hi / self.interval + 0.5) * self.interval,
            )]
        if ctx.vo.symbolic:
            from repro.expr import ops as x

            scaled = x.div(inputs[0], self.interval)
            return [x.mul(x.to_real(x.floor(x.add(scaled, 0.5))), self.interval)]
        return [math.floor(float(inputs[0]) / self.interval + 0.5) * self.interval]


class Fcn(Block):
    """An expression block (Simulink ``Fcn``): one DSL expression over
    named inputs.

    ``args`` names the input ports in order; each entry is a name (typed
    REAL, like Simulink's double-everything Fcn) or a ``(name, type)`` pair
    for integer/boolean operands.  Purely arithmetic — no coverage
    instrumentation, matching how Simulink treats Fcn blocks.
    """

    def __init__(self, name: str, args: Sequence, text: str):
        if not args:
            raise ModelError("Fcn needs at least one argument")
        names = []
        types = []
        for arg in args:
            if isinstance(arg, tuple):
                arg_name, arg_ty = arg
            else:
                arg_name, arg_ty = arg, REAL
            names.append(arg_name)
            types.append(arg_ty)
        super().__init__(name, len(names), 1)
        self.args = tuple(names)
        self.arg_types = tuple(types)
        self.text = text
        self.template = parse_expr(
            text, {n: Var(n, t) for n, t in zip(self.args, self.arg_types)}
        )

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        if ctx.vo.abstract:
            from repro.analysis.interval_eval import interval_eval

            return [interval_eval(self.template, dict(zip(self.args, inputs)))]
        if ctx.vo.symbolic:
            from repro.expr import ops as x

            bindings: Dict[str, Expr] = {
                arg: x.lift(value) for arg, value in zip(self.args, inputs)
            }
            return [substitute(self.template, bindings)]
        env = dict(zip(self.args, inputs))
        return [evaluate(self.template, env)]
