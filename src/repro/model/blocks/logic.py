"""Boolean blocks: Logic (condition/MCDC instrumented), relational operators."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ModelError
from repro.coverage.registry import Branch, CoverageRegistry
from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.types import BOOL
from repro.model.block import Block

_LOGIC_OPS = ("and", "or", "xor", "nand", "nor", "not")


class Logic(Block):
    """N-input logical operator (Simulink Logical Operator block).

    This is the model element Simulink's Condition and MCDC coverage
    instrument: each input is a *condition*; the block's boolean structure
    over those conditions is registered as a condition point.
    """

    def __init__(self, name: str, op: str, n_in: int = 2):
        if op not in _LOGIC_OPS:
            raise ModelError(f"unknown logic op {op!r}")
        if op == "not" and n_in != 1:
            raise ModelError("'not' takes exactly one input")
        if op != "not" and n_in < 2:
            raise ModelError(f"logic op {op!r} needs >= 2 inputs")
        super().__init__(name, n_in, 1)
        self.op = op
        self.condition_point = None

    def register_coverage(
        self, registry: CoverageRegistry, parent: Optional[Branch]
    ) -> None:
        placeholders = [Var(f"c{i}", BOOL) for i in range(self.n_in)]
        structure = _structure(self.op, placeholders)
        labels = [f"in{i + 1}" for i in range(self.n_in)]
        self.condition_point = registry.register_condition_point(
            self.path, labels, structure
        )

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        operands = [vo.to_bool(value) for value in inputs]
        if vo.abstract:
            pass  # interval mode: no instrumentation recording
        elif vo.symbolic:
            from repro.expr import ops as x

            context = x.TRUE if ctx.active is True else x.lift(ctx.active)
            ctx.record_condition_atoms(
                self.condition_point, [x.lift(o) for o in operands], context
            )
        else:
            ctx.on_condition_vector(self.condition_point, operands)
        if self.op == "not":
            return [vo.lnot(operands[0])]
        if self.op in ("and", "nand"):
            result = operands[0]
            for operand in operands[1:]:
                result = vo.land(result, operand)
        elif self.op in ("or", "nor"):
            result = operands[0]
            for operand in operands[1:]:
                result = vo.lor(result, operand)
        else:  # xor
            result = operands[0]
            for operand in operands[1:]:
                result = vo.lxor(result, operand)
        if self.op in ("nand", "nor"):
            result = vo.lnot(result)
        return [result]


def _structure(op: str, operands):
    if op == "not":
        return x.lnot(operands[0])
    if op in ("and", "nand"):
        result = operands[0]
        for operand in operands[1:]:
            result = x.land(result, operand)
    elif op in ("or", "nor"):
        result = operands[0]
        for operand in operands[1:]:
            result = x.lor(result, operand)
    else:
        result = operands[0]
        for operand in operands[1:]:
            result = x.lxor(result, operand)
    if op in ("nand", "nor"):
        result = x.lnot(result)
    return result


_REL_OPS = {"lt": "lt", "le": "le", "gt": "gt", "ge": "ge", "eq": "eq", "ne": "ne",
            "<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}


class RelationalOperator(Block):
    """``y = u1 <op> u2`` (boolean output; no instrumentation of its own)."""

    def __init__(self, name: str, op: str):
        try:
            self.op = _REL_OPS[op]
        except KeyError:
            raise ModelError(f"unknown relational op {op!r}") from None
        super().__init__(name, 2, 1)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        fn = getattr(vo, self.op)
        return [fn(inputs[0], inputs[1])]


class CompareToConstant(Block):
    """``y = u <op> constant``."""

    def __init__(self, name: str, op: str, constant):
        try:
            self.op = _REL_OPS[op]
        except KeyError:
            raise ModelError(f"unknown relational op {op!r}") from None
        super().__init__(name, 1, 1)
        self.constant = constant

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        fn = getattr(vo, self.op)
        return [fn(inputs[0], self.constant)]
