"""Routing and decision blocks: Switch, MultiportSwitch, If, SwitchCase,
subsystem output latches, selectors and array updates.

These are the blocks that *own decisions* (Definition 1 branches).  In
concrete mode they report the taken outcome into the coverage collector; in
symbolic mode they record, per outcome, the condition expression under which
that outcome is taken — the raw material of STCG's one-step solving.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ModelError
from repro.coverage.registry import Branch, CoverageRegistry, DecisionKind
from repro.model.block import Block, StateElement

_CRITERIA = ("gt", "ge", "ne0", "bool")


class Switch(Block):
    """Three-port switch: passes input 0 when the control condition holds,
    else input 2 (inputs are ``(on_true, control, on_false)`` like Simulink).

    Criterion on the control port ``u2``: ``u2 > threshold`` (``gt``),
    ``u2 >= threshold`` (``ge``), ``u2 != 0`` (``ne0``) or boolean pass-through
    (``bool``).
    """

    def __init__(self, name: str, criterion: str = "bool", threshold=0):
        if criterion not in _CRITERIA:
            raise ModelError(f"unknown switch criterion {criterion!r}")
        super().__init__(name, 3, 1)
        self.criterion = criterion
        self.threshold = threshold
        self.decision = None

    def register_coverage(
        self, registry: CoverageRegistry, parent: Optional[Branch]
    ) -> None:
        self.decision = registry.register_decision(
            self.path, DecisionKind.SWITCH, ("true", "false"), parent
        )

    def _condition(self, vo, control):
        if self.criterion == "gt":
            return vo.gt(control, self.threshold)
        if self.criterion == "ge":
            return vo.ge(control, self.threshold)
        if self.criterion == "ne0":
            return vo.ne(control, 0)
        return vo.to_bool(control)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        condition = self._condition(vo, inputs[1])
        if vo.symbolic:
            ctx.record_outcome_conditions(
                self.decision, [condition, vo.lnot(condition)]
            )
            return [vo.ite(condition, inputs[0], inputs[2])]
        taken = 0 if condition else 1
        ctx.on_decision(self.decision, taken)
        return [inputs[0] if condition else inputs[2]]


class MultiportSwitch(Block):
    """Routes one of N data inputs selected by an integer control value.

    ``labels[i]`` is the control value selecting data input ``i``.  When
    ``has_default`` the last data input is the default port (taken when no
    label matches), mirroring the Switch-Case block the paper's LEDLC dead
    branch lives in; without a default, a non-matching control falls back to
    the last port *without* a dedicated outcome.
    """

    def __init__(self, name: str, labels: Sequence[int], has_default: bool = True):
        if not labels:
            raise ModelError("MultiportSwitch needs at least one label")
        n_data = len(labels) + (1 if has_default else 0)
        super().__init__(name, 1 + n_data, 1)
        self.labels = tuple(int(v) for v in labels)
        self.has_default = has_default
        self.decision = None

    def register_coverage(
        self, registry: CoverageRegistry, parent: Optional[Branch]
    ) -> None:
        outcome_labels = [f"case_{v}" for v in self.labels]
        if self.has_default:
            outcome_labels.append("default")
        self.decision = registry.register_decision(
            self.path, DecisionKind.MULTIPORT, outcome_labels, parent
        )

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        control = inputs[0]
        data = inputs[1:]
        if vo.symbolic:
            control = vo.to_int(control)
            matches = [vo.eq(control, v) for v in self.labels]
            conditions = list(matches)
            if self.has_default:
                none_match = vo.lnot(matches[0])
                for match in matches[1:]:
                    none_match = vo.land(none_match, vo.lnot(match))
                conditions.append(none_match)
            ctx.record_outcome_conditions(self.decision, conditions)
            result = data[-1]
            for match, value in zip(reversed(matches), reversed(data[: len(matches)])):
                result = vo.ite(match, value, result)
            return [result]
        control = int(control)
        for index, label in enumerate(self.labels):
            if control == label:
                ctx.on_decision(self.decision, index)
                return [data[index]]
        if self.has_default:
            ctx.on_decision(self.decision, len(self.labels))
        return [data[-1]]


class IfBlock(Block):
    """An If/Elseif/Else decision source for action subsystems.

    Inputs are ``n`` boolean clause conditions; outcomes are
    ``if, elseif1, ..., else``.  The block produces no data outputs — action
    subsystems reference its outcomes through enable annotations.
    """

    def __init__(self, name: str, n_clauses: int, has_else: bool = True):
        if n_clauses < 1:
            raise ModelError("IfBlock needs at least one clause")
        super().__init__(name, n_clauses, 0)
        self.n_clauses = n_clauses
        self.has_else = has_else
        self.decision = None

    def register_coverage(
        self, registry: CoverageRegistry, parent: Optional[Branch]
    ) -> None:
        labels = ["if"] + [f"elseif{i}" for i in range(1, self.n_clauses)]
        if self.has_else:
            labels.append("else")
        self.decision = registry.register_decision(
            self.path, DecisionKind.IF, labels, parent
        )

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        conditions = [vo.to_bool(value) for value in inputs]
        if vo.symbolic:
            outcome_conditions = []
            none_before = None
            for condition in conditions:
                term = condition if none_before is None else vo.land(
                    none_before, condition
                )
                outcome_conditions.append(term)
                negated = vo.lnot(condition)
                none_before = negated if none_before is None else vo.land(
                    none_before, negated
                )
            if self.has_else:
                outcome_conditions.append(none_before)
            ctx.record_outcome_conditions(self.decision, outcome_conditions)
            return []
        for index, condition in enumerate(conditions):
            if condition:
                ctx.on_decision(self.decision, index)
                return []
        if self.has_else:
            ctx.on_decision(self.decision, self.n_clauses)
        return []


class SwitchCase(Block):
    """A Switch-Case decision source over an integer control input.

    ``cases`` is a list of label groups; case ``i`` is taken when the control
    equals any label in ``cases[i]``.  The optional default outcome is taken
    when nothing matches.
    """

    def __init__(self, name: str, cases: Sequence[Sequence[int]], has_default=True):
        if not cases:
            raise ModelError("SwitchCase needs at least one case")
        super().__init__(name, 1, 0)
        self.cases = tuple(tuple(int(v) for v in group) for group in cases)
        self.has_default = has_default
        self.decision = None

    def register_coverage(
        self, registry: CoverageRegistry, parent: Optional[Branch]
    ) -> None:
        labels = [
            "case_" + "_".join(str(v) for v in group) for group in self.cases
        ]
        if self.has_default:
            labels.append("default")
        self.decision = registry.register_decision(
            self.path, DecisionKind.SWITCH_CASE, labels, parent
        )

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        control = vo.to_int(inputs[0])
        if vo.symbolic:
            group_matches = []
            for group in self.cases:
                match = vo.eq(control, group[0])
                for label in group[1:]:
                    match = vo.lor(match, vo.eq(control, label))
                group_matches.append(match)
            conditions = []
            none_before = None
            for match in group_matches:
                term = match if none_before is None else vo.land(none_before, match)
                conditions.append(term)
                negated = vo.lnot(match)
                none_before = negated if none_before is None else vo.land(
                    none_before, negated
                )
            if self.has_default:
                conditions.append(none_before)
            ctx.record_outcome_conditions(self.decision, conditions)
            return []
        value = int(control)
        for index, group in enumerate(self.cases):
            if value in group:
                ctx.on_decision(self.decision, index)
                return []
        if self.has_default:
            ctx.on_decision(self.decision, len(self.cases))
        return []


class SubsystemOutput(Block):
    """Output latch of a conditionally executed subsystem.

    While the subsystem is active the latch passes its input through and
    stores it; while inactive it replays the held value (Simulink's "held"
    output option).  The held value is internal state.
    """

    def __init__(self, name: str, init, ty=None):
        super().__init__(name, 1, 1)
        self.init = init
        from repro.expr.types import type_of_value

        self.ty = ty if ty is not None else type_of_value(init)

    def state_spec(self) -> Sequence[StateElement]:
        return (StateElement("held", self.ty, self.init),)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        held = ctx.read_state(self, "held")
        if vo.symbolic:
            return [vo.ite(ctx.active, inputs[0], held) if ctx.active is not True
                    else inputs[0]]
        return [inputs[0] if ctx.active else held]

    def update(self, ctx, inputs, outputs) -> None:
        # write_state is gated by activation, which is exactly the latch.
        ctx.write_state(self, "held", inputs[0])


class Selector(Block):
    """Reads ``array[index]`` with the index clamped into range."""

    def __init__(self, name: str, length: int):
        if length <= 0:
            raise ModelError("Selector needs a positive array length")
        super().__init__(name, 2, 1)
        self.length = length

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        index = vo.saturate(vo.to_int(inputs[1]), 0, self.length - 1)
        return [vo.select(inputs[0], index)]


class ArrayUpdate(Block):
    """Functional array write: ``y = array with [index] = value`` (clamped)."""

    def __init__(self, name: str, length: int):
        if length <= 0:
            raise ModelError("ArrayUpdate needs a positive array length")
        super().__init__(name, 3, 1)
        self.length = length

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        index = vo.saturate(vo.to_int(inputs[1]), 0, self.length - 1)
        return [vo.store(inputs[0], index, inputs[2])]


class Mux(Block):
    """Packs N scalars into a tuple signal."""

    def __init__(self, name: str, n_in: int):
        if n_in < 1:
            raise ModelError("Mux needs at least one input")
        super().__init__(name, n_in, 1)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        if ctx.vo.abstract:
            from repro.analysis.intervalops import lift

            return [tuple(lift(v) for v in inputs)]
        if ctx.vo.symbolic:
            from repro.expr import ops as x

            lifted = [x.lift(v) for v in inputs]
            if all(e.is_const for e in lifted):
                return [tuple(e.const_value() for e in lifted)]
            # Pack symbolic scalars as a store chain over a zero base array.
            base = x.lift(tuple([0] * len(lifted)))
            for index, element in enumerate(lifted):
                base = x.store(base, index, element)
            return [base]
        return [tuple(inputs)]
