"""Data-store access blocks (the paper's global variables G/GV)."""

from __future__ import annotations

from typing import List

from repro.model.block import Block


class DataStoreRead(Block):
    """Reads a model data store.

    With ``read_current=False`` (default) the block observes the store's
    value from the start of the step (read-before-write ordering); with
    ``read_current=True`` it runs after the store's writers and observes the
    value written earlier in the same step.
    """

    def __init__(self, name: str, store: str, read_current: bool = False):
        super().__init__(name, 0, 1)
        self.store = store
        self.read_current = read_current

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        if self.read_current:
            return [ctx.current_store(self.store)]
        return [ctx.read_store(self.store)]


class DataStoreWrite(Block):
    """Writes its input into a model data store.

    The write is gated by the block's activation, so a write inside an
    inactive action subsystem leaves the store untouched (Simulink
    semantics).
    """

    def __init__(self, name: str, store: str):
        super().__init__(name, 1, 0)
        self.store = store

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return []

    def update(self, ctx, inputs, outputs) -> None:
        ctx.write_store(self.store, inputs[0])
