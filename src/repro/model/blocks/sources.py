"""Source blocks: inports, constants, counters."""

from __future__ import annotations

from typing import List, Sequence

from repro.expr.types import INT
from repro.model.block import Block, StateElement


class Inport(Block):
    """A model input port; reads its value from the step's input map."""

    def __init__(self, name: str, port_name: str):
        super().__init__(name, 0, 1)
        self.port_name = port_name

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return [ctx.input_value(self.port_name)]


class Constant(Block):
    """Emits a fixed value every step."""

    def __init__(self, name: str, value):
        super().__init__(name, 0, 1)
        self.value = value

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return [self.value]


class Counter(Block):
    """A free-running modulo counter (stateful source).

    Output is the current count; the count then advances by ``step`` and
    wraps at ``period``.  The count is internal state (Definition 2 I/IV) —
    a minimal example of the "last output value of the Ramp block" state the
    paper mentions.
    """

    def __init__(self, name: str, period: int, step: int = 1, init: int = 0):
        super().__init__(name, 0, 1)
        self.period = int(period)
        self.step = int(step)
        self.init = int(init)

    def state_spec(self) -> Sequence[StateElement]:
        return (StateElement("count", INT, self.init),)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return [ctx.read_state(self, "count")]

    def update(self, ctx, inputs, outputs) -> None:
        vo = ctx.vo
        advanced = vo.mod(vo.add(outputs[0], self.step), self.period)
        ctx.write_state(self, "count", advanced)
