"""Discrete-time stateful blocks: delays, integrators, rate limiters."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ModelError
from repro.expr.types import REAL, Type, type_of_value
from repro.model.block import Block, StateElement


class UnitDelay(Block):
    """``y[k] = u[k-1]`` — the canonical internal-state block.

    The input port has no direct feedthrough, so UnitDelay legally breaks
    algebraic loops (feedback paths).
    """

    nondirect_ports = (0,)

    def __init__(self, name: str, init, ty: Type = None):
        super().__init__(name, 1, 1)
        self.init = init
        self.ty = ty if ty is not None else type_of_value(init)

    def state_spec(self) -> Sequence[StateElement]:
        return (StateElement("x", self.ty, self.init),)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return [ctx.read_state(self, "x")]

    def update(self, ctx, inputs, outputs) -> None:
        ctx.write_state(self, "x", inputs[0])


class Memory(UnitDelay):
    """Alias of UnitDelay (Simulink's Memory block has the same discrete
    semantics at a fixed step size)."""


class DiscreteIntegrator(Block):
    """Forward-Euler accumulator with saturation: ``x += k*u`` clamped.

    Output is the pre-update accumulator value, so the block has no direct
    feedthrough and can close feedback loops.
    """

    nondirect_ports = (0,)

    def __init__(self, name: str, gain: float = 1.0, init: float = 0.0,
                 lo: float = -1.0e9, hi: float = 1.0e9):
        if not lo <= hi:
            raise ModelError("integrator bounds inverted")
        super().__init__(name, 1, 1)
        self.gain = float(gain)
        self.init = float(init)
        self.lo = float(lo)
        self.hi = float(hi)

    def state_spec(self) -> Sequence[StateElement]:
        return (StateElement("acc", REAL, self.init),)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        return [ctx.read_state(self, "acc")]

    def update(self, ctx, inputs, outputs) -> None:
        vo = ctx.vo
        advanced = vo.add(outputs[0], vo.mul(self.gain, vo.to_real(inputs[0])))
        ctx.write_state(self, "acc", vo.saturate(advanced, self.lo, self.hi))


class RateLimiter(Block):
    """Limits the per-step change of the signal to ``[-down, up]``."""

    def __init__(self, name: str, up: float, down: float, init: float = 0.0):
        if up < 0 or down < 0:
            raise ModelError("rate limits must be non-negative")
        super().__init__(name, 1, 1)
        self.up = float(up)
        self.down = float(down)
        self.init = float(init)

    def state_spec(self) -> Sequence[StateElement]:
        return (StateElement("prev", REAL, self.init),)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        prev = ctx.read_state(self, "prev")
        delta = vo.sub(vo.to_real(inputs[0]), prev)
        limited = vo.saturate(delta, -self.down, self.up)
        return [vo.add(prev, limited)]

    def update(self, ctx, inputs, outputs) -> None:
        ctx.write_state(self, "prev", outputs[0])


class MovingAccumulator(Block):
    """Sliding accumulator over the last ``n`` samples (FIFO in a tuple).

    Demonstrates tuple-valued internal state; used by filter-ish substrate
    logic in the benchmark models.
    """

    def __init__(self, name: str, n: int, init: float = 0.0):
        if n < 1:
            raise ModelError("window must be >= 1")
        super().__init__(name, 1, 1)
        self.n = n
        self.init = float(init)

    def state_spec(self) -> Sequence[StateElement]:
        from repro.expr.types import ArrayType

        window = tuple([self.init] * self.n)
        return (StateElement("window", ArrayType(REAL, self.n), window),)

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        vo = ctx.vo
        window = ctx.read_state(self, "window")
        total = vo.select(window, 0)
        for index in range(1, self.n):
            total = vo.add(total, vo.select(window, index))
        return [vo.add(total, vo.to_real(inputs[0]))]

    def update(self, ctx, inputs, outputs) -> None:
        vo = ctx.vo
        window = ctx.read_state(self, "window")
        # Shift left, append the newest sample.
        shifted = window
        for index in range(self.n - 1):
            shifted = vo.store(shifted, index, vo.select(window, index + 1))
        shifted = vo.store(shifted, self.n - 1, vo.to_real(inputs[0]))
        ctx.write_state(self, "window", shifted)
