"""One-step execution of a compiled model (concrete or symbolic)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.model.context import StepContext
from repro.model.graph import CompiledModel, PlanItem


def execute_step(compiled: CompiledModel, ctx: StepContext) -> Dict[str, object]:
    """Run every block of the plan once; returns the outport values.

    The context's mode decides whether values are concrete or symbolic.
    Next-state values accumulate in ``ctx.next_state``; the caller merges
    them into its state environment (the simulator) or threads them to the
    next unrolled step (the SLDV-like encoder).

    This is the generic interpreter: it dispatches through ``compute`` /
    ``update`` on every block.  The concrete-only fast path lives in
    :mod:`repro.kernel`, which must stay observably equivalent to this loop.
    """
    plan = compiled.plan
    outputs_per_item: List[Optional[List[object]]] = [None] * len(plan)
    actives: List[object] = [True] * len(plan)
    input_slots = compiled.input_slots

    for item in plan:
        input_values = _gather_inputs(item, outputs_per_item, input_slots[item.index])
        active = _item_active(item, actives, ctx)
        actives[item.index] = active
        ctx.active = active
        outputs = item.block.compute(ctx, input_values)
        if len(outputs) != item.block.n_out:
            raise SimulationError(
                f"{item.block.path!r} produced {len(outputs)} outputs, "
                f"declared {item.block.n_out}"
            )
        item.block.update(ctx, input_values, outputs)
        outputs_per_item[item.index] = outputs

    ctx.active = True
    result: Dict[str, object] = {}
    for name, index, port in compiled.outport_slots:
        values = outputs_per_item[index]
        assert values is not None
        result[name] = values[port]
    return result


def _gather_inputs(
    item: PlanItem, outputs_per_item, slots: Tuple[Tuple[int, int], ...]
) -> List[object]:
    values: List[object] = []
    for signal, (index, port) in zip(item.input_signals, slots):
        block_outputs = outputs_per_item[index]
        if block_outputs is None:
            raise SimulationError(
                f"{item.block.path!r} reads {signal.block.path!r} before it ran "
                "(nondirect port feeding a direct one?)"
            )
        values.append(block_outputs[port])
    return values


def _item_active(item: PlanItem, actives: List[object], ctx: StepContext):
    if item.enable is None:
        return True
    decision = getattr(item.enable.block, "decision", None)
    if decision is None:
        raise SimulationError(
            f"enable source {item.enable.block.path!r} has no decision"
        )
    assert item.enable_index is not None
    parent_active = actives[item.enable_index]
    if ctx.vo.symbolic:
        conditions = ctx.outcome_conditions.get(decision.decision_id)
        if conditions is None:
            raise SimulationError(
                f"decision {decision.path!r} recorded no outcome conditions"
            )
        return ctx.vo.land(parent_active, conditions[item.enable.outcome])
    taken = ctx.taken_outcomes.get(decision.decision_id)
    return bool(parent_active) and taken == item.enable.outcome
