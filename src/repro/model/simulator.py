"""Concrete simulation driver with state snapshot/restore.

The :class:`Simulator` is the "Dynamic Execution" half of STCG's loop: it
steps a compiled model with concrete inputs, reports coverage events into a
collector, and can jump to any previously captured :class:`ModelState`
(`Model.setState` in the paper's pseudo-code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import SimulationError, StateError
from repro.coverage.collector import CoverageCollector
from repro.expr.types import coerce_value
from repro.model.context import concrete_context
from repro.model.executor import execute_step
from repro.model.graph import CompiledModel
from repro.model.state import ModelState
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclass
class StepResult:
    """Outcome of one simulation step."""

    outputs: Dict[str, object]
    new_branch_ids: List[int] = field(default_factory=list)
    taken_outcomes: Dict[int, int] = field(default_factory=dict)
    new_obligations: List[object] = field(default_factory=list)

    @property
    def found_new_coverage(self) -> bool:
        """True when the step covered a new branch or condition obligation
        (Algorithm 2's ``newCover``)."""
        return bool(self.new_branch_ids) or bool(self.new_obligations)


class Simulator:
    """Steps a compiled model concretely, with snapshot/restore."""

    def __init__(
        self,
        compiled: CompiledModel,
        collector: Optional[CoverageCollector] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.compiled = compiled
        self.collector = collector
        #: Observability hook; a step is timed only when ``tracer.enabled``
        #: (steps are hot — tens of microseconds — so the disabled path
        #: must not even construct a span).
        self.tracer = tracer
        self._state: Dict[str, object] = compiled.initial_state()
        self._time = 0

    # -- state management -------------------------------------------------------

    def reset(self) -> None:
        """Return to the model's initial state (the state tree's root S0)."""
        self._state = self.compiled.initial_state()
        self._time = 0

    def get_state(self) -> ModelState:
        return ModelState(self._state)

    def set_state(self, state: ModelState) -> None:
        """Switch the model to a previously captured state."""
        values = state.values
        expected = set(self.compiled.state_elements)
        if set(values) != expected:
            missing = expected - set(values)
            extra = set(values) - expected
            raise StateError(
                "snapshot does not match model layout "
                f"(missing={sorted(missing)[:3]}, extra={sorted(extra)[:3]})"
            )
        self._state = dict(values)

    @property
    def time_index(self) -> int:
        return self._time

    # -- stepping ----------------------------------------------------------------

    def step(self, inputs: Mapping[str, object]) -> StepResult:
        """Execute one iteration of the model with concrete ``inputs``."""
        if self.tracer.enabled:
            with self.tracer.span("sim_step"):
                result = self._step(inputs)
            self.tracer.count("sim_steps")
            return result
        return self._step(inputs)

    def _step(self, inputs: Mapping[str, object]) -> StepResult:
        prepared = self._prepare_inputs(inputs)
        ctx = concrete_context(prepared, self._state, self.collector, self._time)
        outputs = execute_step(self.compiled, ctx)
        self._state.update(ctx.next_state)
        self._time += 1
        return StepResult(
            outputs=outputs,
            new_branch_ids=list(ctx.new_branches),
            taken_outcomes=dict(ctx.taken_outcomes),
            new_obligations=list(ctx.new_obligations),
        )

    def run(self, sequence: Sequence[Mapping[str, object]]) -> List[StepResult]:
        """Execute a whole input sequence; returns per-step results."""
        return [self.step(inputs) for inputs in sequence]

    # -- internals ---------------------------------------------------------------

    def _prepare_inputs(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        prepared: Dict[str, object] = {}
        for spec in self.compiled.inports:
            if spec.name not in inputs:
                raise SimulationError(f"missing input {spec.name!r}")
            prepared[spec.name] = coerce_value(inputs[spec.name], spec.ty)
        return prepared
