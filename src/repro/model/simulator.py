"""Concrete simulation driver with state snapshot/restore.

The :class:`Simulator` is the "Dynamic Execution" half of STCG's loop: it
steps a compiled model with concrete inputs, reports coverage events into a
collector, and can jump to any previously captured :class:`ModelState`
(`Model.setState` in the paper's pseudo-code).

By default steps run through the compiled plan kernel
(:mod:`repro.kernel`): per-block closures over pre-resolved input slots
and reused buffers, observably equivalent to the generic interpreter.
``kernel=False`` forces the interpreter (the reference semantics, and the
baseline the equivalence suite compares against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError, StateError
from repro.coverage.collector import CoverageCollector
from repro.expr.types import Type, coerce_value
from repro.kernel.plan import CompiledKernel
from repro.model.context import StepContext, concrete_context
from repro.model.executor import execute_step
from repro.model.graph import CompiledModel
from repro.model.state import ModelState
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclass
class StepResult:
    """Outcome of one simulation step."""

    outputs: Dict[str, object]
    new_branch_ids: List[int] = field(default_factory=list)
    taken_outcomes: Dict[int, int] = field(default_factory=dict)
    new_obligations: List[object] = field(default_factory=list)

    @property
    def found_new_coverage(self) -> bool:
        """True when the step covered a new branch or condition obligation
        (Algorithm 2's ``newCover``)."""
        return bool(self.new_branch_ids) or bool(self.new_obligations)


@dataclass(frozen=True)
class SequenceResult:
    """Aggregate outcome of :meth:`Simulator.run_sequence`.

    Carries only what the sequence-level callers use — the per-step detail
    (outputs, taken outcomes) is available through the ``on_step`` callback
    instead of a list of per-step objects.
    """

    #: Number of steps executed (== the sequence length unless a step raised).
    steps: int
    #: Branch ids newly covered across the whole sequence, in cover order.
    new_branch_ids: Tuple[int, ...]
    #: Count of condition obligations newly satisfied across the sequence.
    new_obligation_count: int
    #: 1-based index of the *last* step that found new coverage (branches or
    #: obligations); 0 when the sequence covered nothing new.
    last_covering_step: int

    @property
    def found_new_coverage(self) -> bool:
        return self.last_covering_step > 0


def _input_coercer(ty: Type) -> Callable[[object], object]:
    """``coerce_value(value, ty)`` specialized once per inport."""
    if ty.is_bool:
        return bool
    if ty.is_int:
        return int
    if ty.is_real:
        return float
    return lambda value: coerce_value(value, ty)


class Simulator:
    """Steps a compiled model concretely, with snapshot/restore."""

    def __init__(
        self,
        compiled: CompiledModel,
        collector: Optional[CoverageCollector] = None,
        tracer: Tracer = NULL_TRACER,
        kernel: bool = True,
    ):
        self.compiled = compiled
        self.collector = collector
        #: Observability hook; a step is timed only when ``tracer.enabled``
        #: (steps are hot — tens of microseconds — so the disabled path
        #: must not even construct a span).
        self.tracer = tracer
        self._state: Dict[str, object] = compiled.initial_state()
        self._time = 0
        #: Per-inport coercion callables, resolved once instead of walking
        #: the type spec on every step.
        self._coercers: Tuple[Tuple[str, Callable], ...] = tuple(
            (spec.name, _input_coercer(spec.ty)) for spec in compiled.inports
        )
        self._kernel: Optional[CompiledKernel] = (
            CompiledKernel(compiled) if kernel else None
        )
        #: Reusable step context (kernel path only; reset every step).
        self._ctx: Optional[StepContext] = None
        self._kernel_steps = 0
        #: Outport values of the last interpreter step (kernel-off path).
        self._outputs: Dict[str, object] = {}

    # -- state management -------------------------------------------------------

    def reset(self) -> None:
        """Return to the model's initial state (the state tree's root S0)."""
        self._state = self.compiled.initial_state()
        self._time = 0

    def get_state(self) -> ModelState:
        return ModelState(self._state)

    def set_state(self, state: ModelState) -> None:
        """Switch the model to a previously captured state."""
        values = state.values
        expected = set(self.compiled.state_elements)
        if set(values) != expected:
            missing = expected - set(values)
            extra = set(values) - expected
            raise StateError(
                "snapshot does not match model layout "
                f"(missing={sorted(missing)[:3]}, extra={sorted(extra)[:3]})"
            )
        self._state = dict(values)

    @property
    def time_index(self) -> int:
        return self._time

    # -- kernel introspection ----------------------------------------------------

    @property
    def kernel_enabled(self) -> bool:
        return self._kernel is not None

    def kernel_stats(self) -> Optional[Dict[str, object]]:
        """Specialization counts + steps run through the kernel (or None)."""
        if self._kernel is None:
            return None
        stats = self._kernel.stats()
        stats["kernel_steps"] = self._kernel_steps
        return stats

    # -- stepping ----------------------------------------------------------------

    def step(self, inputs: Mapping[str, object]) -> StepResult:
        """Execute one iteration of the model with concrete ``inputs``."""
        if self.tracer.enabled:
            with self.tracer.span("sim_step"):
                result = self._step(inputs)
            self.tracer.count("sim_steps")
            return result
        return self._step(inputs)

    def _step(self, inputs: Mapping[str, object]) -> StepResult:
        ctx = self._execute(self._prepare_inputs(inputs))
        outputs = (
            self._kernel.read_outputs()
            if self._kernel is not None
            else self._outputs  # set by the interpreter branch of _execute
        )
        self._state.update(ctx.next_state)
        self._time += 1
        return StepResult(
            outputs=outputs,
            new_branch_ids=list(ctx.new_branches),
            taken_outcomes=dict(ctx.taken_outcomes),
            new_obligations=list(ctx.new_obligations),
        )

    def run(self, sequence: Sequence[Mapping[str, object]]) -> List[StepResult]:
        """Execute a whole input sequence; returns per-step results.

        Compatibility API: builds one :class:`StepResult` per step.  Callers
        that only need aggregate coverage information should use
        :meth:`run_sequence`, which avoids the per-step object churn.
        """
        return [self.step(inputs) for inputs in sequence]

    def run_sequence(
        self,
        sequence: Sequence[Mapping[str, object]],
        on_step: Optional[Callable[[int, Tuple[int, ...], bool], None]] = None,
        on_obligations: Optional[Callable[[int, List[object]], None]] = None,
    ) -> SequenceResult:
        """Execute a whole input sequence without per-step result objects.

        Coverage events thread through the collector exactly as with
        :meth:`step`.  ``on_step(index, new_branch_ids, found_new)`` — if
        given — is invoked after each step (0-based index), once the state
        update for that step is visible via :meth:`get_state`.
        ``on_obligations(index, new_obligations)`` is invoked only for
        steps that satisfied new condition obligations, so callers that
        need the obligation details (e.g. suite minimization's goal
        replay) avoid the per-step :class:`StepResult` churn without
        losing them.
        """
        tracer = self.tracer
        traced = tracer.enabled
        steps = 0
        collected: List[int] = []
        obligations = 0
        covering = 0
        for inputs in sequence:
            prepared = self._prepare_inputs(inputs)
            if traced:
                with tracer.span("sim_step"):
                    ctx = self._execute(prepared)
                    self._state.update(ctx.next_state)
                    self._time += 1
                tracer.count("sim_steps")
            else:
                ctx = self._execute(prepared)
                self._state.update(ctx.next_state)
                self._time += 1
            steps += 1
            new_branch_ids = tuple(ctx.new_branches)
            found_new = bool(new_branch_ids) or bool(ctx.new_obligations)
            if found_new:
                covering = steps
                collected.extend(new_branch_ids)
                obligations += len(ctx.new_obligations)
                if on_obligations is not None and ctx.new_obligations:
                    on_obligations(steps - 1, list(ctx.new_obligations))
            if on_step is not None:
                on_step(steps - 1, new_branch_ids, found_new)
        return SequenceResult(
            steps=steps,
            new_branch_ids=tuple(collected),
            new_obligation_count=obligations,
            last_covering_step=covering,
        )

    # -- internals ---------------------------------------------------------------

    def _execute(self, prepared: Dict[str, object]) -> StepContext:
        """Run one step on prepared inputs; returns the (possibly reused)
        context carrying coverage events and next-state writes."""
        kernel = self._kernel
        if kernel is not None:
            ctx = self._ctx
            if ctx is None:
                ctx = self._ctx = concrete_context(
                    prepared, self._state, self.collector, self._time
                )
            else:
                ctx.reset_step(prepared, self._state, self.collector, self._time)
            kernel.run_step(ctx)
            self._kernel_steps += 1
            return ctx
        ctx = concrete_context(prepared, self._state, self.collector, self._time)
        self._outputs = execute_step(self.compiled, ctx)
        return ctx

    def _prepare_inputs(self, inputs: Mapping[str, object]) -> Dict[str, object]:
        prepared: Dict[str, object] = {}
        for name, coerce in self._coercers:
            if name not in inputs:
                raise SimulationError(f"missing input {name!r}")
            prepared[name] = coerce(inputs[name])
        return prepared
