"""Step execution context: the bridge between blocks and the engine.

The context carries, for one model step:

* the operation table (:data:`~repro.model.valueops.CONCRETE` or
  :data:`~repro.model.valueops.SYMBOLIC`),
* the input values (concrete values, or symbolic variables),
* state access — reads come from the current state environment, writes go
  to the next-state environment, gated by the *activation* of the block's
  conditional context,
* coverage event sinks (concrete mode) and decision-condition recording
  (symbolic mode).

Activation: a block inside an (possibly nested) action subsystem only
"executes" when its enabling decision outcomes hold.  Concretely the engine
computes a bool; symbolically an expression.  ``compute`` still runs either
way (dataflow blocks are pure), but state writes and coverage events are
gated here, which yields exactly Simulink's conditional-execution semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.coverage.collector import CoverageCollector
from repro.coverage.registry import ConditionPoint, Decision
from repro.expr.ast import Expr
from repro.model.block import Block
from repro.model.valueops import CONCRETE, SYMBOLIC, ValueOps


class StepContext:
    """Mutable context threaded through one step of model execution."""

    def __init__(
        self,
        vo: ValueOps,
        inputs: Dict[str, object],
        state_env: Dict[str, object],
        next_state: Dict[str, object],
        collector: Optional[CoverageCollector] = None,
        time_index: int = 0,
    ):
        self.vo = vo
        self.inputs = inputs
        self.state_env = state_env
        self.next_state = next_state
        self.collector = collector
        self.time_index = time_index
        #: Activation of the block currently executing (bool or Expr).
        self.active: object = True
        #: Decision outcomes taken this step (concrete): decision_id -> outcome.
        self.taken_outcomes: Dict[int, int] = {}
        #: Outcome condition expressions (symbolic): decision_id -> [Expr].
        self.outcome_conditions: Dict[int, List[Expr]] = {}
        #: Condition-atom expressions (symbolic): point_id -> (atoms, context)
        #: where ``context`` is the condition under which the point is
        #: evaluated this step.
        self.condition_atoms: Dict[int, Tuple[List[Expr], Expr]] = {}
        #: Branches newly covered during this step (concrete mode).
        self.new_branches: List[int] = []
        #: Condition obligations newly satisfied this step (concrete mode).
        self.new_obligations: List[object] = []

    def reset_step(
        self,
        inputs: Dict[str, object],
        state_env: Dict[str, object],
        collector: Optional[CoverageCollector],
        time_index: int,
    ) -> None:
        """Rebind this context for the next step instead of reallocating it.

        Used by the kernel sequence runner (concrete mode only): the caller
        must have consumed ``next_state`` / ``new_branches`` /
        ``new_obligations`` before calling this, because they are cleared in
        place.
        """
        self.inputs = inputs
        self.state_env = state_env
        self.collector = collector
        self.time_index = time_index
        self.active = True
        self.taken_outcomes.clear()
        self.next_state.clear()
        self.new_branches.clear()
        self.new_obligations.clear()

    # -- input / state access ---------------------------------------------------

    def input_value(self, name: str):
        try:
            return self.inputs[name]
        except KeyError:
            raise SimulationError(f"missing input {name!r}") from None

    def read_state(self, block: Block, key: str):
        return self.read_state_path(f"{block.path}.{key}")

    def read_state_path(self, path: str):
        try:
            return self.state_env[path]
        except KeyError:
            raise SimulationError(f"unknown state element {path!r}") from None

    def write_state(self, block: Block, key: str, value) -> None:
        self.write_state_path(f"{block.path}.{key}", value)

    def write_state_path(self, path: str, value) -> None:
        """Write a next-state value, gated by the current activation."""
        if path not in self.state_env:
            raise SimulationError(f"unknown state element {path!r}")
        if self.vo.symbolic:
            if self.active is True:
                self.next_state[path] = value
            else:
                current = self.next_state.get(path, self.state_env[path])
                self.next_state[path] = self.vo.ite(self.active, value, current)
        else:
            if self.active:
                self.next_state[path] = value

    # Data stores share the state environment under a reserved prefix.

    @staticmethod
    def store_path(name: str) -> str:
        return f"$store.{name}"

    def read_store(self, name: str):
        return self.read_state_path(self.store_path(name))

    def write_store(self, name: str, value) -> None:
        self.write_state_path(self.store_path(name), value)

    def current_store(self, name: str):
        """Latest value written to a store this step (or the step-start value).

        Simulink data-store reads observe writes that executed earlier in the
        same step, so reads go through this instead of ``read_store``.
        """
        path = self.store_path(name)
        if path in self.next_state:
            return self.next_state[path]
        return self.read_state_path(path)

    # -- coverage events (concrete) ----------------------------------------------

    def on_decision(self, decision: Decision, outcome: int) -> None:
        if self.vo.symbolic:
            raise SimulationError("on_decision is a concrete-mode event")
        if not self.active:
            return
        self.taken_outcomes[decision.decision_id] = outcome
        if self.collector is not None:
            branch = decision.branches[outcome]
            if self.collector.on_branch(branch):
                self.new_branches.append(branch.branch_id)

    def on_condition_vector(self, point: ConditionPoint, vector) -> None:
        if not self.active:
            return
        if self.collector is not None:
            newly = self.collector.on_condition_vector(
                point, tuple(bool(v) for v in vector)
            )
            self.new_obligations.extend(newly)

    # -- symbolic recording ---------------------------------------------------------

    def record_outcome_conditions(self, decision: Decision, conditions: List[Expr]):
        if len(conditions) != decision.n_outcomes:
            raise SimulationError(
                f"decision {decision.path!r} expects {decision.n_outcomes} "
                f"outcome conditions, got {len(conditions)}"
            )
        self.outcome_conditions[decision.decision_id] = list(conditions)

    def record_condition_atoms(
        self, point: ConditionPoint, atoms: List[Expr], context: Expr
    ) -> None:
        """Record the symbolic atom expressions of a condition point plus the
        condition under which the point is evaluated (enable chain / guard
        evaluation order)."""
        self.condition_atoms[point.point_id] = (list(atoms), context)


def concrete_context(
    inputs: Dict[str, object],
    state_env: Dict[str, object],
    collector: Optional[CoverageCollector],
    time_index: int,
) -> StepContext:
    return StepContext(
        CONCRETE, inputs, state_env, {}, collector=collector, time_index=time_index
    )


def symbolic_context(
    inputs: Dict[str, object],
    state_env: Dict[str, object],
    time_index: int = 0,
) -> StepContext:
    return StepContext(SYMBOLIC, inputs, state_env, {}, time_index=time_index)
