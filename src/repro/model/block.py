"""Block base class and state-element declarations.

A block is a named node with ``n_in`` input ports and ``n_out`` output
ports.  Blocks are *pure* over (inputs, state): ``compute`` returns the
output values and ``update`` produces the next state through the context.
Both run in concrete and symbolic mode via the context's
:class:`~repro.model.valueops.ValueOps` table.

Two-phase semantics follow Simulink: within one model step, first every
block's outputs are computed in topological order, then states advance.  In
this implementation ``update`` is invoked immediately after the block's
``compute`` (valid because the execution order is topological and state
reads happen in ``compute`` before the write).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.expr.types import Type
from repro.coverage.registry import Branch, CoverageRegistry


#: State element categories, matching the paper's Definition 2.
STATE_GLOBAL = "global"  # G/GV: data stores
STATE_CHART = "chart"  # M/ML: state machine locations (and chart locals)
STATE_INTERNAL = "internal"  # I/IV: block internal state


@dataclass(frozen=True)
class StateElement:
    """Declaration of one state element owned by a block or the model."""

    name: str
    ty: Type
    init: object
    category: str = STATE_INTERNAL


class Block:
    """Base class for all blocks."""

    #: Set False on input ports with no direct feedthrough (e.g. UnitDelay):
    #: the block's output does not depend on this step's value of that port,
    #: so the wire does not constrain execution order.
    #: ``None`` means every port is direct feedthrough.
    nondirect_ports: Optional[Tuple[int, ...]] = None

    def __init__(self, name: str, n_in: int, n_out: int):
        if not name:
            raise ModelError("block name must be non-empty")
        self.name = name
        self.path = name  # rewritten by the model when added (prefixing)
        self.n_in = n_in
        self.n_out = n_out

    # -- state ----------------------------------------------------------------

    def state_spec(self) -> Sequence[StateElement]:
        """Declarations of this block's internal state elements."""
        return ()

    # -- coverage ----------------------------------------------------------------

    def register_coverage(
        self, registry: CoverageRegistry, parent: Optional[Branch]
    ) -> None:
        """Register decisions / condition points (called once at compile)."""

    # -- execution ---------------------------------------------------------------

    def compute(self, ctx, inputs: List[object]) -> List[object]:
        """Return output values for this step (state reads via ``ctx``)."""
        raise NotImplementedError

    def update(self, ctx, inputs: List[object], outputs: List[object]) -> None:
        """Advance internal state (writes via ``ctx.write_state``)."""

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.path!r})"
