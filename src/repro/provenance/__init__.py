"""Objective-level coverage provenance (``repro.provenance/1``).

See :mod:`repro.provenance.ledger` for the ledger itself and the merge
used by the telemetry manifest fold.
"""

from repro.provenance.ledger import (
    NULL_LEDGER,
    PROVENANCE_SCHEMA,
    ProvenanceLedger,
    all_objective_ids,
    branch_objective_id,
    merge_provenance,
    obligation_objective_id,
    uncovered_objectives,
)

__all__ = [
    "NULL_LEDGER",
    "PROVENANCE_SCHEMA",
    "ProvenanceLedger",
    "all_objective_ids",
    "branch_objective_id",
    "merge_provenance",
    "obligation_objective_id",
    "uncovered_objectives",
]
