"""The objective-level coverage provenance ledger (``repro.provenance/1``).

Table III's claim is per-objective: STCG covers Decision/Condition/MCDC
objectives the baselines miss.  The ledger turns that from an aggregate
percentage into an audit trail.  For every objective it records either

* **who covered it** — the (case, step, origin) of the first covering
  execution (``case`` is ``None`` when the covering candidate was not
  kept in the suite, which happens in the baselines' greedy selection), or
* **why it is still uncovered** — per-stage solver verdict counters
  (``"unsat:contract"``, ``"unknown:avm"``, ...), cache short-circuit
  counters (verdict-cache UNSAT replays, constant-false folds), and a
  bounded trail of the first few attempts with their (state-tree node,
  verdict, stage, engine, compiled) attribution.

Objective identifiers are stable strings derived from the model's
coverage registry:

* ``D:<decision path>:<outcome label>`` — one per model branch,
* ``C:<point path>:c<atom>=<T|F>`` — condition value obligations,
* ``M:<point path>:c<atom>=<T|F>`` — MCDC (determining) obligations.

The ledger is pure observation: it never feeds back into generation, it
consumes no randomness and it records no wall-clock timestamps, so
fixed-seed suites are bit-identical with provenance on or off and the
snapshot itself is deterministic.  :func:`merge_provenance` folds the
per-repetition snapshots into one per-(model, tool) document inside
``build_manifest`` — commutatively over already-canonically-sorted cells,
which is what keeps ``workers=1`` and ``workers=N`` manifests
bit-identical (same contract as the metrics fold).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.coverage.collector import ConditionObligation
from repro.coverage.registry import Branch, CoverageRegistry

__all__ = [
    "NULL_LEDGER",
    "PROVENANCE_SCHEMA",
    "ProvenanceLedger",
    "branch_objective_id",
    "merge_provenance",
    "obligation_objective_id",
]

#: Version tag carried by every ledger snapshot and telemetry event.
PROVENANCE_SCHEMA = "repro.provenance/1"

#: Attempts kept verbatim per uncovered objective (the counters keep
#: counting past this; only the detailed trail is bounded).
TRAIL_LIMIT = 8


def branch_objective_id(branch: Branch) -> str:
    """``D:<decision path>:<outcome label>`` for one model branch."""
    return f"D:{branch.label}"


def obligation_objective_id(
    registry: CoverageRegistry, obligation: ConditionObligation
) -> str:
    """``C:``/``M:`` objective id for a condition/MCDC obligation."""
    point = registry.condition_point(obligation.point_id)
    kind = "M" if obligation.determining else "C"
    polarity = "T" if obligation.polarity else "F"
    return f"{kind}:{point.path}:c{obligation.atom}={polarity}"


def all_objective_ids(registry: CoverageRegistry) -> List[str]:
    """Every objective of a model, in canonical enumeration order.

    Branches first (registry order), then condition value obligations,
    then MCDC obligations — matching
    :meth:`~repro.coverage.collector.CoverageCollector.all_condition_obligations`.
    """
    ids = [branch_objective_id(branch) for branch in registry.branches]
    for determining in (False, True):
        kind = "M" if determining else "C"
        for point in registry.condition_points:
            for atom in range(point.n_atoms):
                for polarity in ("T", "F"):
                    ids.append(f"{kind}:{point.path}:c{atom}={polarity}")
    return ids


class _NullLedger:
    """Shared no-op ledger: provenance off keeps every hook below the
    noise floor (mirrors ``NULL_TRACER``)."""

    enabled = False

    def begin_case(self, origin: str) -> None:
        pass

    def cover_branch(self, branch_id: int, step: int) -> None:
        pass

    def cover_obligation(self, obligation, step: int) -> None:
        pass

    def end_case(self, case_index: Optional[int]) -> None:
        pass

    def attempt(self, *args, **kwargs) -> None:
        pass

    def skip(self, objective_id, kind: str) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {}


NULL_LEDGER = _NullLedger()


class ProvenanceLedger:
    """Records objective coverage attribution and solver-attempt audits.

    One ledger lives for one generation run.  The generator brackets each
    executed sequence with :meth:`begin_case`/:meth:`end_case`; cover
    events in between are buffered and committed with the final case
    index (``None`` when the candidate was discarded), so attribution is
    correct even though the case index is only known after execution.
    """

    enabled = True

    def __init__(self, registry: CoverageRegistry, tool: str):
        self._registry = registry
        self.tool = tool
        #: objective id -> {"case", "step", "origin"} of the first cover.
        self._covered: Dict[str, Dict[str, object]] = {}
        #: objective id -> {"<verdict>:<stage>": count} solver attempts.
        self._attempts: Dict[str, Dict[str, int]] = {}
        #: objective id -> {"verdict"|"const_false": count} short-circuits.
        self._skips: Dict[str, Dict[str, int]] = {}
        #: objective id -> first few attempts in full detail.
        self._trails: Dict[str, List[Dict[str, object]]] = {}
        self._pending: List[Tuple[str, int]] = []
        self._origin: Optional[str] = None

    # -- objective ids -------------------------------------------------

    def branch_objective(self, branch: Branch) -> str:
        return branch_objective_id(branch)

    def branch_id_objective(self, branch_id: int) -> str:
        return branch_objective_id(self._registry.branch(branch_id))

    def obligation_objective(self, obligation: ConditionObligation) -> str:
        return obligation_objective_id(self._registry, obligation)

    # -- coverage attribution ------------------------------------------

    def begin_case(self, origin: str) -> None:
        """Open a candidate execution; buffered covers commit at the end."""
        self._pending = []
        self._origin = origin

    def cover_branch(self, branch_id: int, step: int) -> None:
        """A branch newly covered at 1-based ``step`` of the open case."""
        self._pending.append((self.branch_id_objective(branch_id), step))

    def cover_obligation(self, obligation: ConditionObligation, step: int) -> None:
        """A condition/MCDC obligation newly satisfied at ``step``."""
        self._pending.append((self.obligation_objective(obligation), step))

    def end_case(self, case_index: Optional[int]) -> None:
        """Commit the buffered covers.

        ``case_index`` is the suite index of the kept test case, or
        ``None`` when the candidate was discarded (its coverage still
        counts — baseline greedy selection drops obligation-only
        candidates, and the audit must say so).
        """
        origin = self._origin
        for objective_id, step in self._pending:
            if objective_id not in self._covered:
                self._covered[objective_id] = {
                    "case": case_index,
                    "step": step,
                    "origin": origin,
                }
        self._pending = []
        self._origin = None

    # -- solver-attempt audit ------------------------------------------

    def attempt(
        self,
        objective_id: str,
        node: int,
        verdict: str,
        stage: Optional[str],
        engine: str,
        compiled: bool,
    ) -> None:
        """One solver attempt for an objective.

        ``node`` is the state-tree node id (STCG) or the unroll depth
        (SLDV); ``verdict`` is the ``Status`` value; ``stage`` the
        engine's deciding stage tag; ``engine`` ``"full"``/``"lite"``;
        ``compiled`` whether a solver-kernel bundle was in play.
        """
        key = f"{verdict}:{stage or 'none'}"
        counts = self._attempts.setdefault(objective_id, {})
        counts[key] = counts.get(key, 0) + 1
        trail = self._trails.setdefault(objective_id, [])
        if len(trail) < TRAIL_LIMIT:
            trail.append(
                {
                    "node": node,
                    "verdict": verdict,
                    "stage": stage or "none",
                    "engine": engine,
                    "compiled": bool(compiled),
                }
            )

    def skip(self, objective_id: str, kind: str) -> None:
        """A cache short-circuit: ``"verdict"`` (cached-UNSAT replay) or
        ``"const_false"`` (branch condition folded to constant false)."""
        skips = self._skips.setdefault(objective_id, {})
        skips[kind] = skips.get(kind, 0) + 1

    # -- snapshot ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The deterministic ``repro.provenance/1`` document.

        Objectives appear in canonical enumeration order; covered entries
        carry the attribution triple plus the failed-attempt count that
        preceded coverage, uncovered entries the full audit chain.  No
        timestamps anywhere — bit-identity is part of the contract.
        """
        objectives: Dict[str, Dict[str, object]] = {}
        covered_count = 0
        for objective_id in all_objective_ids(self._registry):
            cover = self._covered.get(objective_id)
            if cover is not None:
                covered_count += 1
                attempts = self._attempts.get(objective_id, {})
                failed = sum(
                    count for key, count in attempts.items()
                    if not key.startswith("sat:")
                )
                objectives[objective_id] = {
                    "status": "covered",
                    "case": cover["case"],
                    "step": cover["step"],
                    "origin": cover["origin"],
                    "failed_attempts": failed,
                }
            else:
                objectives[objective_id] = {
                    "status": "uncovered",
                    "attempts": dict(
                        sorted(self._attempts.get(objective_id, {}).items())
                    ),
                    "skips": dict(
                        sorted(self._skips.get(objective_id, {}).items())
                    ),
                    "trail": [
                        dict(row) for row in self._trails.get(objective_id, [])
                    ],
                }
        return {
            "schema": PROVENANCE_SCHEMA,
            "tool": self.tool,
            "objectives": objectives,
            "totals": {
                "objectives": len(objectives),
                "covered": covered_count,
                "uncovered": len(objectives) - covered_count,
            },
        }


def merge_provenance(
    snapshots: Sequence[Tuple[object, Dict[str, object]]],
) -> Dict[str, object]:
    """Fold per-repetition snapshots into one (model, tool) document.

    ``snapshots`` is ``[(repetition, snapshot), ...]`` in canonical cell
    order (``build_manifest`` sorts cells before calling this).  An
    objective is covered iff any repetition covered it — the first
    repetition in canonical order wins attribution and is recorded in
    the entry's ``repetition`` field; an objective uncovered everywhere
    sums its attempt/skip counters across repetitions and keeps the
    first non-empty trail.
    """
    order: List[str] = []
    seen: set = set()
    for _, snapshot in snapshots:
        for objective_id in snapshot.get("objectives") or {}:
            if objective_id not in seen:
                seen.add(objective_id)
                order.append(objective_id)
    merged: Dict[str, Dict[str, object]] = {}
    covered_count = 0
    for objective_id in order:
        cover = None
        for repetition, snapshot in snapshots:
            entry = (snapshot.get("objectives") or {}).get(objective_id)
            if entry and entry.get("status") == "covered":
                cover = dict(entry)
                cover["repetition"] = repetition
                break
        if cover is not None:
            covered_count += 1
            merged[objective_id] = cover
            continue
        attempts: Dict[str, int] = {}
        skips: Dict[str, int] = {}
        trail: List[Dict[str, object]] = []
        for _, snapshot in snapshots:
            entry = (snapshot.get("objectives") or {}).get(objective_id)
            if not entry:
                continue
            for key, count in (entry.get("attempts") or {}).items():
                attempts[key] = attempts.get(key, 0) + int(count)
            for key, count in (entry.get("skips") or {}).items():
                skips[key] = skips.get(key, 0) + int(count)
            if not trail and entry.get("trail"):
                trail = [dict(row) for row in entry["trail"]]
        merged[objective_id] = {
            "status": "uncovered",
            "attempts": dict(sorted(attempts.items())),
            "skips": dict(sorted(skips.items())),
            "trail": trail,
        }
    tool = ""
    for _, snapshot in snapshots:
        if snapshot.get("tool"):
            tool = str(snapshot["tool"])
            break
    return {
        "schema": PROVENANCE_SCHEMA,
        "tool": tool,
        "runs": len(snapshots),
        "objectives": merged,
        "totals": {
            "objectives": len(merged),
            "covered": covered_count,
            "uncovered": len(merged) - covered_count,
        },
    }


def uncovered_objectives(
    snapshot: Dict[str, object],
) -> List[Tuple[str, Dict[str, object]]]:
    """The uncovered (id, entry) pairs of one snapshot, in ledger order."""
    return [
        (objective_id, entry)
        for objective_id, entry in (snapshot.get("objectives") or {}).items()
        if entry.get("status") == "uncovered"
    ]
