"""Dev harness: solverc equivalence + micro throughput comparison.

Not part of the test suite — run manually:
    PYTHONPATH=src python devtools/solverc_check.py [model ...]
"""

import random
import sys
import time

from repro.coverage.collector import CoverageCollector
from repro.model.inputs import random_input
from repro.model.simulator import Simulator
from repro.models.registry import BENCHMARKS, SIMPLE_CPUTASK
from repro.solver.encoder import OneStepEncoding
from repro.solver.engine import SolverConfig, SolverEngine
from repro.solverc import ConstraintCompiler


def gather_constraints(model, steps=40, seed=11):
    compiled = model.build()
    collector = CoverageCollector(compiled.registry)
    sim = Simulator(compiled, collector)
    rng = random.Random(seed)
    problems = []
    states = [sim.get_state()]
    for _ in range(steps):
        sim.step(random_input(compiled.inports, rng))
        states.append(sim.get_state())
    branches = list(compiled.registry.branches)
    for state in states[:: max(1, len(states) // 12)]:
        encoding = OneStepEncoding(compiled, state)
        for branch in branches:
            problems.append(
                (encoding.path_constraint(branch), encoding.variables)
            )
    return problems


def result_key(result):
    return (
        result.status,
        result.model,
        result.stats.stage,
        result.stats.samples,
        result.stats.avm_evaluations,
    )


def check_model(model):
    problems = gather_constraints(model)
    config = SolverConfig(max_samples=48, avm_evaluations=700,
                          time_budget_s=10.0)
    compiler = ConstraintCompiler()

    interp = SolverEngine(config)
    rng_i = random.Random(99)
    t0 = time.perf_counter()
    base = [
        result_key(interp.solve(c, v, rng_i)) for c, v in problems
    ]
    t_interp = time.perf_counter() - t0

    kern = SolverEngine(config)
    rng_k = random.Random(99)
    compiled_list = [compiler.compile(c, v) for c, v in problems]
    t0 = time.perf_counter()
    fast = [
        result_key(kern.solve(c, v, rng_k, compiled=comp))
        for (c, v), comp in zip(problems, compiled_list)
    ]
    t_kern = time.perf_counter() - t0

    mismatches = [
        (i, a, b) for i, (a, b) in enumerate(zip(base, fast)) if a != b
    ]
    # Second kernel pass exercises the contract_result cache path.
    kern2 = SolverEngine(config)
    rng_k2 = random.Random(99)
    t0 = time.perf_counter()
    warm = [
        result_key(kern2.solve(c, v, rng_k2, compiled=comp))
        for (c, v), comp in zip(problems, compiled_list)
    ]
    t_warm = time.perf_counter() - t0
    warm_mismatch = sum(1 for a, b in zip(base, warm) if a != b)

    print(
        f"{model.name:12s} n={len(problems):4d} "
        f"interp={t_interp:6.3f}s kern={t_kern:6.3f}s "
        f"warm={t_warm:6.3f}s speedup={t_interp / t_kern:4.2f}x "
        f"warm-speedup={t_interp / t_warm:4.2f}x "
        f"mismatches={len(mismatches)} warm-mismatches={warm_mismatch}"
    )
    print("  ", {k: v for k, v in kern.solverc.counts.items() if v})
    print("  ", {k: v for k, v in compiler.stats.counts.items() if v})
    for i, a, b in mismatches[:3]:
        print("   MISMATCH", i)
        print("     interp:", a)
        print("     kernel:", b)
    return not mismatches and not warm_mismatch


def main():
    names = set(sys.argv[1:])
    models = list(BENCHMARKS) + [SIMPLE_CPUTASK]
    if names:
        models = [m for m in models if m.name in names]
    ok = True
    for model in models:
        ok = check_model(model) and ok
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
