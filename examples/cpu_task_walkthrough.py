#!/usr/bin/env python
"""The paper's running example: state-tree construction on SimpleCPUTask.

Reproduces Section III-C: the 13-branch simplified CPU task model of
Figure 3(a), the step-by-step solving/execution log of Table I, and the
explored state tree of Figure 3(b).

Run:  python examples/cpu_task_walkthrough.py
"""

from repro import api
from repro.models import SIMPLE_CPUTASK


def main():
    compiled = SIMPLE_CPUTASK.build()
    print(
        f"{compiled.name}: {compiled.registry.n_branches} branches, "
        f"{compiled.n_blocks} blocks"
    )
    print()
    print("Table I — the main process of constructing the state tree")
    print("=" * 70)
    print(api.table1(budget_s=10.0, seed=0))
    print()
    print("Figure 3 — model branches and the explored state tree")
    print("=" * 70)
    print(api.figure3(budget_s=10.0, seed=0))


if __name__ == "__main__":
    main()
