#!/usr/bin/env python
"""Quickstart: build a small stateful model, generate tests with STCG.

The model is a tiny credit counter: deposits accumulate credit in a data
store, and an expensive action only succeeds once enough credit has been
collected — a miniature version of the state-dependent branches the paper
targets.  Random inputs rarely thread three deposits before a spend;
STCG's state tree makes it trivial.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.expr.types import INT
from repro.model import ModelBuilder


def build_credit_model():
    b = ModelBuilder("CreditCounter")
    op = b.inport("op", INT, 0, 3)  # 1 = deposit, 2 = spend
    amount = b.inport("amount", INT, 1, 10)

    b.data_store("credit", INT, 0)
    credit = b.store_read("credit")

    sc = b.switch_case(op, cases=[[1], [2]], has_default=True)
    with sc.case(0):  # deposit
        new_credit = b.min(b.add(credit, amount), b.const(100))
        b.store_write("credit", new_credit)
        deposit_ack = b.sub_output(new_credit, init=0)
    with sc.case(1):  # spend: needs at least 25 credit
        can_afford = b.compare(credit, ">=", 25)
        b.store_write(
            "credit",
            b.switch(can_afford, b.sub(credit, b.const(25)), credit),
        )
        spend_ok = b.sub_output(
            b.switch(can_afford, b.const(1), b.const(0)), init=0
        )
    with sc.default():
        idle = b.sub_output(b.const(0), init=0)

    b.outport("deposit_ack", deposit_ack)
    b.outport("spend_ok", spend_ok)
    b.outport("idle", idle)
    return b.compile()


def main():
    compiled = build_credit_model()
    print(f"model: {compiled.name}")
    print(f"  blocks:   {compiled.n_blocks}")
    print(f"  branches: {compiled.registry.n_branches}")

    result = api.generate(compiled, tool="STCG", budget_s=10.0, seed=0)

    print("\ncoverage:")
    print(f"  decision:  {result.decision:.0%}")
    print(f"  condition: {result.condition:.0%}")
    print(f"  mcdc:      {result.mcdc:.0%}")
    print(f"  test cases: {len(result.suite)}")
    print(f"  state-tree nodes: {result.stats['tree_nodes']}")

    print("\ntest suite (text export):")
    print(result.suite.to_text())

    # Independent replay: re-execute the suite on a fresh model and verify
    # the coverage is reproduced.
    replay_collector = result.suite.replay(build_credit_model())
    print(
        f"replayed decision coverage: "
        f"{replay_collector.decision_coverage():.0%}"
    )


if __name__ == "__main__":
    main()
