#!/usr/bin/env python
"""A full regression-testing workflow on a benchmark model.

The pipeline a downstream user would run when adopting this library:

1. **prove** — verify dead logic up front by abstract interpretation so
   unreachable branches are excluded from targets (and from blame),
2. **generate** — run STCG with the proofs enabled,
3. **minimize** — reduce the suite by greedy set cover while preserving
   decision, condition and MCDC coverage,
4. **report** — replay the reduced suite on a fresh model and print the
   per-decision coverage report, annotating the proven-dead branches.

Run:  python examples/regression_workflow.py [model] [budget_seconds]
"""

import sys

from repro import api
from repro.analysis import find_dead_branches, state_envelope
from repro.core import StcgConfig
from repro.core.minimize import minimize_suite
from repro.coverage.report import full_report
from repro.models import get_benchmark


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "TWC"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 20.0
    model = get_benchmark(name)

    # 1. prove dead logic
    compiled = model.build()
    envelope = state_envelope(compiled)
    dead = find_dead_branches(compiled, envelope)
    print(f"[prove] {len(dead)} branch(es) proven unreachable:")
    for branch in dead:
        print(f"        - {branch.label}")

    # 2. generate with the proofs enabled
    result = api.generate(
        model,
        config=StcgConfig(budget_s=budget, seed=0, prove_dead_branches=True),
    )
    print(
        f"[generate] decision={result.decision:.0%} "
        f"condition={result.condition:.0%} mcdc={result.mcdc:.0%} "
        f"({len(result.suite)} cases, "
        f"{result.stats['solver_calls']} solver calls)"
    )

    # 3. minimize
    reduced = minimize_suite(model.build(), result.suite)
    print(
        f"[minimize] kept {reduced.kept_cases}/{reduced.original_cases} "
        f"cases ({reduced.reduction:.0%} reduction, "
        f"{reduced.goals_total} coverage goals preserved)"
    )

    # 4. replay + report
    collector = reduced.suite.replay(model.build())
    print()
    print(full_report(collector, known_dead=[b.label for b in dead]))


if __name__ == "__main__":
    main()
