#!/usr/bin/env python
"""Three-tool comparison on one benchmark model (mini Table III + Figure 4).

Runs the SLDV-like bounded unroller, the SimCoTest-like random search and
STCG on a chosen benchmark under the same wall-clock budget — through the
``repro.api`` facade, so the three runs fan out over worker processes —
then prints the coverage table and the coverage-versus-time plot.

Run:  python examples/tool_comparison.py [model] [budget_seconds]
      python examples/tool_comparison.py TCP 20
"""

import sys

from repro import api


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "CPUTask"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 15.0
    print(f"benchmarks available: {', '.join(api.list_models())}")
    print(f"running SLDV / SimCoTest / STCG on {name} for {budget:.0f}s each\n")

    experiment = api.run_experiment(
        models=[name],
        budget_s=budget,
        repetitions=1,
        seed=1,
        workers=3,
    )
    for failure in experiment.failures:
        print(f"[failed] {failure.label}: {failure.kind}: {failure.message}")

    per_tool = next(iter(experiment.outcomes.values()))
    results = {}
    for tool in ("SLDV", "SimCoTest", "STCG"):
        result = per_tool[tool].representative
        results[tool] = result
        print(
            f"{tool:10s} decision={result.decision:5.0%} "
            f"condition={result.condition:5.0%} mcdc={result.mcdc:5.0%} "
            f"cases={len(result.suite):3d}"
        )

    print("\ncoverage vs. time (Figure 4 style):")
    print(api.figure4_model(results, budget))

    stcg = results["STCG"]
    solver_cases = sum(1 for c in stcg.suite if c.origin == "solver")
    random_cases = sum(1 for c in stcg.suite if c.origin == "random")
    print(
        f"\nSTCG provenance: {solver_cases} solver-derived test cases, "
        f"{random_cases} from random sequences"
    )


if __name__ == "__main__":
    main()
