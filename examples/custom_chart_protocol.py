#!/usr/bin/env python
"""Authoring a chart-based model from scratch and testing it with STCG.

Builds an elevator-door controller: a Stateflow-like chart (door states
with an obstruction counter) combined with block-diagram interlock logic.
Shows the full public API surface: ChartSpec, ModelBuilder, chart
embedding, STCG generation and suite export.

Run:  python examples/custom_chart_protocol.py
"""

from repro import api
from repro.expr.types import BOOL, INT, REAL
from repro.model import ModelBuilder
from repro.stateflow import ChartSpec

# Door chart states.
CLOSED, OPENING, OPEN, CLOSING, FAULT = range(5)


def door_chart() -> ChartSpec:
    chart = ChartSpec("door")
    chart.input("cmd_open", BOOL)
    chart.input("cmd_close", BOOL)
    chart.input("obstructed", BOOL)
    chart.input("at_floor", BOOL)
    chart.output("door_state", INT, CLOSED)
    chart.local("retries", INT, 0)

    closed = chart.state("Closed", entry=[f"door_state = {CLOSED}"])
    opening = chart.state("Opening", entry=[f"door_state = {OPENING}"])
    open_ = chart.state("Open", entry=[f"door_state = {OPEN}", "retries = 0"])
    closing = chart.state("Closing", entry=[f"door_state = {CLOSING}"])
    fault = chart.state("Fault", entry=[f"door_state = {FAULT}"])
    chart.initial(closed)

    chart.transition(closed, opening, guard="cmd_open && at_floor", priority=1)
    chart.transition(opening, open_, guard="!obstructed", priority=1)
    chart.transition(open_, closing, guard="cmd_close", priority=1)
    # Obstruction while closing re-opens; three strikes is a fault.
    chart.transition(
        closing, opening,
        guard="obstructed && retries < 2",
        actions=["retries = retries + 1"],
        priority=1,
    )
    chart.transition(closing, fault, guard="obstructed", priority=2)
    chart.transition(closing, closed, guard="!obstructed", priority=3)
    chart.transition(fault, closed, guard="cmd_close && cmd_open", priority=1)
    return chart


def build_elevator_door():
    b = ModelBuilder("ElevatorDoor")
    cmd_open = b.inport("cmd_open", BOOL)
    cmd_close = b.inport("cmd_close", BOOL)
    obstructed = b.inport("obstructed", BOOL)
    speed = b.inport("cab_speed", REAL, 0.0, 2.0)

    # The cab is "at floor" when it has (nearly) stopped.
    at_floor = b.compare(speed, "<", 0.05, name="at_floor")
    chart = b.add_chart(
        door_chart(),
        {
            "cmd_open": cmd_open,
            "cmd_close": cmd_close,
            "obstructed": obstructed,
            "at_floor": at_floor,
        },
        name="door",
    )
    door_state = chart["door_state"]

    # Motion interlock: the cab may only move with the door fully closed.
    door_closed = b.compare(door_state, "==", CLOSED, name="door_closed")
    moving = b.compare(speed, ">", 0.1, name="is_moving")
    violation = b.logic(
        "and", moving, b.logic_not(door_closed), name="interlock_violation"
    )
    alarm = b.switch(violation, b.const(1), b.const(0), name="alarm")

    b.outport("door_state", door_state)
    b.outport("alarm", alarm)
    return b.compile()


def main():
    compiled = build_elevator_door()
    print(
        f"{compiled.name}: {compiled.registry.n_branches} branches, "
        f"{compiled.registry.n_condition_atoms} condition atoms"
    )
    result = api.generate(compiled, tool="STCG", budget_s=15.0, seed=2)
    print(
        f"decision={result.decision:.0%} condition={result.condition:.0%} "
        f"mcdc={result.mcdc:.0%} in {len(result.suite)} test cases"
    )

    # The fault path needs: open at floor, start closing, obstruct three
    # times — show the synthesized sequence that reaches it.
    for case in result.suite:
        if case.length >= 4:
            print(f"\na deep test case ({case.origin}, {case.length} steps):")
            print(case.to_text(result.suite.input_names))
            break

    print(
        f"\nexplored state tree: {result.stats['tree_nodes']} nodes, "
        f"{result.stats['solver_calls']} solver calls"
    )


if __name__ == "__main__":
    main()
