"""Bench: concrete step throughput, compiled kernel vs interpreter.

Concrete simulation is STCG's hot loop — Algorithm 2 replays thousands of
input sequences, and every baseline replays candidate tests the same way.
The ``repro.kernel`` plan compiler specializes that loop ahead of time
(per-block closures, pre-resolved input slots, reused buffers); this bench
measures raw steps/second on a dataflow-heavy model (CPUTask) and a
chart-heavy model (TCP), kernel on vs off.

Two guarantees are asserted, matching the issue's acceptance bar:

* the kernel sustains at least ``MIN_SPEEDUP`` x the interpreter's
  steps/second on both models, and
* both paths produce bit-identical outputs and coverage events over the
  measured sequences (speed means nothing if the semantics moved).

The ``test_steps_{kernel,interp}_*`` pairs additionally record both
timings with pytest-benchmark so CI can gate on regressions against the
committed ``BENCH_baseline.json``.
"""

import random
import statistics
import time

import pytest

from repro.coverage.collector import CoverageCollector
from repro.model.inputs import random_input
from repro.model.simulator import Simulator
from repro.models.registry import get_benchmark

SEED = 42
#: Steps per timed run; long enough to dominate per-run setup.
STEPS = 400
#: Required kernel/interpreter steps-per-second ratio (the issue's
#: acceptance threshold is 1.5x; measured margin on an idle machine is
#: ~3.5x on both models).
MIN_SPEEDUP = 1.5

MODELS = ["CPUTask", "TCP"]


def _sequence(compiled, steps=STEPS):
    rng = random.Random(SEED)
    return [random_input(compiled.inports, rng) for _ in range(steps)]


def _simulator(model_name, kernel):
    compiled = get_benchmark(model_name).build()
    return Simulator(
        compiled, CoverageCollector(compiled.registry), kernel=kernel
    )


def _timed_run(sim, sequence):
    sim.reset()
    started = time.perf_counter()
    outcome = sim.run_sequence(sequence)
    return outcome, time.perf_counter() - started


@pytest.mark.parametrize("model_name", MODELS)
def test_kernel_throughput(model_name, artifact):
    """Kernel >= MIN_SPEEDUP x interpreter steps/s, results bit-identical."""
    kernel_sim = _simulator(model_name, kernel=True)
    interp_sim = _simulator(model_name, kernel=False)
    sequence = _sequence(kernel_sim.compiled)

    # Transparency first: identical per-step results on both paths.
    for inputs in sequence[:50]:
        a = kernel_sim.step(inputs)
        b = interp_sim.step(inputs)
        assert a.outputs == b.outputs
        assert a.new_branch_ids == b.new_branch_ids
        assert kernel_sim.get_state().values == interp_sim.get_state().values

    kernel_times, interp_times = [], []
    for _ in range(5):
        _, seconds = _timed_run(kernel_sim, sequence)
        kernel_times.append(seconds)
        _, seconds = _timed_run(interp_sim, sequence)
        interp_times.append(seconds)

    kernel_rate = STEPS / statistics.mean(kernel_times)
    interp_rate = STEPS / statistics.mean(interp_times)
    speedup = kernel_rate / interp_rate
    artifact(
        f"sim_throughput_{model_name}.txt",
        f"{model_name}: {STEPS} random steps (seed {SEED}), mean of 5 runs\n"
        f"  interpreter: {interp_rate:,.0f} steps/s\n"
        f"  kernel:      {kernel_rate:,.0f} steps/s\n"
        f"  speedup:     {speedup:.2f}x (required: {MIN_SPEEDUP:.1f}x)\n",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"{model_name} kernel speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x acceptance threshold "
        f"(kernel {kernel_rate:,.0f} steps/s, "
        f"interpreter {interp_rate:,.0f} steps/s)"
    )


@pytest.mark.parametrize("model_name", MODELS)
def test_steps_kernel(model_name, benchmark):
    """Compiled-kernel sequence execution (the default concrete path)."""
    sim = _simulator(model_name, kernel=True)
    sequence = _sequence(sim.compiled)

    def run():
        sim.reset()
        return sim.run_sequence(sequence)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert outcome.steps == STEPS


@pytest.mark.parametrize("model_name", MODELS)
def test_steps_interp(model_name, benchmark):
    """Generic interpreter sequence execution (the reference semantics)."""
    sim = _simulator(model_name, kernel=False)
    sequence = _sequence(sim.compiled)

    def run():
        sim.reset()
        return sim.run_sequence(sequence)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert outcome.steps == STEPS
