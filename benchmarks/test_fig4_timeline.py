"""Bench: paper Figure 4 — decision coverage versus time, per model.

Runs the three tools on a representative subset of models and renders the
coverage-vs-time plots with STCG's solver (^) / random (*) markers.

Shape assertions:
* STCG keeps producing test cases over the run (multiple timeline events),
* most of STCG's covered branches come from solver-derived cases (the
  paper: "the higher coverage fraction is almost always obtained by our
  state-aware branch solving"),
* SimCoTest gets early coverage but is not ahead of STCG at the end.
"""

from repro import api
from repro.core.result import ORIGIN_SOLVER
from repro.harness import figure4
from repro.models import get_benchmark

from .conftest import BUDGET_S

MODELS = ("CPUTask", "AFC", "TCP", "LANSwitch")
TOOLS = ("SLDV", "SimCoTest", "STCG")


def run_all():
    all_results = {}
    for name in MODELS:
        model = get_benchmark(name)
        all_results[name] = {
            tool: api.generate(
                model, tool=tool, budget_s=BUDGET_S, seed=1, sldv_max_depth=4
            )
            for tool in TOOLS
        }
    return all_results


def test_fig4_timeline(benchmark, artifact):
    all_results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    artifact("figure4.txt", figure4(all_results, BUDGET_S))

    for name in MODELS:
        stcg = all_results[name]["STCG"]
        simco = all_results[name]["SimCoTest"]
        assert len(stcg.timeline) >= 2, name
        assert stcg.decision >= simco.decision, name
        solver_gain = sum(
            e.new_branches for e in stcg.timeline if e.origin == ORIGIN_SOLVER
        )
        random_gain = sum(
            e.new_branches for e in stcg.timeline if e.origin != ORIGIN_SOLVER
        )
        assert solver_gain >= random_gain, name
