"""Bench: solve-cache speedup on a repeated Table III cell.

The cache-heavy workload of the evaluation harness is *re-solving the same
cell*: repeated repetitions of a matrix run, re-runs of an experiment, CI
smoke jobs.  A shared :class:`~repro.cache.SolveCache` lets every run
after the first reuse the one-step encodings and the deterministic UNSAT
verdicts learned the first time — on SimpleCPUTask that removes ~90% of
the solver calls (the model's dead (state, branch) pairs are all refuted
in the draw-free fold stage, so they are all cacheable).

Two guarantees are asserted here, matching the repo's acceptance bar:

* the warm run's mean wall-clock is at least ``MIN_SPEEDUP`` times faster
  than the cold run's, and
* warm and cold runs produce bit-identical suites (observational
  transparency under a fixed seed).

The ``test_repeated_cell_{cold,warm}`` pair additionally records both
timings with pytest-benchmark so CI can gate on regressions against the
committed ``BENCH_baseline.json``.
"""

import statistics
import time

from repro.cache import SolveCache
from repro.core import StcgConfig, StcgGenerator
from repro.models.registry import get_benchmark

#: The generation budget is a cap, not a target: SimpleCPUTask reaches
#: full coverage and stops, so wall-clock measures work done, not budget.
BUDGET_S = 30.0
SEED = 0
#: Required cold/warm mean speedup (the issue's acceptance threshold is
#: 1.5x; the measured margin on an idle machine is ~2.5x).
MIN_SPEEDUP = 1.5


def _build():
    return get_benchmark("CPUTask").build()


def _run_cell(compiled, cache):
    generator = StcgGenerator(
        compiled, StcgConfig(budget_s=BUDGET_S, seed=SEED), cache=cache
    )
    return generator.run()


def _warmed_cache(compiled):
    cache = SolveCache(compiled.name)
    _run_cell(compiled, cache)
    return cache


def test_cache_speedup(artifact):
    """Warm mean >= MIN_SPEEDUP x faster, suites bit-identical."""
    compiled = _build()
    shared = _warmed_cache(compiled)
    cold_times, warm_times = [], []
    cold_result = warm_result = None
    for _ in range(5):
        started = time.perf_counter()
        cold_result = _run_cell(compiled, None)
        cold_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        warm_result = _run_cell(compiled, shared)
        warm_times.append(time.perf_counter() - started)

    # Transparency first: speed means nothing if the results moved.
    assert [c.inputs for c in cold_result.suite] == [
        c.inputs for c in warm_result.suite
    ]
    assert cold_result.decision == warm_result.decision == 1.0
    assert warm_result.stats["verdict_skips"] > 0
    assert warm_result.stats["solver_calls"] < cold_result.stats["solver_calls"]

    cold_mean = statistics.mean(cold_times)
    warm_mean = statistics.mean(warm_times)
    speedup = cold_mean / warm_mean
    artifact(
        "cache_speedup.txt",
        "repeated CPUTask cell (seed fixed, full coverage)\n"
        f"  cold mean: {cold_mean * 1000:.1f} ms over {len(cold_times)} runs\n"
        f"  warm mean: {warm_mean * 1000:.1f} ms over {len(warm_times)} runs\n"
        f"  speedup:   {speedup:.2f}x (required: {MIN_SPEEDUP:.1f}x)\n"
        f"  solver calls: {cold_result.stats['solver_calls']} cold -> "
        f"{warm_result.stats['solver_calls']} warm "
        f"({warm_result.stats['verdict_skips']} verdict skips)\n",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm cache speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x acceptance threshold "
        f"(cold {cold_mean:.3f}s, warm {warm_mean:.3f}s)"
    )


def test_repeated_cell_cold(benchmark):
    """Baseline: every run builds encodings and refutes dead pairs anew."""
    compiled = _build()
    result = benchmark.pedantic(
        lambda: _run_cell(compiled, None),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.decision == 1.0


def test_repeated_cell_warm(benchmark):
    """The same cell against a pre-warmed shared SolveCache."""
    compiled = _build()
    shared = _warmed_cache(compiled)
    result = benchmark.pedantic(
        lambda: _run_cell(compiled, shared),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.decision == 1.0
    assert result.stats["verdict_skips"] > 0
