"""Bench: symbolic solve throughput, compiled solver kernel vs interpreter.

Solving is the other half of STCG's hot path: Algorithm 1 fires one
one-step constraint per (state, branch) pair per pass, and each solve
funnels through contraction, candidate sampling and AVM descent.  The
``repro.solverc`` compiler specializes that pipeline per constraint
(compiled contractors, scalar distance closures, numpy batch tapes);
this bench measures warm solves/second on a dataflow-heavy cell
(CPUTask) and a chart-heavy cell (UTPC), kernel on vs off.

Warm is the honest configuration: during generation the compiled bundle
for a (fingerprint, target) pair is built on its second visit and reused
from the cache afterwards, so the steady-state cost is exactly a warm
re-solve.  The sampling stage dominates at the paper's Table III scale,
so the bench widens ``max_samples`` to let the batch tapes work — the
same workload the issue's >=2x acceptance cells were measured on.

Two guarantees are asserted, matching the issue's acceptance bar:

* the kernel sustains at least ``MIN_SPEEDUP`` x the interpreter's
  solves/second on both cells, and
* every solve returns the identical (status, model, stage, RNG
  consumption) tuple on both paths (speed means nothing if the verdicts
  or the downstream random draws move).

The ``test_solves_{kernel,interp}_*`` pairs additionally record both
timings with pytest-benchmark so CI can gate on regressions against the
committed ``BENCH_baseline.json``.
"""

import random
import statistics
import time

import pytest

from repro.coverage.collector import CoverageCollector
from repro.model.inputs import random_input
from repro.model.simulator import Simulator
from repro.models.registry import get_benchmark
from repro.solver.encoder import OneStepEncoding
from repro.solver.engine import SolverConfig, SolverEngine
from repro.solverc import ConstraintCompiler

SEED = 11
#: Required kernel/interpreter solves-per-second ratio (the issue's
#: acceptance threshold is 1.5x; measured margin on an idle machine is
#: >2x on both cells).
MIN_SPEEDUP = 1.5

MODELS = ["CPUTask", "UTPC"]

#: Table-III-scale per-solve budgets: a wide sampling stage (where the
#: batch tapes engage) and enough AVM evaluations for the hard targets.
CONFIG = SolverConfig(max_samples=256, avm_evaluations=700, time_budget_s=60.0)


def _problems(model_name, steps=30, states=8):
    """(constraint, variables) pairs from real one-step encodings along a
    random concrete trajectory — the same workload generation produces."""
    compiled = get_benchmark(model_name).build()
    sim = Simulator(compiled, CoverageCollector(compiled.registry))
    rng = random.Random(SEED)
    visited = [sim.get_state()]
    for _ in range(steps):
        sim.step(random_input(compiled.inports, rng))
        visited.append(sim.get_state())
    problems = []
    branches = list(compiled.registry.branches)
    for state in visited[:: max(1, len(visited) // states)]:
        encoding = OneStepEncoding(compiled, state)
        for branch in branches:
            problems.append(
                (encoding.path_constraint(branch), encoding.variables)
            )
    return problems


def _result_key(result):
    return (
        result.status,
        result.model,
        result.stats.stage,
        result.stats.samples,
        result.stats.avm_evaluations,
    )


def _interp_pass(problems):
    engine = SolverEngine(CONFIG)
    rng = random.Random(99)
    return [_result_key(engine.solve(c, v, rng)) for c, v in problems]


def _kernel_pass(problems, compiled_list):
    engine = SolverEngine(CONFIG)
    rng = random.Random(99)
    return [
        _result_key(engine.solve(c, v, rng, compiled=comp))
        for (c, v), comp in zip(problems, compiled_list)
    ]


def _compile_warm(problems):
    """Compile every bundle and run one warm-up pass so the contraction
    snapshots are recorded — the cached steady state generation reaches."""
    compiler = ConstraintCompiler()
    compiled_list = [compiler.compile(c, v) for c, v in problems]
    _kernel_pass(problems, compiled_list)
    return compiled_list


@pytest.mark.parametrize("model_name", MODELS)
def test_solver_kernel_throughput(model_name, artifact):
    """Warm kernel >= MIN_SPEEDUP x interpreter solves/s, bit-identical."""
    problems = _problems(model_name)
    compiled_list = _compile_warm(problems)

    # Transparency first: identical verdicts, models and RNG consumption.
    base = _interp_pass(problems)
    assert _kernel_pass(problems, compiled_list) == base

    kernel_times, interp_times = [], []
    for _ in range(3):
        started = time.perf_counter()
        _kernel_pass(problems, compiled_list)
        kernel_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        _interp_pass(problems)
        interp_times.append(time.perf_counter() - started)

    n = len(problems)
    kernel_rate = n / statistics.mean(kernel_times)
    interp_rate = n / statistics.mean(interp_times)
    speedup = kernel_rate / interp_rate
    artifact(
        f"solver_throughput_{model_name}.txt",
        f"{model_name}: {n} one-step solves (seed {SEED}, "
        f"max_samples={CONFIG.max_samples}), mean of 3 warm passes\n"
        f"  interpreter: {interp_rate:,.0f} solves/s\n"
        f"  kernel:      {kernel_rate:,.0f} solves/s\n"
        f"  speedup:     {speedup:.2f}x (required: {MIN_SPEEDUP:.1f}x)\n",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"{model_name} solver-kernel speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x acceptance threshold "
        f"(kernel {kernel_rate:,.0f} solves/s, "
        f"interpreter {interp_rate:,.0f} solves/s)"
    )


@pytest.mark.parametrize("model_name", MODELS)
def test_solves_kernel(model_name, benchmark):
    """Warm compiled-kernel solve pass (the cached steady state)."""
    problems = _problems(model_name)
    compiled_list = _compile_warm(problems)
    results = benchmark.pedantic(
        lambda: _kernel_pass(problems, compiled_list),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert len(results) == len(problems)


@pytest.mark.parametrize("model_name", MODELS)
def test_solves_interp(model_name, benchmark):
    """Pure interpreter solve pass (the reference semantics)."""
    problems = _problems(model_name)
    results = benchmark.pedantic(
        lambda: _interp_pass(problems),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert len(results) == len(problems)
