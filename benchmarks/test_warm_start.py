"""Bench: persistent warm-start store speedup on repeated cells.

The cross-*process* analogue of ``test_cache_speedup``: instead of a
shared in-memory :class:`~repro.cache.SolveCache`, the second run warms
up from the on-disk store (:mod:`repro.store`) — the way a re-run of a
CI smoke job, a nightly table3, or a repeated experiment actually
replays.  End-to-end means end-to-end: the warm timing includes reading
and validating the document, decoding the folds, and the (skipped)
save; the cold timing includes the initial save.

Guarantees asserted, matching the acceptance bar:

* warm mean >= ``MIN_SPEEDUP`` (CI gate 2x; the measured margin on an
  idle machine is ~3.2x, reported in the artifact against the 3x
  target),
* warm and cold runs produce bit-identical suites at the fixed seed,
* the warm run actually hit the store (``store_hits``) and reached the
  fixed point (``store_writes == 0``).

The ``test_repeated_cell_{cold,warm}_store`` pair records both timings
with pytest-benchmark so CI can gate regressions against the committed
``BENCH_baseline.json``.
"""

import shutil
import statistics
import tempfile
import time

from repro.core import StcgConfig, StcgGenerator
from repro.core.config import StoreConfig
from repro.models.registry import get_benchmark

#: A cap, not a target: both cells reach full coverage and stop early.
BUDGET_S = 6.0
SEED = 7
#: CI gate for the end-to-end store speedup; the issue's target is 3x,
#: which an idle machine clears with margin — the gate leaves headroom
#: for loaded CI workers.
MIN_SPEEDUP = 2.0
TARGET_SPEEDUP = 3.0


def _run_cell(model_name, store_dir):
    compiled = get_benchmark(model_name).build()
    config = StcgConfig(
        budget_s=BUDGET_S, seed=SEED, store=StoreConfig(path=store_dir)
    )
    generator = StcgGenerator(compiled, config)
    return generator.run(), generator.stats


def _cold_run(model_name):
    """One fully cold run in a throwaway store (miss + export + save)."""
    store_dir = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        return _run_cell(model_name, store_dir)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


def test_warm_start_speedup(tmp_path, artifact):
    """Warm mean >= MIN_SPEEDUP x faster end-to-end, suites identical."""
    store_dir = str(tmp_path / "store")
    _run_cell("CPUTask", store_dir)  # populate the store once

    cold_times, warm_times = [], []
    cold_result = warm_result = warm_stats = None
    for _ in range(5):
        started = time.perf_counter()
        cold_result, _ = _cold_run("CPUTask")
        cold_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        warm_result, warm_stats = _run_cell("CPUTask", store_dir)
        warm_times.append(time.perf_counter() - started)

    # Transparency first: speed means nothing if the results moved.
    assert [c.inputs for c in cold_result.suite] == [
        c.inputs for c in warm_result.suite
    ]
    assert cold_result.decision == warm_result.decision == 1.0
    assert warm_stats["store_hits"] == 1
    assert warm_stats["restored_verdicts"] > 0
    assert warm_stats["store_writes"] == 0  # fixed point: save skipped

    cold_mean = statistics.mean(cold_times)
    warm_mean = statistics.mean(warm_times)
    speedup = cold_mean / warm_mean
    artifact(
        "warm_start_speedup.txt",
        "repeated CPUTask cell against the on-disk warm-start store\n"
        f"  cold mean: {cold_mean * 1000:.1f} ms over {len(cold_times)} "
        "runs (miss + solve + save)\n"
        f"  warm mean: {warm_mean * 1000:.1f} ms over {len(warm_times)} "
        "runs (load + restore + solve)\n"
        f"  speedup:   {speedup:.2f}x (gate: {MIN_SPEEDUP:.1f}x, "
        f"target: {TARGET_SPEEDUP:.1f}x)\n"
        f"  restored:  {warm_stats['restored_verdicts']} verdicts, "
        f"{warm_stats['restored_markers']} markers, "
        f"{warm_stats['restored_encodings']} encodings\n",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm-start speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x CI gate "
        f"(cold {cold_mean:.3f}s, warm {warm_mean:.3f}s)"
    )


def test_warm_start_tcp_cell(tmp_path):
    """The store also round-trips the heavier TCP cell bit-identically.

    TCP does not saturate inside the budget, so the pin needs every
    clock out of the way: the generator budget moves to an injected
    counting clock (reads happen at the same logical points warm and
    cold), and the solver's *per-call* wall-clock cutoff is raised so a
    loaded machine cannot time one run's solve out and not the
    other's.
    """
    from repro.solver.engine import SolverConfig

    def counting_clock():
        now = [0.0]

        def clock():
            now[0] += 0.001
            return now[0]

        return clock

    def run(store_dir):
        compiled = get_benchmark("TCP").build()
        config = StcgConfig(
            budget_s=BUDGET_S,
            seed=SEED,
            store=StoreConfig(path=store_dir),
            solver=SolverConfig(
                max_samples=48, avm_evaluations=700, time_budget_s=60.0
            ),
            # The lite backoff engine clamps its own wall budget to
            # 30ms regardless of the override above — keep it out of
            # the deterministic pin entirely.
            failure_backoff_after=10**9,
        )
        generator = StcgGenerator(compiled, config, clock=counting_clock())
        return generator.run(), generator.stats

    store_dir = str(tmp_path / "store")
    cold_result, _ = run(store_dir)
    warm_result, warm_stats = run(store_dir)
    assert warm_stats["store_hits"] == 1
    assert [c.inputs for c in cold_result.suite] == [
        c.inputs for c in warm_result.suite
    ]


def test_repeated_cell_cold_store(benchmark):
    """Baseline: every run misses, solves from scratch, and saves."""
    result, _ = benchmark.pedantic(
        lambda: _cold_run("CPUTask"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.decision == 1.0


def test_repeated_cell_warm_store(benchmark, tmp_path):
    """The same cell warm-started from a pre-populated store."""
    store_dir = str(tmp_path / "store")
    _run_cell("CPUTask", store_dir)

    def warm():
        return _run_cell("CPUTask", store_dir)

    result, stats = benchmark.pedantic(
        warm, rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.decision == 1.0
    assert stats["store_hits"] == 1
