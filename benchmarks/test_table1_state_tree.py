"""Bench: paper Table I — state-tree construction on SimpleCPUTask.

Regenerates the step-by-step solving/execution log of Section III-C and
checks the qualitative structure the paper reports: shallow branches are
solved on the root state, the state-dependent operation-success branches
are solved on deeper states, and the queue-full branch needs random
exploration before it becomes solvable.
"""

from repro.harness.tables import run_table1, table1

from .conftest import BUDGET_S


def test_table1_state_tree(benchmark, artifact):
    rows, generator = benchmark.pedantic(
        lambda: run_table1(budget_s=max(BUDGET_S, 5.0), seed=0),
        rounds=1, iterations=1,
    )
    text = table1(budget_s=max(BUDGET_S, 5.0), seed=0)
    artifact("table1.txt", text)

    # Full decision coverage of the 13-branch example.
    assert generator.collector.decision_coverage() == 1.0
    # The paper's structure: solve failures on shallow states precede the
    # success of B8/B10/B12 on the post-add state.
    descriptions = [r.description for r in rows]
    assert any("but failed" in d for d in descriptions)
    assert any(d.startswith("Solved B8") for d in descriptions)
    # The add-failure branch (B7) is the last holdout, unlocked only after
    # random exploration filled the queue.
    b7_index = next(
        i for i, d in enumerate(descriptions) if "B7" in d and "Solved" in d
    )
    assert b7_index == len(descriptions) - 1
