"""Bench: paper Table III — three-tool coverage comparison on all models.

Runs SLDV / SimCoTest / STCG on every benchmark model under equal budgets
(REPRO_BENCH_BUDGET seconds each, REPRO_BENCH_REPS repetitions for the
randomized tools) and renders the comparison table with average
improvement rows.

Shape assertions (the reproduction's claims):
* STCG's decision coverage is at least that of both baselines on average,
* STCG wins on the state-heavy models (CPUTask, TCP),
* average improvements are positive on all three metrics.
"""

import os
import statistics

from repro import api
from repro.harness import average_improvements, table3
from repro.models import BENCHMARKS

from .conftest import BUDGET_S, REPETITIONS

#: Worker processes for the matrix (serial by default; raise to fan out).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def test_table3_coverage(benchmark, artifact):
    experiment = benchmark.pedantic(
        lambda: api.run_experiment(
            budget_s=BUDGET_S, repetitions=REPETITIONS, sldv_repetitions=1,
            seed=0, sldv_max_depth=5, workers=WORKERS,
        ),
        rounds=1, iterations=1,
    )
    assert not experiment.failures, experiment.failures
    results = experiment.outcomes
    artifact("table3.txt", table3(results))

    stcg_avg = statistics.mean(
        results[m.name]["STCG"].decision for m in BENCHMARKS
    )
    sldv_avg = statistics.mean(
        results[m.name]["SLDV"].decision for m in BENCHMARKS
    )
    simco_avg = statistics.mean(
        results[m.name]["SimCoTest"].decision for m in BENCHMARKS
    )
    assert stcg_avg > sldv_avg
    assert stcg_avg > simco_avg

    for model_name in ("CPUTask", "TCP"):
        per_tool = results[model_name]
        assert per_tool["STCG"].decision >= per_tool["SimCoTest"].decision
        assert per_tool["STCG"].decision >= per_tool["SLDV"].decision

    for baseline in ("SLDV", "SimCoTest"):
        gains = average_improvements(results, baseline)
        assert gains["decision"] > 0.0
        assert gains["mcdc"] > 0.0
