"""Bench: fuzz campaign throughput (executions/second).

The ``repro.fuzz`` engine spends its whole budget in the mutate/execute/
retain loop: pick a corpus parent, apply one seeded mutator, replay the
candidate from the initial state, and keep it iff it covers a new
Decision/Condition/MC/DC objective id.  This bench times a fixed-count
campaign (count-based budgets are the deterministic path — wall clock
only bounds from above) on a dataflow-heavy model (CPUTask) and a
chart-heavy model (TCP), and records executions/second.

Two guarantees are asserted:

* the campaign actually ran its full execution budget (the loop did not
  exit early on full coverage or an empty corpus), and
* fixed-seed runs are deterministic — two campaigns with the same seed
  retain bit-identical corpora and coverage (speed without determinism
  would break the workers=1/N manifest-identity pin).

The ``test_fuzz_execs_*`` runs record timings with pytest-benchmark so CI
can gate regressions against the committed ``BENCH_baseline.json``.
"""

import pathlib
import time

import pytest

from repro.core.config import FuzzConfig, StcgConfig
from repro.fuzz.engine import FuzzGenerator
from repro.models.registry import get_benchmark

SEED = 42
#: Mutated sequences executed per timed campaign; long enough that the
#: mutate/execute/retain loop dominates generator setup.
EXECUTIONS = 300

MODELS = ["CPUTask", "TCP"]

OUT_DIR = pathlib.Path(__file__).parent / "out"


def _config(executions=EXECUTIONS, corpus_out=""):
    # budget_s is a generous upper bound only: the executions count is the
    # binding (and deterministic) budget.
    return StcgConfig(
        seed=SEED,
        budget_s=600.0,
        provenance=False,
        fuzz=FuzzConfig(executions=executions, corpus_out=corpus_out),
    )


def _campaign(model_name, executions=EXECUTIONS, corpus_out=""):
    compiled = get_benchmark(model_name).build()
    gen = FuzzGenerator(compiled, _config(executions, corpus_out))
    return gen.run()


@pytest.mark.parametrize("model_name", MODELS)
def test_fuzz_throughput(model_name, artifact):
    """Full-budget campaign; fixed-seed determinism; execs/s artifact."""
    OUT_DIR.mkdir(exist_ok=True)
    corpus_path = OUT_DIR / f"fuzz_corpus_{model_name}.json"
    started = time.perf_counter()
    result = _campaign(model_name, corpus_out=str(corpus_path))
    seconds = time.perf_counter() - started
    assert corpus_path.exists()  # the CI fuzz-corpus artifact

    assert result.stats["fuzz_executions"] == EXECUTIONS
    assert result.stats["fuzz_corpus_size"] > 0

    # Determinism: an identical-seed rerun retains the same corpus and
    # reaches the same coverage.
    again = _campaign(model_name)
    assert again.stats["fuzz_executions"] == result.stats["fuzz_executions"]
    assert again.stats["fuzz_retained"] == result.stats["fuzz_retained"]
    assert again.stats["fuzz_corpus_size"] == result.stats["fuzz_corpus_size"]
    assert again.summary.as_dict() == result.summary.as_dict()

    rate = EXECUTIONS / seconds
    artifact(
        f"fuzz_throughput_{model_name}.txt",
        f"{model_name}: {EXECUTIONS} fuzz executions (seed {SEED})\n"
        f"  rate:    {rate:,.0f} execs/s\n"
        f"  corpus:  {result.stats['fuzz_corpus_size']} entries "
        f"({result.stats['fuzz_retained']} retained, "
        f"{result.stats['fuzz_seed_entries']} seeds)\n"
        f"  steps:   {result.stats['fuzz_steps']}\n",
    )


@pytest.mark.parametrize("model_name", MODELS)
def test_fuzz_execs(model_name, benchmark):
    """Fixed-count fuzz campaign wall time (gated against the baseline)."""

    def run():
        return _campaign(model_name)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.stats["fuzz_executions"] == EXECUTIONS
