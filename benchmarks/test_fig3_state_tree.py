"""Bench: paper Figure 3 — branch structure and explored state tree."""

from repro.harness.figures import figure3
from repro.harness.tables import run_table1

from .conftest import BUDGET_S


def test_fig3_state_tree(benchmark, artifact):
    text = benchmark.pedantic(
        lambda: figure3(budget_s=max(BUDGET_S, 5.0), seed=0),
        rounds=1, iterations=1,
    )
    artifact("figure3.txt", text)

    # 13 branches named B1..B13 in the structure section.
    for index in range(1, 14):
        assert f"B{index}:" in text
    assert "S0" in text

    _, generator = run_table1(budget_s=max(BUDGET_S, 5.0), seed=0)
    # A state tree rooted at S0 with the five opcode children (S1..S5).
    assert len(generator.tree.root.children) >= 5
    # The tree path through S1 (one task added) carries the delete/modify/
    # check successors, mirroring Figure 3(b).
    s1 = generator.tree.node(1)
    assert len(s1.children) >= 3
