"""Shared configuration for the paper-reproduction benches.

Budgets scale with the ``REPRO_BENCH_BUDGET`` environment variable
(seconds per tool per model; default 10).  The paper used 3600 s and 10
repetitions on an i7 — these benches reproduce the *shape* of the results
at laptop-seconds scale.  Rendered tables/figures are written to
``benchmarks/out/`` and printed (visible with ``pytest -s``).
"""

import os
import pathlib

import pytest

#: Seconds of generation budget per (tool, model) run.
BUDGET_S = float(os.environ.get("REPRO_BENCH_BUDGET", "10"))
#: Repetitions for randomized tools.
REPETITIONS = int(os.environ.get("REPRO_BENCH_REPS", "2"))

OUT_DIR = pathlib.Path(__file__).parent / "out"


def save_artifact(name: str, text: str) -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text)
    return path


@pytest.fixture
def artifact():
    def _save(name, text):
        path = save_artifact(name, text)
        print(f"\n[artifact] {path}\n")
        print(text)
        return path

    return _save
