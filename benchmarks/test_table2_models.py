"""Bench: paper Table II — benchmark model inventory.

Builds all eight models (timing the builds) and renders the
paper-vs-measured branch/block counts.
"""

from repro.harness.tables import table2
from repro.models import BENCHMARKS


def test_table2_models(benchmark, artifact):
    def build_all():
        return [model.build() for model in BENCHMARKS]

    compiled = benchmark.pedantic(build_all, rounds=1, iterations=1)
    artifact("table2.txt", table2(BENCHMARKS))

    for model, built in zip(BENCHMARKS, compiled):
        # Our primitives are coarser than Simulink's (one chart block stands
        # for a whole Stateflow diagram), so bounds are loose: the models
        # must be in the same complexity class as the paper's, not equal.
        assert built.registry.n_branches >= model.paper_branches / 4, model.name
        assert built.n_blocks >= model.paper_blocks / 8, model.name
