"""Benches: the Discussion-section ablations.

* dead-logic waste — without the constant-false fast path, the solver is
  invoked over and over on branches that are perpetually false (TWC and
  LEDLC contain such logic by construction),
* hybrid warm-up — random-first then solving,
* library-only vs mixed vs fresh random sequences.
"""

from repro.harness.ablation import (
    dead_branch_proving,
    dead_logic_waste,
    hybrid_warmup,
    library_vs_fresh,
    render,
)
from repro.models import get_benchmark

from .conftest import BUDGET_S


def test_ablation_dead_logic(benchmark, artifact):
    # Chart models fold transition conditions to constant false whenever the
    # source state is inactive — the branches STCG would otherwise hand to
    # the solver over and over.
    model = get_benchmark("NICProtocol")
    runs = benchmark.pedantic(
        lambda: dead_logic_waste(model, budget_s=BUDGET_S, seed=0),
        rounds=1, iterations=1,
    )
    artifact("ablation_dead_logic.txt", render(runs))
    with_skip, without_skip = runs
    # The fast path avoids burning solver calls on constantly false
    # branch conditions (inactive-state transitions, dead logic).
    assert with_skip.stat("const_false_skips") > 0
    assert without_skip.stat("const_false_skips") == 0
    assert without_skip.stat("solver_calls") > with_skip.stat("solver_calls")


def test_ablation_hybrid_warmup(benchmark, artifact):
    model = get_benchmark("AFC")
    runs = benchmark.pedantic(
        lambda: hybrid_warmup(model, budget_s=BUDGET_S, seed=0),
        rounds=1, iterations=1,
    )
    artifact("ablation_hybrid.txt", render(runs))
    plain, hybrid = runs
    assert hybrid.result.stats["warmup_steps"] > 0
    # Both variants must still reach meaningful coverage.
    assert plain.decision > 0.5
    assert hybrid.decision > 0.5


def test_ablation_library_vs_fresh(benchmark, artifact):
    model = get_benchmark("UTPC")
    runs = benchmark.pedantic(
        lambda: library_vs_fresh(model, budget_s=BUDGET_S, seed=0),
        rounds=1, iterations=1,
    )
    artifact("ablation_library.txt", render(runs))
    by_name = {run.variant: run for run in runs}
    # The paper's observation: library-only sequences can miss branches
    # that mixing in fresh random inputs reaches.
    assert by_name["mixed-25%"].decision >= by_name["library-only"].decision


def test_ablation_dead_branch_proving(benchmark, artifact):
    """Abstract-interpretation proofs of dead logic (TWC has three dead
    branches by construction) slash the wasted re-solving the paper's
    Discussion describes, without costing any coverage."""
    model = get_benchmark("TWC")
    runs = benchmark.pedantic(
        lambda: dead_branch_proving(model, budget_s=BUDGET_S, seed=0),
        rounds=1, iterations=1,
    )
    artifact("ablation_dead_proofs.txt", render(runs))
    without, with_proofs = runs
    assert with_proofs.result.stats["proven_dead"] == 3
    assert with_proofs.stat("solver_calls") < without.stat("solver_calls")
    assert with_proofs.decision >= without.decision - 0.05
