"""Conditional-subsystem (enable) semantics under the kernel.

The kernel maintains a shared activation table instead of the
interpreter's per-step ``actives`` list; these tests pin the behaviours
that table must reproduce — latches hold when a scope is inactive, state
inside inactive scopes does not advance, and nested scopes gate on their
parent's activation.
"""

import random

import pytest

from repro.coverage.collector import CoverageCollector
from repro.expr.types import BOOL, INT
from repro.model import ModelBuilder
from repro.model.inputs import random_input
from repro.model.simulator import Simulator


def build_if_model():
    """An If/else with per-branch latches, a conditional UnitDelay and a
    conditional store write."""
    b = ModelBuilder("Gates")
    go = b.inport("go", BOOL)
    x = b.inport("x", INT, 0, 9)
    b.data_store("seen", INT, 0)
    seen = b.store_read("seen")
    branch = b.if_block([go], has_else=True)
    with branch.case(0):
        delayed = b.unit_delay(x, init=0, name="lag")
        up = b.sub_output(b.add(x, delayed), init=-1)
        b.store_write("seen", b.add(seen, b.const(1)))
    with branch.default():
        down = b.sub_output(b.gain(x, -1), init=-1)
    b.outport("up", up)
    b.outport("down", down)
    b.outport("seen", seen)
    return b.compile()


def build_nested_model():
    """A SwitchCase whose case 0 contains a nested If — the inner scope is
    active only when both decisions select it."""
    b = ModelBuilder("Nested")
    mode = b.inport("mode", INT, 0, 2)
    flag = b.inport("flag", BOOL)
    sc = b.switch_case(mode, cases=[[0], [1]], has_default=True)
    with sc.case(0):
        inner = b.if_block([flag], has_else=True)
        with inner.case(0):
            inner_latch = b.sub_output(b.const(7), init=0)
        with inner.default():
            b.sub_output(b.const(8), init=0)
        outer_latch = b.sub_output(b.counter(period=100), init=-1)
    with sc.case(1):
        b.sub_output(b.const(9), init=0)
    b.outport("inner", inner_latch)
    b.outport("outer", outer_latch)
    return b.compile()


def _pair(build):
    left, right = build(), build()
    return (
        Simulator(left, CoverageCollector(left.registry), kernel=True),
        Simulator(right, CoverageCollector(right.registry), kernel=False),
    )


@pytest.mark.parametrize("build", [build_if_model, build_nested_model])
def test_kernel_matches_interpreter_on_conditional_models(build):
    sim_k, sim_i = _pair(build)
    rng = random.Random(99)
    for _ in range(120):
        inputs = random_input(sim_k.compiled.inports, rng)
        a = sim_k.step(inputs)
        b = sim_i.step(inputs)
        assert a.outputs == b.outputs
        assert a.new_branch_ids == b.new_branch_ids
        assert a.taken_outcomes == b.taken_outcomes
        assert sim_k.get_state().values == sim_i.get_state().values


@pytest.mark.parametrize("kernel", [True, False], ids=["kernel", "interp"])
class TestGatingBehaviour:
    def test_latch_holds_while_scope_inactive(self, kernel):
        sim = Simulator(build_if_model(), kernel=kernel)
        assert sim.step({"go": True, "x": 3}).outputs["up"] == 3  # 3 + lag(0)
        held = sim.step({"go": False, "x": 9}).outputs
        assert held["up"] == 3          # latched from the active step
        assert held["down"] == -9       # else branch computed this step

    def test_conditional_unit_delay_freezes_when_inactive(self, kernel):
        sim = Simulator(build_if_model(), kernel=kernel)
        sim.step({"go": True, "x": 5})           # lag := 5
        sim.step({"go": False, "x": 8})          # scope off: lag stays 5
        result = sim.step({"go": True, "x": 1})  # 1 + lag(5)
        assert result.outputs["up"] == 6

    def test_conditional_store_write_skipped_when_inactive(self, kernel):
        sim = Simulator(build_if_model(), kernel=kernel)
        sim.step({"go": True, "x": 0})
        sim.step({"go": False, "x": 0})
        sim.step({"go": True, "x": 0})
        # "seen" incremented only on the two active steps; the outport reads
        # the value before this step's write.
        assert sim.step({"go": False, "x": 0}).outputs["seen"] == 2

    def test_nested_scope_needs_both_parents_active(self, kernel):
        sim = Simulator(build_nested_model(), kernel=kernel)
        first = sim.step({"mode": 0, "flag": True}).outputs
        assert first["inner"] == 7
        # Outer case selected, inner else: inner latch holds.
        second = sim.step({"mode": 0, "flag": False}).outputs
        assert second["inner"] == 7
        # Outer case deselected: flag=True must NOT reactivate the inner
        # scope — its parent is inactive.
        third = sim.step({"mode": 1, "flag": True}).outputs
        assert third["inner"] == 7
        # Counter in the outer scope ticked only on the two mode==0 steps.
        assert third["outer"] == second["outer"]
