"""``Simulator.run_sequence``, input coercion, and kernel edge paths."""

import random
from collections import defaultdict

import pytest

from repro.coverage.collector import CoverageCollector
from repro.errors import SimulationError
from repro.expr.types import REAL
from repro.kernel.plan import _forward_raiser
from repro.model import ModelBuilder
from repro.model.blocks import MovingAccumulator
from repro.model.executor import _gather_inputs
from repro.model.graph import Signal
from repro.model.inputs import random_input
from repro.model.simulator import Simulator

from tests.conftest import build_counter_model, build_queue_model


def _sequence(compiled, seed, steps):
    rng = random.Random(seed)
    return [random_input(compiled.inports, rng) for _ in range(steps)]


class TestSequenceResult:
    def test_aggregates_match_a_step_loop(self):
        compiled = build_queue_model()
        sequence = _sequence(compiled, 11, 40)

        ref_model = build_queue_model()
        reference = Simulator(ref_model, CoverageCollector(ref_model.registry), kernel=False)
        expected_branches = []
        expected_obligations = 0
        expected_covering = 0
        for index, inputs in enumerate(sequence):
            result = reference.step(inputs)
            expected_branches.extend(result.new_branch_ids)
            expected_obligations += len(result.new_obligations)
            if result.found_new_coverage:
                expected_covering = index + 1

        outcome = Simulator(compiled, CoverageCollector(compiled.registry)).run_sequence(sequence)
        assert outcome.steps == len(sequence)
        assert list(outcome.new_branch_ids) == expected_branches
        assert outcome.new_obligation_count == expected_obligations
        assert outcome.last_covering_step == expected_covering
        assert outcome.found_new_coverage

    def test_replaying_a_covered_sequence_covers_nothing(self):
        compiled = build_counter_model()
        sim = Simulator(compiled, CoverageCollector(compiled.registry))
        sequence = _sequence(compiled, 5, 20)
        assert sim.run_sequence(sequence).found_new_coverage
        sim.reset()
        rerun = sim.run_sequence(sequence)
        assert rerun.last_covering_step == 0
        assert rerun.new_branch_ids == ()
        assert not rerun.found_new_coverage

    def test_on_step_sees_indices_ids_and_updated_state(self):
        compiled = build_counter_model()
        sequence = _sequence(compiled, 9, 15)

        ref_model = build_counter_model()
        reference = Simulator(ref_model, CoverageCollector(ref_model.registry), kernel=False)
        expected = []
        for inputs in sequence:
            result = reference.step(inputs)
            expected.append(
                (
                    tuple(result.new_branch_ids),
                    result.found_new_coverage,
                    reference.get_state().values,
                )
            )

        sim = Simulator(compiled, CoverageCollector(compiled.registry))
        seen = []

        def on_step(index, new_branch_ids, found_new):
            seen.append(
                (index, new_branch_ids, found_new, sim.get_state().values)
            )

        sim.run_sequence(sequence, on_step=on_step)
        assert [entry[0] for entry in seen] == list(range(len(sequence)))
        assert [entry[1:] for entry in seen] == expected

    def test_run_compat_matches_step_loop(self):
        compiled = build_counter_model()
        sequence = _sequence(compiled, 2, 10)
        loop_model = build_counter_model()
        loop = Simulator(loop_model, CoverageCollector(loop_model.registry))
        expected = [loop.step(inputs) for inputs in sequence]
        results = Simulator(compiled, CoverageCollector(compiled.registry)).run(sequence)
        assert [r.outputs for r in results] == [r.outputs for r in expected]
        assert [r.new_branch_ids for r in results] == [
            r.new_branch_ids for r in expected
        ]


@pytest.mark.parametrize("kernel", [True, False], ids=["kernel", "interp"])
class TestInputCoercion:
    """The per-inport coercers are resolved once per simulator and must
    keep the interpreter's exact semantics on both paths."""

    def test_missing_input_raises_simulation_error(self, kernel):
        sim = Simulator(build_counter_model(), kernel=kernel)
        with pytest.raises(SimulationError, match="missing input 'amount'"):
            sim.step({"tick": True})

    def test_missing_key_raises_even_on_defaultdict(self, kernel):
        # The membership check (not a KeyError guard) decides "missing":
        # a defaultdict would silently manufacture values otherwise.
        sim = Simulator(build_counter_model(), kernel=kernel)
        with pytest.raises(SimulationError, match="missing input"):
            sim.step(defaultdict(int, {"tick": True}))

    def test_values_coerce_to_declared_types(self, kernel):
        sim = Simulator(build_counter_model(), kernel=kernel)
        result = sim.step({"tick": 1, "amount": 2.9})
        # tick -> bool(1), amount -> int(2.9) == 2
        assert result.outputs["count"] == 2
        assert isinstance(result.outputs["count"], int)

    def test_coercers_pinned_per_inport(self, kernel):
        sim = Simulator(build_counter_model(), kernel=kernel)
        assert [name for name, _ in sim._coercers] == ["tick", "amount"]
        coerced = {
            name: coerce for name, coerce in sim._coercers
        }
        assert coerced["tick"](1) is True
        assert coerced["amount"](2.9) == 2


class TestForwardSlotRaiser:
    def test_error_is_identical_to_the_interpreter(self):
        """With reused buffers a forward slot would silently read stale
        values; the kernel compiles it to the interpreter's exact error."""
        compiled = build_counter_model()
        item = next(i for i in compiled.plan if len(i.input_signals) >= 2)
        real = compiled.input_slots[item.index]
        # Second input pretends its producer runs after the consumer.
        slots = (real[0], (len(compiled.plan), real[1][1])) + real[2:]

        outputs_per_item = [[0] for _ in compiled.plan] + [None, None]
        with pytest.raises(SimulationError) as interpreted:
            _gather_inputs(item, outputs_per_item, slots)
        with pytest.raises(SimulationError) as compiled_error:
            _forward_raiser(item, slots)(None)
        assert str(compiled_error.value) == str(interpreted.value)
        assert "before it ran" in str(compiled_error.value)


class TestFallbackBlocks:
    def _build(self):
        b = ModelBuilder("Window")
        u = b.inport("u", REAL, -5.0, 5.0)
        acc = b._add(MovingAccumulator("acc", 3))
        b._wire(acc, u)
        total = Signal(acc, 0)
        high = b.compare(total, ">", 4.0, name="is_high")
        b.outport("mode", b.switch(high, b.const(2), b.const(1)))
        b.outport("total", total)
        return b.compile()

    def test_unregistered_block_runs_through_fallback(self):
        sim = Simulator(self._build())
        stats = sim.kernel_stats()
        assert stats["fallback_blocks"] == 1
        assert stats["fallback_classes"] == ["MovingAccumulator"]

    def test_fallback_is_bit_identical_to_the_interpreter(self):
        compiled = self._build()
        sim_k = Simulator(compiled, CoverageCollector(compiled.registry))
        other = self._build()
        sim_i = Simulator(other, CoverageCollector(other.registry), kernel=False)
        for inputs in _sequence(compiled, 13, 60):
            a = sim_k.step(inputs)
            b = sim_i.step(inputs)
            assert a.outputs == b.outputs
            assert a.new_branch_ids == b.new_branch_ids
            assert sim_k.get_state().values == sim_i.get_state().values
